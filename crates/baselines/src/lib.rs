//! # sb-baselines — comparator schemes from the paper's Background (§2)
//!
//! Implementations of the related approaches the paper compares SoftBound
//! against, each reproducing that scheme's *detection envelope* and cost
//! profile:
//!
//! * [`object_table`] — Jones-Kelly and Mudflap-style object-based
//!   checking over a real [splay tree](splay) (compatible but incomplete:
//!   no sub-object overflows; Table 1/Table 4);
//! * [`valgrind`] — Memcheck-style heap addressability with redzones
//!   under a DBI cost model (misses stack/global overflows; Table 4);
//! * [`fatptr`] — SafeC/CCured-SEQ inline fat pointers, with the
//!   memory-layout incompatibility made executable (§2.2, Table 1);
//! * [`mscc`] — MSCC-style disjoint metadata without wild-cast support
//!   and without sub-object bounds (§6.5);
//! * [`scheme`] — a unified [`Scheme`] driver for the
//!   experiment harnesses.

pub mod fatptr;
pub mod mscc;
pub mod object_table;
pub mod scheme;
pub mod splay;
pub mod valgrind;

pub use fatptr::{compile_fat, compile_fat_protected, instrument_fat, FatPtrRuntime, FAT_PREFIX};
pub use mscc::{instrument_mscc, run_mscc, MsccRuntime};
pub use object_table::{instrument_object_scheme, ObjectScheme, ObjectTableRuntime};
pub use scheme::Scheme;
pub use splay::SplayTree;
pub use valgrind::{instrument_valgrind, ValgrindRuntime, REDZONE};
