//! Object-based approaches (§2.1): Jones-Kelly-style arithmetic+deref
//! checking and Mudflap-style dereference checking, both over a splay-tree
//! object registry.
//!
//! These schemes register every allocation (globals, stack, heap) in a
//! lookup structure and check accesses at *whole-object* granularity.
//! They are highly compatible — no pointer representation or signature
//! changes at all — but **incomplete**: a pointer to `node.str` is
//! indistinguishable from a pointer to `node`, so sub-object overflows
//! (the paper's §2.1 example) pass unnoticed. That incompleteness, plus
//! splay-lookup cost on every checked operation, is exactly what Table 1
//! and Table 4 report.

use crate::splay::SplayTree;
use sb_ir::{Inst, MemTy, Module, RtFn, Value};
use sb_vm::{AccessSink, Mem, RtCtx, RtVals, RuntimeHooks, Trap};

/// Synthetic address region of the object table (for the cache model).
pub const OBJTABLE_BASE: u64 = 0x0000_1C00_0000_0000;

/// Which object-based scheme to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectScheme {
    /// Jones & Kelly: checks pointer arithmetic *and* dereferences.
    JonesKelly,
    /// GCC Mudflap: checks dereferences only.
    Mudflap,
}

impl ObjectScheme {
    /// Scheme label used in traps and reports.
    pub fn name(self) -> &'static str {
        match self {
            ObjectScheme::JonesKelly => "jones-kelly",
            ObjectScheme::Mudflap => "mudflap",
        }
    }
}

/// Instruments a module with object-table checks. No functions are
/// renamed and no signatures change — the compatibility advantage of
/// object-based schemes (Table 1).
pub fn instrument_object_scheme(module: &Module, scheme: ObjectScheme) -> Module {
    let mut m = module.clone();
    let arith = scheme == ObjectScheme::JonesKelly;
    for f in &mut m.funcs {
        if !f.defined {
            continue;
        }
        for b in &mut f.blocks {
            let insts = std::mem::take(&mut b.insts);
            let mut out = Vec::with_capacity(insts.len() * 2);
            for inst in insts {
                match &inst {
                    Inst::Load { mem, addr, .. } => {
                        out.push(Inst::Rt {
                            dsts: vec![],
                            rt: RtFn::ObjCheckDeref { is_store: false },
                            args: vec![*addr, Value::Const(mem.size() as i64)],
                        });
                        out.push(inst);
                    }
                    Inst::Store { mem, addr, .. } => {
                        out.push(Inst::Rt {
                            dsts: vec![],
                            rt: RtFn::ObjCheckDeref { is_store: true },
                            args: vec![*addr, Value::Const(mem.size() as i64)],
                        });
                        out.push(inst);
                    }
                    Inst::Gep { dst, base, .. } if arith => {
                        let (dst, base) = (*dst, *base);
                        out.push(inst);
                        out.push(Inst::Rt {
                            dsts: vec![],
                            rt: RtFn::ObjCheckArith,
                            args: vec![base, Value::Reg(dst)],
                        });
                    }
                    _ => out.push(inst),
                }
            }
            b.insts = out;
        }
    }
    let _ = MemTy::I8; // (kept import small)
    m
}

/// The object-table runtime shared by Jones-Kelly and Mudflap.
pub struct ObjectTableRuntime {
    tree: SplayTree,
    scheme: ObjectScheme,
    /// Checks performed.
    pub check_count: u64,
}

impl ObjectTableRuntime {
    /// Creates a runtime for the given scheme.
    pub fn new(scheme: ObjectScheme) -> Self {
        ObjectTableRuntime {
            tree: SplayTree::new(),
            scheme,
            check_count: 0,
        }
    }

    /// Registered object count.
    pub fn object_count(&self) -> usize {
        self.tree.len()
    }

    fn charge(visited: u64, ctx: &mut RtCtx) {
        // ~6 instructions of fixed overhead per check plus ~3 per splay
        // node visited (compare + two pointer loads).
        ctx.add_cost(6 + 3 * visited);
        for i in 0..visited.min(8) {
            ctx.touch(OBJTABLE_BASE + i * 64);
        }
    }
}

impl RuntimeHooks for ObjectTableRuntime {
    fn name(&self) -> &'static str {
        self.scheme.name()
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::ObjCheckDeref { is_store } => {
                self.check_count += 1;
                let (ptr, size) = (args[0] as u64, args[1] as u64);
                let (hit, visited) = self.tree.find_covering(ptr);
                Self::charge(visited, ctx);
                match hit {
                    Some((base, osize)) if ptr + size <= base + osize => Ok([0, 0]),
                    _ => Err(Trap::SpatialViolation {
                        scheme: self.scheme.name(),
                        addr: ptr,
                        write: is_store,
                    }),
                }
            }
            RtFn::ObjCheckArith => {
                self.check_count += 1;
                let (src, dst) = (args[0] as u64, args[1] as u64);
                // Find the object containing the source pointer; tolerate
                // the C "one past the end" position by probing src-1.
                let (hit, v1) = self.tree.find_covering(src);
                let (hit, visited) = match hit {
                    Some(h) => (Some(h), v1),
                    None if src > 0 => {
                        let (h2, v2) = self.tree.find_covering(src - 1);
                        (h2, v1 + v2)
                    }
                    None => (None, v1),
                };
                Self::charge(visited, ctx);
                match hit {
                    // Result must stay within the same object (one past
                    // the end allowed), the Jones-Kelly rule.
                    Some((base, osize)) => {
                        if dst >= base && dst <= base + osize {
                            Ok([0, 0])
                        } else {
                            Err(Trap::SpatialViolation {
                                scheme: self.scheme.name(),
                                addr: dst,
                                write: false,
                            })
                        }
                    }
                    // Untracked source (forged/int-cast pointers): the
                    // object table cannot check — permissive, like the
                    // real tools.
                    None => Ok([0, 0]),
                }
            }
            other => panic!("object-table runtime received foreign rt call {other:?}"),
        }
    }

    fn on_malloc(&mut self, addr: u64, size: u64, ctx: &mut RtCtx) {
        let visited = self.tree.insert(addr, size.max(1));
        ctx.add_cost(8 + 3 * visited);
    }

    fn on_free(&mut self, addr: u64, _size: u64, _ptr_hint: bool, ctx: &mut RtCtx) {
        if let Some(visited) = self.tree.remove(addr) {
            ctx.add_cost(6 + 3 * visited);
        }
    }

    fn on_alloca(&mut self, addr: u64, info: &sb_ir::AllocaInfo, ctx: &mut RtCtx) {
        let visited = self.tree.insert(addr, info.size.max(1));
        ctx.add_cost(8 + 3 * visited);
    }

    fn on_frame_exit(&mut self, allocas: &[(u64, u64)], ctx: &mut RtCtx) {
        for &(addr, _) in allocas {
            if let Some(visited) = self.tree.remove(addr) {
                ctx.add_cost(6 + 3 * visited);
            }
        }
    }

    fn on_global(&mut self, addr: u64, size: u64, _ctx: &mut RtCtx) {
        self.tree.insert(addr, size.max(1));
    }

    fn check_builtin_range(
        &mut self,
        ptr: u64,
        len: u64,
        is_store: bool,
        ctx: &mut RtCtx,
    ) -> Result<(), Trap> {
        // The libc wrappers of object-based tools: one whole-object check
        // per buffer.
        self.check_count += 1;
        let (hit, visited) = self.tree.find_covering(ptr);
        Self::charge(visited, ctx);
        match hit {
            Some((base, osize)) if ptr + len <= base + osize => Ok(()),
            _ => Err(Trap::SpatialViolation {
                scheme: self.scheme.name(),
                addr: ptr,
                write: is_store,
            }),
        }
    }

    fn reset(&mut self) {
        self.tree = SplayTree::new();
        self.check_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vm::{Machine, MachineConfig, Outcome};

    fn run_with(src: &str, scheme: ObjectScheme) -> sb_vm::RunResult {
        let prog = sb_cir::compile(src).expect("compiles");
        let mut m = sb_ir::lower(&prog, "t");
        sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
        let m = instrument_object_scheme(&m, scheme);
        sb_ir::verify(&m).expect("verifies");
        let mut machine = Machine::new(
            &m,
            MachineConfig::default(),
            ObjectTableRuntime::new(scheme),
        );
        machine.run("main", &[])
    }

    #[test]
    fn safe_program_no_false_positives() {
        for scheme in [ObjectScheme::JonesKelly, ObjectScheme::Mudflap] {
            let r = run_with(
                r#"
                struct node { int v; struct node* next; };
                int main() {
                    struct node* head = NULL;
                    for (int i = 0; i < 20; i++) {
                        struct node* n = (struct node*)malloc(sizeof(struct node));
                        n->v = i; n->next = head; head = n;
                    }
                    int s = 0;
                    while (head) { s += head->v; struct node* t = head->next; free(head); head = t; }
                    return s == 190;
                }"#,
                scheme,
            );
            assert_eq!(r.ret(), Some(1), "{scheme:?}: {:?}", r.outcome);
        }
    }

    #[test]
    fn whole_object_overflow_detected() {
        for scheme in [ObjectScheme::JonesKelly, ObjectScheme::Mudflap] {
            let r = run_with(
                r#"
                int main() {
                    char* p = (char*)malloc(8);
                    p[8] = 'x';
                    return 0;
                }"#,
                scheme,
            );
            assert!(
                r.outcome.is_spatial_violation(),
                "{scheme:?}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn stack_and_global_overflows_detected() {
        for scheme in [ObjectScheme::JonesKelly, ObjectScheme::Mudflap] {
            let stack = run_with(
                "int main() { char b[8]; for (int i = 0; i <= 8; i++) b[i] = 1; return 0; }",
                scheme,
            );
            assert!(
                stack.outcome.is_spatial_violation(),
                "{scheme:?} stack: {:?}",
                stack.outcome
            );
            let global = run_with(
                "char g[8]; int main() { for (int i = 0; i <= 8; i++) g[i] = 1; return 0; }",
                scheme,
            );
            assert!(
                global.outcome.is_spatial_violation(),
                "{scheme:?} global: {:?}",
                global.outcome
            );
        }
    }

    #[test]
    fn sub_object_overflow_missed() {
        // §2.1: object granularity cannot see intra-object overflows —
        // the function pointer is silently clobbered.
        for scheme in [ObjectScheme::JonesKelly, ObjectScheme::Mudflap] {
            let r = run_with(
                r#"
                struct node { char str[8]; long tag; };
                int main() {
                    struct node n;
                    n.tag = 7;
                    char* p = n.str;
                    strcpy(p, "overflow...");  // 12 bytes into an 8-byte field
                    return n.tag == 7;
                }"#,
                scheme,
            );
            assert_eq!(
                r.ret(),
                Some(0),
                "{scheme:?} must MISS the sub-object overflow (tag clobbered): {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn jones_kelly_checks_arithmetic_mudflap_does_not() {
        // Walking a pointer far outside the object then back without
        // dereferencing: Jones-Kelly traps at the arithmetic, Mudflap
        // allows it (it only checks dereferences).
        let src = r#"
            int main() {
                int a[8];
                int* p = a;
                p = p + 100;  // far out of bounds
                p = p - 100;
                *p = 1;
                return a[0];
            }
        "#;
        let jk = run_with(src, ObjectScheme::JonesKelly);
        assert!(
            jk.outcome.is_spatial_violation(),
            "Jones-Kelly traps on out-of-object arithmetic (a known compatibility cost): {:?}",
            jk.outcome
        );
        let mf = run_with(src, ObjectScheme::Mudflap);
        assert_eq!(
            mf.ret(),
            Some(1),
            "Mudflap tolerates transient OOB pointers: {:?}",
            mf.outcome
        );
    }

    #[test]
    fn one_past_the_end_arithmetic_allowed() {
        let r = run_with(
            r#"
            int main() {
                int a[8];
                int* end = a + 8; // one past: legal C, must not trap
                return end - a == 8;
            }"#,
            ObjectScheme::JonesKelly,
        );
        assert_eq!(r.ret(), Some(1), "{:?}", r.outcome);
    }

    #[test]
    fn object_lifecycle_tracked() {
        let r = run_with(
            r#"
            int main() {
                for (int i = 0; i < 100; i++) {
                    char* p = (char*)malloc(16);
                    p[15] = 1;
                    free(p);
                }
                return 1;
            }"#,
            ObjectScheme::Mudflap,
        );
        assert_eq!(r.ret(), Some(1), "{:?}", r.outcome);
    }

    #[test]
    fn use_after_free_detected_via_deregistration() {
        let r = run_with(
            r#"
            int main() {
                char* p = (char*)malloc(16);
                free(p);
                p[0] = 1; // object gone from the table
                return 0;
            }"#,
            ObjectScheme::Mudflap,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
        let _ = Outcome::Finished { ret: 0 };
    }
}
