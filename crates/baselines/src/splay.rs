//! A top-down splay tree over address intervals.
//!
//! This is the lookup structure behind object-based approaches
//! (Jones-Kelly, Mudflap, JKRLDA before pool allocation): every object
//! (global, stack, heap) is registered as `[base, base+size)`, and every
//! check must map an arbitrary address to its containing object. The paper
//! (§2.1) notes that "the object-lookup table is often implemented as a
//! splay tree, which can be a performance bottleneck, yielding runtime
//! overheads of 5x or more" — the `visited`-node counts this tree reports
//! are what the baseline runtimes convert into cycles.

/// Arena index sentinel.
const NIL: i32 = -1;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    size: u64,
    left: i32,
    right: i32,
}

/// A splay tree mapping object base addresses to sizes, with
/// visited-node accounting.
#[derive(Debug, Default)]
pub struct SplayTree {
    nodes: Vec<Node>,
    free: Vec<i32>,
    root: i32,
    len: usize,
    /// Total nodes visited across all operations (cost accounting).
    pub total_visited: u64,
}

impl SplayTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        SplayTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
            total_visited: 0,
        }
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc_node(&mut self, key: u64, size: u64) -> i32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node {
                key,
                size,
                left: NIL,
                right: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                size,
                left: NIL,
                right: NIL,
            });
            (self.nodes.len() - 1) as i32
        }
    }

    /// Classic Sleator–Tarjan top-down splay: brings the node with `key`
    /// (or a neighbor) to the root. Returns nodes visited.
    fn splay(&mut self, key: u64) -> u64 {
        if self.root == NIL {
            return 0;
        }
        let mut visited: u64 = 0;
        let mut t = self.root;
        let (mut l, mut r) = (NIL, NIL);
        let (mut l_tail, mut r_tail) = (NIL, NIL);
        loop {
            visited += 1;
            if key < self.nodes[t as usize].key {
                let mut child = self.nodes[t as usize].left;
                if child == NIL {
                    break;
                }
                if key < self.nodes[child as usize].key {
                    // Zig-zig: rotate right.
                    self.nodes[t as usize].left = self.nodes[child as usize].right;
                    self.nodes[child as usize].right = t;
                    t = child;
                    visited += 1;
                    child = self.nodes[t as usize].left;
                    if child == NIL {
                        break;
                    }
                }
                // Link right.
                if r_tail == NIL {
                    r = t;
                } else {
                    self.nodes[r_tail as usize].left = t;
                }
                r_tail = t;
                t = child;
            } else if key > self.nodes[t as usize].key {
                let mut child = self.nodes[t as usize].right;
                if child == NIL {
                    break;
                }
                if key > self.nodes[child as usize].key {
                    // Zag-zag: rotate left.
                    self.nodes[t as usize].right = self.nodes[child as usize].left;
                    self.nodes[child as usize].left = t;
                    t = child;
                    visited += 1;
                    child = self.nodes[t as usize].right;
                    if child == NIL {
                        break;
                    }
                }
                // Link left.
                if l_tail == NIL {
                    l = t;
                } else {
                    self.nodes[l_tail as usize].right = t;
                }
                l_tail = t;
                t = child;
            } else {
                break;
            }
        }
        // Assemble.
        if l_tail == NIL {
            l = self.nodes[t as usize].left;
        } else {
            self.nodes[l_tail as usize].right = self.nodes[t as usize].left;
        }
        if r_tail == NIL {
            r = self.nodes[t as usize].right;
        } else {
            self.nodes[r_tail as usize].left = self.nodes[t as usize].right;
        }
        self.nodes[t as usize].left = l;
        self.nodes[t as usize].right = r;
        self.root = t;
        self.total_visited += visited;
        visited
    }

    /// Registers (or resizes) the object at `base`. Returns nodes visited.
    pub fn insert(&mut self, base: u64, size: u64) -> u64 {
        if self.root == NIL {
            self.root = self.alloc_node(base, size);
            self.len += 1;
            self.total_visited += 1;
            return 1;
        }
        let visited = self.splay(base);
        let rk = self.nodes[self.root as usize].key;
        if rk == base {
            self.nodes[self.root as usize].size = size;
            return visited;
        }
        let n = self.alloc_node(base, size);
        if base < rk {
            self.nodes[n as usize].left = self.nodes[self.root as usize].left;
            self.nodes[n as usize].right = self.root;
            self.nodes[self.root as usize].left = NIL;
        } else {
            self.nodes[n as usize].right = self.nodes[self.root as usize].right;
            self.nodes[n as usize].left = self.root;
            self.nodes[self.root as usize].right = NIL;
        }
        self.root = n;
        self.len += 1;
        visited + 1
    }

    /// Deregisters the object at exactly `base`. Returns nodes visited,
    /// or `None` if absent.
    pub fn remove(&mut self, base: u64) -> Option<u64> {
        if self.root == NIL {
            return None;
        }
        let mut visited = self.splay(base);
        if self.nodes[self.root as usize].key != base {
            return None;
        }
        let old = self.root;
        let (l, r) = (
            self.nodes[old as usize].left,
            self.nodes[old as usize].right,
        );
        self.free.push(old);
        self.len -= 1;
        if l == NIL {
            self.root = r;
        } else {
            self.root = l;
            visited += self.splay(base); // max of left tree to root
            self.nodes[self.root as usize].right = r;
        }
        Some(visited)
    }

    /// Finds the object containing `addr` (i.e. `base <= addr <
    /// base+size`), splaying the answer to the root so hot objects are
    /// O(1) on re-access. Returns `((base, size), visited)`.
    pub fn find_covering(&mut self, addr: u64) -> (Option<(u64, u64)>, u64) {
        if self.root == NIL {
            return (None, 0);
        }
        let mut visited = self.splay(addr);
        if self.nodes[self.root as usize].key > addr {
            // Need the predecessor: find the maximum of the left subtree
            // and splay it to the root (so repeated accesses are cheap).
            let mut cand = self.nodes[self.root as usize].left;
            if cand == NIL {
                return (None, visited);
            }
            while self.nodes[cand as usize].right != NIL {
                cand = self.nodes[cand as usize].right;
                visited += 1;
            }
            visited += self.splay(self.nodes[cand as usize].key);
        }
        let n = self.nodes[self.root as usize];
        if addr >= n.key && addr < n.key + n.size {
            (Some((n.key, n.size)), visited)
        } else {
            (None, visited)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_remove() {
        let mut t = SplayTree::new();
        t.insert(100, 50);
        t.insert(300, 20);
        t.insert(10, 5);
        assert_eq!(t.len(), 3);
        assert_eq!(t.find_covering(125).0, Some((100, 50)));
        assert_eq!(t.find_covering(149).0, Some((100, 50)));
        assert_eq!(t.find_covering(150).0, None, "one past the end is outside");
        assert_eq!(t.find_covering(305).0, Some((300, 20)));
        assert_eq!(t.find_covering(12).0, Some((10, 5)));
        assert_eq!(t.find_covering(50).0, None);
        assert!(t.remove(100).is_some());
        assert_eq!(t.find_covering(125).0, None);
        assert_eq!(t.len(), 2);
        assert!(t.remove(100).is_none(), "double remove");
    }

    #[test]
    fn resize_on_reinsert() {
        let mut t = SplayTree::new();
        t.insert(100, 10);
        t.insert(100, 40);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_covering(130).0, Some((100, 40)));
    }

    #[test]
    fn splaying_makes_hot_accesses_cheap_amortized() {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 100, 50);
        }
        // Sequential inserts leave a degenerate spine; the first access
        // pays for restructuring, but repeated accesses to the same
        // object must be cheap on average (the splay property object
        // tables rely on).
        let (hit, first) = t.find_covering(51200 + 10);
        assert_eq!(hit, Some((51200, 50)));
        let mut total = 0;
        for _ in 0..1000 {
            let (hit, v) = t.find_covering(51200 + 10);
            assert_eq!(hit, Some((51200, 50)));
            total += v;
        }
        let avg = total as f64 / 1000.0;
        assert!(
            avg <= 8.0,
            "hot accesses should be cheap (first={first}, avg={avg})"
        );
    }

    #[test]
    fn agrees_with_reference_interval_map() {
        // Property-style check against a naive reference.
        let mut t = SplayTree::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut state = 0xabcdefu64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..3000 {
            let op = rnd() % 3;
            let base = (rnd() % 512) * 64;
            match op {
                0 => {
                    // Objects never overlap (bases are 64 apart).
                    let size = 16 + rnd() % 48;
                    t.insert(base, size);
                    reference.retain(|&(b, _)| b != base);
                    reference.push((base, size));
                }
                1 => {
                    let removed = t.remove(base).is_some();
                    let ref_removed = {
                        let n = reference.len();
                        reference.retain(|&(b, _)| b != base);
                        reference.len() != n
                    };
                    assert_eq!(removed, ref_removed);
                }
                _ => {
                    let addr = rnd() % (512 * 64 + 128);
                    let expect = reference
                        .iter()
                        .find(|&&(b, s)| addr >= b && addr < b + s)
                        .copied();
                    assert_eq!(t.find_covering(addr).0, expect, "lookup {addr}");
                }
            }
            assert_eq!(t.len(), reference.len());
        }
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut t = SplayTree::new();
        assert!(t.is_empty());
        assert_eq!(t.find_covering(42).0, None);
        assert!(t.remove(42).is_none());
    }
}
