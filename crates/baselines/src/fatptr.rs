//! The fat-pointer baseline (SafeC / CCured-SEQ style, §2.2).
//!
//! Pointers in memory become 24-byte `{value, base, bound}` triples. The
//! program must therefore be compiled with [`PtrLayout::Fat`], which
//! **visibly changes memory layout**: `sizeof(char*)` is 24, struct
//! offsets move, and `sizeof(long) == sizeof(char*)` — an assumption
//! everywhere in real C — breaks. That is the source-compatibility
//! problem the paper's disjoint metadata removes.
//!
//! Mechanically, metadata travels inline: loading a pointer performs three
//! loads (value, base, bound); storing performs three stores. There is no
//! metadata table at all — the only runtime call is the bounds check —
//! so the *performance* profile differs from SoftBound exactly as the
//! paper describes: cheaper metadata access, at the price of layout
//! incompatibility (and of metadata corruptibility through wild writes,
//! the CCured-WILD problem).

use sb_cir::PtrLayout;
use sb_ir::{
    ArithOp, Callee, Function, GInit, Global, Inst, IntKind, MemTy, Module, RegId, RegKind, RtFn,
    Value,
};
use sb_vm::{AccessSink, Mem, RtCtx, RtVals, RuntimeHooks, Trap};
use softbound::SoftBoundError;

/// Function prefix for the fat-pointer transformation.
pub const FAT_PREFIX: &str = "_fat_";

/// Compiles a CIR-C source with the fat (24-byte) pointer layout.
///
/// # Errors
///
/// Frontend errors.
pub fn compile_fat(src: &str, name: &str) -> Result<Module, sb_cir::CompileError> {
    let prog = sb_cir::compile_with_layout(src, PtrLayout::Fat)?;
    let mut m = sb_ir::lower(&prog, name);
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
    Ok(m)
}

/// Applies the fat-pointer transformation. The module must have been
/// lowered with the fat layout (24-byte pointer slots).
pub fn instrument_fat(module: &Module) -> Module {
    let mut m = module.clone();
    let orig_params: Vec<Vec<RegKind>> = m.funcs.iter().map(|f| f.param_kinds.clone()).collect();
    let orig_rets: Vec<Vec<RegKind>> = m.funcs.iter().map(|f| f.ret_kinds.clone()).collect();
    let global_sizes: Vec<u64> = m.globals.iter().map(|g| g.size).collect();
    for f in &mut m.funcs {
        transform_fn(f, &orig_params, &orig_rets, &global_sizes);
    }
    let init = build_globals_init(&m.globals, &m.name);
    m.funcs.push(init);
    m
}

/// Writes inline base/bound words for pointer-valued global initializers
/// (plain stores at `slot+8` / `slot+16` — no metadata table exists).
fn build_globals_init(globals: &[Global], module_name: &str) -> Function {
    let mut f = Function {
        name: format!("__ctor.fat_globals.{module_name}"),
        params: vec![],
        param_kinds: vec![],
        ret_kinds: vec![],
        reg_kinds: vec![],
        blocks: vec![],
        vararg: false,
        defined: true,
    };
    let b = f.new_block();
    for (gi, g) in globals.iter().enumerate() {
        for (off, init) in &g.init {
            if g.ptr_slots.binary_search(off).is_err() {
                continue;
            }
            let (base, bound) = match init {
                GInit::GlobalAddr { id, .. } => (
                    Value::GlobalAddr { id: *id, offset: 0 },
                    Value::GlobalAddr {
                        id: *id,
                        offset: globals[id.0 as usize].size,
                    },
                ),
                GInit::FuncAddr(fid) => (Value::FuncAddr(*fid), Value::FuncAddr(*fid)),
                GInit::Bytes(_) => continue,
            };
            let slot = Value::GlobalAddr {
                id: sb_ir::GlobalId(gi as u32),
                offset: off + 8,
            };
            let slot2 = Value::GlobalAddr {
                id: sb_ir::GlobalId(gi as u32),
                offset: off + 16,
            };
            f.blocks[b.0 as usize].insts.push(Inst::Store {
                mem: MemTy::I64,
                addr: slot,
                value: base,
            });
            f.blocks[b.0 as usize].insts.push(Inst::Store {
                mem: MemTy::I64,
                addr: slot2,
                value: bound,
            });
        }
    }
    f.blocks[b.0 as usize]
        .insts
        .push(Inst::Ret { vals: vec![] });
    f
}

struct Cx<'a> {
    shadows: Vec<Option<(RegId, RegId)>>,
    orig_params: &'a [Vec<RegKind>],
    orig_rets: &'a [Vec<RegKind>],
    global_sizes: &'a [u64],
    ret_was_ptr: bool,
}

impl Cx<'_> {
    fn meta_of(&self, v: &Value) -> (Value, Value) {
        match v {
            Value::Reg(r) => self.shadows[r.0 as usize]
                .map(|(b, e)| (Value::Reg(b), Value::Reg(e)))
                .unwrap_or((Value::Const(0), Value::Const(0))),
            Value::Const(_) => (Value::Const(0), Value::Const(0)),
            Value::GlobalAddr { id, .. } => (
                Value::GlobalAddr { id: *id, offset: 0 },
                Value::GlobalAddr {
                    id: *id,
                    offset: self.global_sizes[id.0 as usize],
                },
            ),
            Value::FuncAddr(f) => (Value::FuncAddr(*f), Value::FuncAddr(*f)),
        }
    }

    fn shadow(&self, r: RegId) -> (RegId, RegId) {
        self.shadows[r.0 as usize].expect("pointer register has shadows")
    }
}

fn transform_fn(
    f: &mut Function,
    orig_params: &[Vec<RegKind>],
    orig_rets: &[Vec<RegKind>],
    global_sizes: &[u64],
) {
    if f.name.starts_with(FAT_PREFIX) {
        return;
    }
    let nregs = f.reg_kinds.len();
    let mut cx = Cx {
        shadows: vec![None; nregs],
        orig_params,
        orig_rets,
        global_sizes,
        ret_was_ptr: f.ret_kinds == [RegKind::Ptr],
    };
    let ptr_param_regs: Vec<RegId> = f
        .params
        .iter()
        .zip(&f.param_kinds)
        .filter(|(_, k)| **k == RegKind::Ptr)
        .map(|(r, _)| *r)
        .collect();
    for preg in ptr_param_regs {
        let b = f.new_reg(RegKind::Int);
        let e = f.new_reg(RegKind::Int);
        f.params.push(b);
        f.params.push(e);
        f.param_kinds.push(RegKind::Int);
        f.param_kinds.push(RegKind::Int);
        cx.shadows[preg.0 as usize] = Some((b, e));
    }
    if cx.ret_was_ptr {
        f.ret_kinds = vec![RegKind::Ptr, RegKind::Int, RegKind::Int];
    }
    f.name = format!("{FAT_PREFIX}{}", f.name);
    if !f.defined {
        return;
    }
    for r in 0..nregs {
        if f.reg_kinds[r] == RegKind::Ptr && cx.shadows[r].is_none() {
            let b = f.new_reg(RegKind::Int);
            let e = f.new_reg(RegKind::Int);
            cx.shadows[r] = Some((b, e));
        }
    }

    for bi in 0..f.blocks.len() {
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() * 2);
        for inst in insts {
            rewrite(inst, f, &mut cx, &mut out, bi);
        }
        f.blocks[bi].insts = out;
    }
}

/// Helper: `tmp = addr + disp` into a fresh scratch register. Scratch
/// registers are appended to the function (allowed — reg_kinds grows).
fn addr_plus(
    f: &Function,
    out: &mut Vec<Inst>,
    scratch: &mut Vec<RegId>,
    addr: Value,
    disp: i64,
) -> Value {
    let _ = f;
    let r = scratch.pop().expect("scratch preallocated");
    out.push(Inst::Gep {
        dst: r,
        base: addr,
        index: Value::Const(0),
        scale: 0,
        offset: disp,
        field_size: None,
    });
    Value::Reg(r)
}

fn rewrite(inst: Inst, f: &mut Function, cx: &mut Cx<'_>, out: &mut Vec<Inst>, _bi: usize) {
    match inst {
        Inst::Load { dst, mem, addr } => {
            let (b, e) = cx.meta_of(&addr);
            out.push(Inst::Rt {
                dsts: vec![],
                rt: RtFn::FatCheck { is_store: false },
                args: vec![addr, b, e, Value::Const(mem.size() as i64)],
            });
            if mem.is_ptr() {
                // Load the inline metadata words first (addr may be
                // clobbered when dst == addr), then the value.
                let (db, de) = cx.shadow(dst);
                let mut scratch = vec![f.new_reg(RegKind::Ptr), f.new_reg(RegKind::Ptr)];
                let a8 = addr_plus(f, out, &mut scratch, addr, 8);
                out.push(Inst::Load {
                    dst: db,
                    mem: MemTy::I64,
                    addr: a8,
                });
                let a16 = addr_plus(f, out, &mut scratch, addr, 16);
                out.push(Inst::Load {
                    dst: de,
                    mem: MemTy::I64,
                    addr: a16,
                });
            }
            out.push(Inst::Load { dst, mem, addr });
        }
        Inst::Store { mem, addr, value } => {
            let (b, e) = cx.meta_of(&addr);
            out.push(Inst::Rt {
                dsts: vec![],
                rt: RtFn::FatCheck { is_store: true },
                args: vec![addr, b, e, Value::Const(mem.size() as i64)],
            });
            out.push(Inst::Store { mem, addr, value });
            if mem.is_ptr() {
                let (vb, ve) = cx.meta_of(&value);
                let mut scratch = vec![f.new_reg(RegKind::Ptr), f.new_reg(RegKind::Ptr)];
                let a8 = addr_plus(f, out, &mut scratch, addr, 8);
                out.push(Inst::Store {
                    mem: MemTy::I64,
                    addr: a8,
                    value: vb,
                });
                let a16 = addr_plus(f, out, &mut scratch, addr, 16);
                out.push(Inst::Store {
                    mem: MemTy::I64,
                    addr: a16,
                    value: ve,
                });
            }
        }
        Inst::Alloca { dst, info } => {
            let size = info.size;
            out.push(Inst::Alloca { dst, info });
            let (db, de) = cx.shadow(dst);
            out.push(Inst::Mov {
                dst: db,
                src: Value::Reg(dst),
            });
            out.push(Inst::Bin {
                dst: de,
                op: ArithOp::Add,
                k: IntKind::I64,
                lhs: Value::Reg(dst),
                rhs: Value::Const(size as i64),
            });
        }
        Inst::Gep {
            dst,
            base,
            index,
            scale,
            offset,
            field_size,
        } => {
            out.push(Inst::Gep {
                dst,
                base,
                index,
                scale,
                offset,
                field_size,
            });
            let (db, de) = cx.shadow(dst);
            match field_size {
                Some(sz) => {
                    out.push(Inst::Mov {
                        dst: db,
                        src: Value::Reg(dst),
                    });
                    out.push(Inst::Bin {
                        dst: de,
                        op: ArithOp::Add,
                        k: IntKind::I64,
                        lhs: Value::Reg(dst),
                        rhs: Value::Const(sz as i64),
                    });
                }
                None => {
                    let (bb, be) = cx.meta_of(&base);
                    out.push(Inst::Mov { dst: db, src: bb });
                    out.push(Inst::Mov { dst: de, src: be });
                }
            }
        }
        Inst::Mov { dst, src } => {
            out.push(Inst::Mov { dst, src });
            if f.reg_kind(dst) == RegKind::Ptr {
                let (sb, se) = cx.meta_of(&src);
                let (db, de) = cx.shadow(dst);
                out.push(Inst::Mov { dst: db, src: sb });
                out.push(Inst::Mov { dst: de, src: se });
            }
        }
        Inst::Ret { mut vals } => {
            if cx.ret_was_ptr {
                let (b, e) = cx.meta_of(&vals[0]);
                vals.push(b);
                vals.push(e);
            }
            out.push(Inst::Ret { vals });
        }
        Inst::Call {
            mut dsts,
            callee,
            args,
            ptr_hint,
            ..
        } => match callee {
            Callee::Direct(fid) => {
                let pkinds = &cx.orig_params[fid.0 as usize];
                let mut metas = Vec::new();
                for (i, k) in pkinds.iter().enumerate() {
                    if *k == RegKind::Ptr {
                        let (b, e) = cx.meta_of(args.get(i).unwrap_or(&Value::Const(0)));
                        metas.push(b);
                        metas.push(e);
                    }
                }
                let mut new_args = Vec::with_capacity(args.len() + metas.len());
                let fixed = pkinds.len().min(args.len());
                new_args.extend_from_slice(&args[..fixed]);
                new_args.extend(metas);
                new_args.extend_from_slice(&args[fixed..]);
                if cx.orig_rets[fid.0 as usize] == [RegKind::Ptr] && !dsts.is_empty() {
                    let (db, de) = cx.shadow(dsts[0]);
                    dsts.push(db);
                    dsts.push(de);
                }
                out.push(Inst::Call {
                    dsts,
                    callee: Callee::Direct(fid),
                    args: new_args,
                    ptr_hint,
                    wrapped: false,
                });
            }
            Callee::Indirect(target) => {
                let mut new_args = args.clone();
                for a in &args {
                    let is_ptr = match a {
                        Value::Reg(r) => f.reg_kind(*r) == RegKind::Ptr,
                        Value::GlobalAddr { .. } | Value::FuncAddr(_) => true,
                        Value::Const(_) => false,
                    };
                    if is_ptr {
                        let (b, e) = cx.meta_of(a);
                        new_args.push(b);
                        new_args.push(e);
                    }
                }
                if dsts.first().map(|d| f.reg_kind(*d)) == Some(RegKind::Ptr) {
                    let (db, de) = cx.shadow(dsts[0]);
                    dsts.push(db);
                    dsts.push(de);
                }
                out.push(Inst::Call {
                    dsts,
                    callee: Callee::Indirect(target),
                    args: new_args,
                    ptr_hint,
                    wrapped: false,
                });
            }
            Callee::Builtin(b) => {
                let sig = b.sig();
                let mut new_args = args.clone();
                for (i, pty) in sig.params.iter().enumerate() {
                    if pty.is_ptr() {
                        let (mb, me) = cx.meta_of(args.get(i).unwrap_or(&Value::Const(0)));
                        new_args.push(mb);
                        new_args.push(me);
                    }
                }
                if sig.ret.is_ptr() && !dsts.is_empty() {
                    let (db, de) = cx.shadow(dsts[0]);
                    dsts.push(db);
                    dsts.push(de);
                }
                out.push(Inst::Call {
                    dsts,
                    callee: Callee::Builtin(b),
                    args: new_args,
                    ptr_hint,
                    wrapped: true,
                });
            }
        },
        Inst::Rt { .. } => panic!("module already instrumented"),
        other => out.push(other),
    }
}

/// Runtime for the fat-pointer scheme: only the bounds check — metadata
/// movement is ordinary memory traffic.
#[derive(Debug, Default)]
pub struct FatPtrRuntime {
    /// Checks performed.
    pub check_count: u64,
}

impl FatPtrRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RuntimeHooks for FatPtrRuntime {
    fn name(&self) -> &'static str {
        "fatptr"
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::FatCheck { is_store } => {
                self.check_count += 1;
                ctx.add_cost(3);
                let (ptr, base, bound, size) = (
                    args[0] as u64,
                    args[1] as u64,
                    args[2] as u64,
                    args[3] as u64,
                );
                if base == 0 || ptr < base || ptr.wrapping_add(size) > bound {
                    Err(Trap::SpatialViolation {
                        scheme: "fatptr",
                        addr: ptr,
                        write: is_store,
                    })
                } else {
                    Ok([0, 0])
                }
            }
            other => panic!("fatptr runtime received foreign rt call {other:?}"),
        }
    }

    fn reset(&mut self) {
        self.check_count = 0;
    }
}

/// One-call pipeline: compile fat, instrument, verify.
///
/// # Errors
///
/// Frontend errors or verifier failures, as [`SoftBoundError`].
pub fn compile_fat_protected(src: &str) -> Result<Module, SoftBoundError> {
    let m = compile_fat(src, "fat")?;
    let mut m = instrument_fat(&m);
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PostInstrument);
    sb_ir::verify(&m)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vm::{Machine, MachineConfig};

    fn run_fat(src: &str) -> sb_vm::RunResult {
        let m = compile_fat_protected(src).expect("compiles");
        let mut machine = Machine::new(&m, MachineConfig::default(), FatPtrRuntime::new());
        machine.run("main", &[])
    }

    #[test]
    fn safe_pointer_program_runs() {
        let r = run_fat(
            r#"
            struct node { int v; struct node* next; };
            int main() {
                struct node* head = NULL;
                for (int i = 0; i < 10; i++) {
                    struct node* n = (struct node*)malloc(sizeof(struct node));
                    n->v = i; n->next = head; head = n;
                }
                int s = 0;
                while (head) { s += head->v; head = head->next; }
                return s == 45;
            }"#,
        );
        assert_eq!(r.ret(), Some(1), "{:?}", r.outcome);
    }

    #[test]
    fn overflow_detected() {
        let r = run_fat(
            r#"
            int main() {
                int* p = (int*)malloc(4 * sizeof(int));
                p[4] = 1;
                return 0;
            }"#,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn sub_object_overflow_detected() {
        // SafeC-style fat pointers do shrink to fields (Table 1:
        // complete), like SoftBound.
        let r = run_fat(
            r#"
            struct node { char str[8]; long tag; };
            int main() {
                struct node n;
                n.tag = 7;
                char* p = n.str;
                p[8] = 'x';
                return 0;
            }"#,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn layout_change_is_programmer_visible() {
        // The §2.2 incompatibility, executed: idiomatic C that assumes
        // sizeof(long) == sizeof(char*) returns different results.
        let src = "int main() { return sizeof(char*) == sizeof(long); }";
        let thin = sb_vm::run_source(src, "main", &[]);
        assert_eq!(thin.ret(), Some(1));
        let fat = run_fat(src);
        assert_eq!(fat.ret(), Some(0), "fat pointers break sizeof assumptions");
    }

    #[test]
    fn wild_int_cast_roundtrip_breaks() {
        // CCured-SEQ cannot round-trip pointers through integers: the
        // metadata is lost and the dereference (correct in plain C) traps —
        // the "arbitrary casts: No" column of Table 1.
        let src = r#"
            int main() {
                int x = 5;
                int* p = &x;
                long l = (long)p;
                int* q = (int*)l;
                return *q;
            }
        "#;
        let plain = sb_vm::run_source(src, "main", &[]);
        assert_eq!(plain.ret(), Some(5));
        let fat = run_fat(src);
        assert!(fat.outcome.is_spatial_violation(), "{:?}", fat.outcome);
    }

    #[test]
    fn global_fat_pointer_initializers() {
        let r = run_fat(
            r#"
            int table[4] = {1, 2, 3, 4};
            int* cursor = &table[0];
            int main() { return cursor[0] + cursor[3]; }
        "#,
        );
        assert_eq!(r.ret(), Some(5), "{:?}", r.outcome);
    }

    #[test]
    fn metadata_is_plain_memory_traffic() {
        // No metadata runtime calls exist: only FatCheck.
        let m = compile_fat_protected("int* g; int main() { int* p = g; g = p; return 0; }")
            .expect("compiles");
        let rt_kinds: Vec<RtFn> = m
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter_map(|i| match i {
                Inst::Rt { rt, .. } => Some(*rt),
                _ => None,
            })
            .collect();
        assert!(
            rt_kinds
                .iter()
                .all(|rt| matches!(rt, RtFn::FatCheck { .. })),
            "{rt_kinds:?}"
        );
    }
}
