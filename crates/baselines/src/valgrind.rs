//! A Valgrind/Memcheck-style baseline: heap addressability checking with
//! redzones under dynamic binary instrumentation.
//!
//! Memcheck tracks an addressability bitmap for *heap* memory: allocations
//! are surrounded by redzones and freed blocks stay unaddressable, so heap
//! overflows and use-after-free are caught. Its well-known blind spots —
//! the ones Table 4 shows — are intra-frame **stack** overflows and
//! **global** array overflows (no redzones there), plus all sub-object
//! overflows. Costs model DBI: a large fixed per-memory-access penalty
//! (Memcheck typically slows programs 10–30×).

use std::collections::BTreeMap;

use sb_ir::{Inst, Module, RtFn, Value};
use sb_vm::{AccessSink, Mem, RtCtx, RtVals, RuntimeHooks, Trap, HEAP_BASE, STACK_BASE};

/// Synthetic address of the addressability bitmap (for the cache model).
pub const VBITS_BASE: u64 = 0x0000_1E00_0000_0000;

/// Per-access DBI + bitmap-check cost in x86-equivalent instructions.
pub const DBI_CHECK_COST: u64 = 22;

/// Redzone padding the harness should configure on the heap allocator
/// when running this baseline.
pub const REDZONE: u64 = 16;

/// Instruments every load/store with an addressability check (modelling
/// Memcheck's interception of all memory accesses). No IR beyond checks —
/// binary instrumentation needs no recompilation.
pub fn instrument_valgrind(module: &Module) -> Module {
    let mut m = module.clone();
    for f in &mut m.funcs {
        if !f.defined {
            continue;
        }
        for b in &mut f.blocks {
            let insts = std::mem::take(&mut b.insts);
            let mut out = Vec::with_capacity(insts.len() * 2);
            for inst in insts {
                match &inst {
                    Inst::Load { mem, addr, .. } => {
                        out.push(Inst::Rt {
                            dsts: vec![],
                            rt: RtFn::VgCheck { is_store: false },
                            args: vec![*addr, Value::Const(mem.size() as i64)],
                        });
                        out.push(inst);
                    }
                    Inst::Store { mem, addr, .. } => {
                        out.push(Inst::Rt {
                            dsts: vec![],
                            rt: RtFn::VgCheck { is_store: true },
                            args: vec![*addr, Value::Const(mem.size() as i64)],
                        });
                        out.push(inst);
                    }
                    _ => out.push(inst),
                }
            }
            b.insts = out;
        }
    }
    m
}

/// The Memcheck-like runtime: a live-heap-block map standing in for the
/// addressability bitmap.
#[derive(Debug, Default)]
pub struct ValgrindRuntime {
    live: BTreeMap<u64, u64>, // addr -> size
    /// Checks performed.
    pub check_count: u64,
}

impl ValgrindRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }

    fn heap_check(
        &mut self,
        ptr: u64,
        len: u64,
        is_store: bool,
        ctx: &mut RtCtx,
    ) -> Result<(), Trap> {
        self.check_count += 1;
        ctx.add_cost(DBI_CHECK_COST);
        ctx.touch(VBITS_BASE + ptr / 8);
        if !(HEAP_BASE..STACK_BASE).contains(&ptr) {
            // Stack and globals are addressable wholesale: Memcheck's
            // blind spot for array overflows there (Table 4: go, compress).
            return Ok(());
        }
        match self.live.range(..=ptr).next_back() {
            Some((&base, &size)) if ptr >= base && ptr + len <= base + size => Ok(()),
            _ => Err(Trap::SpatialViolation {
                scheme: "valgrind",
                addr: ptr,
                write: is_store,
            }),
        }
    }
}

impl RuntimeHooks for ValgrindRuntime {
    fn name(&self) -> &'static str {
        "valgrind"
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::VgCheck { is_store } => {
                self.heap_check(args[0] as u64, args[1] as u64, is_store, ctx)?;
                Ok([0, 0])
            }
            other => panic!("valgrind runtime received foreign rt call {other:?}"),
        }
    }

    fn on_malloc(&mut self, addr: u64, size: u64, ctx: &mut RtCtx) {
        self.live.insert(addr, size.max(1));
        ctx.add_cost(20); // redzone painting + bitmap updates
    }

    fn on_free(&mut self, addr: u64, _size: u64, _ptr_hint: bool, ctx: &mut RtCtx) {
        self.live.remove(&addr);
        ctx.add_cost(15);
    }

    fn check_builtin_range(
        &mut self,
        ptr: u64,
        len: u64,
        is_store: bool,
        ctx: &mut RtCtx,
    ) -> Result<(), Trap> {
        self.heap_check(ptr, len, is_store, ctx)
    }

    fn reset(&mut self) {
        self.live.clear();
        self.check_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_vm::{Machine, MachineConfig};

    fn run_vg(src: &str) -> sb_vm::RunResult {
        let prog = sb_cir::compile(src).expect("compiles");
        let mut m = sb_ir::lower(&prog, "t");
        sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
        let m = instrument_valgrind(&m);
        sb_ir::verify(&m).expect("verifies");
        let cfg = MachineConfig {
            redzone: REDZONE,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(&m, cfg, ValgrindRuntime::new());
        machine.run("main", &[])
    }

    #[test]
    fn safe_heap_program_passes() {
        let r = run_vg(
            r#"
            int main() {
                int* p = (int*)malloc(10 * sizeof(int));
                for (int i = 0; i < 10; i++) p[i] = i;
                int s = 0;
                for (int i = 0; i < 10; i++) s += p[i];
                free(p);
                return s == 45;
            }"#,
        );
        assert_eq!(r.ret(), Some(1), "{:?}", r.outcome);
    }

    #[test]
    fn heap_overflow_detected() {
        let r = run_vg(
            r#"
            int main() {
                char* p = (char*)malloc(8);
                p[8] = 'x'; // lands in the redzone
                return 0;
            }"#,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn heap_read_overflow_detected() {
        let r = run_vg(
            r#"
            int main() {
                char* p = (char*)malloc(8);
                return p[9];
            }"#,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn use_after_free_detected() {
        let r = run_vg(
            r#"
            int main() {
                char* p = (char*)malloc(8);
                free(p);
                p[0] = 1;
                return 0;
            }"#,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn stack_overflow_missed() {
        // Memcheck's blind spot: intra-frame stack smash goes unnoticed
        // (this is why Table 4 shows Valgrind missing the `go` bug).
        let r = run_vg(
            r#"
            int main() {
                char buf[8];
                long canary[1];
                canary[0] = 7;
                long* p = (long*)buf;
                p[1] = 99; // overflows buf into canary
                return (int)canary[0];
            }"#,
        );
        assert_eq!(
            r.ret(),
            Some(99),
            "stack overflow silently corrupts: {:?}",
            r.outcome
        );
    }

    #[test]
    fn global_overflow_missed() {
        let r = run_vg(
            r#"
            char buf[8];
            char victim[8];
            int main() {
                for (int i = 0; i < 12; i++) buf[i] = 'X';
                return victim[0] == 'X';
            }"#,
        );
        assert_eq!(
            r.ret(),
            Some(1),
            "global overflow silently corrupts: {:?}",
            r.outcome
        );
    }

    #[test]
    fn libc_heap_overflow_detected_via_wrapper() {
        let r = run_vg(
            r#"
            int main() {
                char* p = (char*)malloc(8);
                strcpy(p, "overflow..."); // 12 bytes into 8
                return 0;
            }"#,
        );
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }
}
