//! A unified driver over every implemented protection scheme, used by the
//! experiment harnesses (Tables 1/3/4, Figure 2, §6.5).

use crate::fatptr::{self, FatPtrRuntime};
use crate::mscc::{instrument_mscc, MsccRuntime};
use crate::object_table::{instrument_object_scheme, ObjectScheme, ObjectTableRuntime};
use crate::valgrind::{instrument_valgrind, ValgrindRuntime, REDZONE};
use sb_ir::Module;
use sb_vm::{Machine, MachineConfig, NoRuntime, RunResult, RuntimeHooks};
use softbound::{Engine, SoftBoundConfig, SoftBoundError};

/// Every protection scheme the reproduction implements.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// No protection (the overhead baseline).
    Uninstrumented,
    /// SoftBound in any configuration.
    SoftBound(SoftBoundConfig),
    /// Jones-Kelly object table (arithmetic + dereference checks).
    JonesKelly,
    /// GCC Mudflap-style object database (dereference checks).
    Mudflap,
    /// Valgrind/Memcheck-style heap addressability + redzones.
    Valgrind,
    /// SafeC/CCured-SEQ-style inline fat pointers.
    FatPointer,
    /// MSCC-style disjoint metadata without wild-cast support.
    Mscc,
}

impl Scheme {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            Scheme::Uninstrumented => "uninstrumented".into(),
            Scheme::SoftBound(cfg) => format!("SoftBound {}", cfg.label()),
            Scheme::JonesKelly => "Jones-Kelly (object table)".into(),
            Scheme::Mudflap => "Mudflap (object db)".into(),
            Scheme::Valgrind => "Valgrind (memcheck-like)".into(),
            Scheme::FatPointer => "Fat pointers (SafeC/CCured-SEQ)".into(),
            Scheme::Mscc => "MSCC".into(),
        }
    }

    /// The SoftBound engine matching this scheme's configuration, when
    /// the scheme is SoftBound — the session API every SoftBound
    /// compile/run below routes through.
    fn engine(&self) -> Option<Engine> {
        match self {
            Scheme::SoftBound(cfg) => Some(Engine::new().softbound_config(cfg.clone())),
            _ => None,
        }
    }

    /// Compiles and instruments a CIR-C source for this scheme (the fat
    /// baseline uses the fat memory layout). The SoftBound scheme goes
    /// through [`Engine::compile`]; the baselines share its error
    /// surface, reporting verifier failures as
    /// [`SoftBoundError::Verify`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Frontend errors ([`SoftBoundError::Compile`]) or instrumentation
    /// bugs ([`SoftBoundError::Verify`]).
    pub fn compile(&self, src: &str) -> Result<Module, SoftBoundError> {
        let module = match self {
            Scheme::FatPointer => return fatptr::compile_fat_protected(src),
            Scheme::SoftBound(_) => {
                let engine = self.engine().expect("SoftBound scheme");
                return Ok(engine.compile(src)?.into_parts().0);
            }
            _ => {
                let prog = sb_cir::compile(src)?;
                let mut m = sb_ir::lower(&prog, "program");
                sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
                m
            }
        };
        let mut m = match self {
            Scheme::Uninstrumented => module,
            Scheme::JonesKelly => instrument_object_scheme(&module, ObjectScheme::JonesKelly),
            Scheme::Mudflap => instrument_object_scheme(&module, ObjectScheme::Mudflap),
            Scheme::Valgrind => instrument_valgrind(&module),
            Scheme::Mscc => instrument_mscc(&module),
            Scheme::SoftBound(_) | Scheme::FatPointer => unreachable!("handled above"),
        };
        if !matches!(self, Scheme::Uninstrumented) {
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PostInstrument);
        }
        sb_ir::verify(&m)?;
        Ok(m)
    }

    /// The runtime hooks implementing this scheme's dynamic semantics,
    /// type-erased. This is the report/CLI boundary wrapper — the `run*`
    /// methods below bypass it and dispatch statically per scheme.
    pub fn runtime(&self) -> Box<dyn RuntimeHooks> {
        match self {
            Scheme::Uninstrumented => Box::new(NoRuntime),
            Scheme::SoftBound(cfg) => Box::new(softbound::runtime_for(cfg)),
            Scheme::JonesKelly => Box::new(ObjectTableRuntime::new(ObjectScheme::JonesKelly)),
            Scheme::Mudflap => Box::new(ObjectTableRuntime::new(ObjectScheme::Mudflap)),
            Scheme::Valgrind => Box::new(ValgrindRuntime::new()),
            Scheme::FatPointer => Box::new(FatPtrRuntime::new()),
            Scheme::Mscc => Box::new(MsccRuntime::new()),
        }
    }

    /// Runs `module` on a machine monomorphized for this scheme's
    /// concrete runtime — the statically-dispatched fast path every
    /// harness entry point funnels into.
    fn dispatch(
        &self,
        module: &Module,
        cfg: MachineConfig,
        entry: &str,
        args: &[i64],
    ) -> RunResult {
        fn go<H: RuntimeHooks>(
            module: &Module,
            cfg: MachineConfig,
            hooks: H,
            entry: &str,
            args: &[i64],
        ) -> RunResult {
            let mut machine = Machine::new(module, cfg, hooks);
            machine.run(entry, args)
        }
        match self {
            Scheme::Uninstrumented => go(module, cfg, NoRuntime, entry, args),
            Scheme::SoftBound(sb) => Engine::new()
                .softbound_config(sb.clone())
                .machine_config(cfg)
                .instantiate_module(module)
                .run(entry, args),
            Scheme::JonesKelly => go(
                module,
                cfg,
                ObjectTableRuntime::new(ObjectScheme::JonesKelly),
                entry,
                args,
            ),
            Scheme::Mudflap => go(
                module,
                cfg,
                ObjectTableRuntime::new(ObjectScheme::Mudflap),
                entry,
                args,
            ),
            Scheme::Valgrind => go(module, cfg, ValgrindRuntime::new(), entry, args),
            Scheme::FatPointer => go(module, cfg, FatPtrRuntime::new(), entry, args),
            Scheme::Mscc => go(module, cfg, MsccRuntime::new(), entry, args),
        }
    }

    /// Machine configuration (Valgrind gets heap redzones).
    pub fn machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::default();
        if matches!(self, Scheme::Valgrind) {
            cfg.redzone = REDZONE;
        }
        cfg
    }

    /// Compile + run in one call.
    ///
    /// # Errors
    ///
    /// Pipeline errors from [`Scheme::compile`].
    pub fn run(&self, src: &str, entry: &str, args: &[i64]) -> Result<RunResult, SoftBoundError> {
        let module = self.compile(src)?;
        Ok(self.dispatch(&module, self.machine_config(), entry, args))
    }

    /// Runs a precompiled module (must have been produced by
    /// [`Scheme::compile`] on the same scheme).
    pub fn run_module(&self, module: &Module, entry: &str, args: &[i64]) -> RunResult {
        self.dispatch(module, self.machine_config(), entry, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAFE: &str = r#"
        int main() {
            char* p = (char*)malloc(16);
            strcpy(p, "hello");
            long n = strlen(p);
            free(p);
            return n == 5;
        }
    "#;

    const HEAP_OVERFLOW: &str = r#"
        int main() {
            char* p = (char*)malloc(8);
            p[8] = 'x';
            return 0;
        }
    "#;

    #[test]
    fn every_scheme_runs_safe_code() {
        for scheme in [
            Scheme::Uninstrumented,
            Scheme::SoftBound(SoftBoundConfig::full_shadow()),
            Scheme::SoftBound(SoftBoundConfig::store_only_hash()),
            Scheme::JonesKelly,
            Scheme::Mudflap,
            Scheme::Valgrind,
            Scheme::FatPointer,
            Scheme::Mscc,
        ] {
            let r = scheme.run(SAFE, "main", &[]).expect("compiles");
            assert_eq!(r.ret(), Some(1), "{}: {:?}", scheme.label(), r.outcome);
        }
    }

    #[test]
    fn every_checker_catches_heap_overflow() {
        for scheme in [
            Scheme::SoftBound(SoftBoundConfig::full_shadow()),
            Scheme::JonesKelly,
            Scheme::Mudflap,
            Scheme::Valgrind,
            Scheme::FatPointer,
            Scheme::Mscc,
        ] {
            let r = scheme.run(HEAP_OVERFLOW, "main", &[]).expect("compiles");
            assert!(
                r.outcome.is_spatial_violation(),
                "{} should detect the heap overflow: {:?}",
                scheme.label(),
                r.outcome
            );
        }
    }

    #[test]
    fn uninstrumented_is_cheapest() {
        let base = Scheme::Uninstrumented.run(SAFE, "main", &[]).expect("ok");
        for scheme in [
            Scheme::SoftBound(SoftBoundConfig::full_shadow()),
            Scheme::JonesKelly,
            Scheme::Valgrind,
            Scheme::Mscc,
        ] {
            let r = scheme.run(SAFE, "main", &[]).expect("ok");
            assert!(
                r.stats.cycles >= base.stats.cycles,
                "{} cheaper than baseline?",
                scheme.label()
            );
        }
    }
}
