//! An MSCC-like baseline (Xu, DuVarney & Sekar, FSE 2004 — \[34\] in the
//! paper).
//!
//! Like SoftBound, MSCC keeps pointer metadata out of line and eschews
//! whole-program analysis; unlike SoftBound (§2.2, §6.5):
//!
//! * its best-performing configuration tracks bounds at **allocation
//!   granularity**, so sub-object overflows are missed;
//! * it **cannot handle arbitrary casts** — pointers forged from integers
//!   are effectively unchecked;
//! * its metadata access path is costlier (linked metadata structures
//!   mirroring the data), which the paper quantifies as 17–185% overhead
//!   (average 68%), e.g. 144% on `go` vs SoftBound's 55%.
//!
//! The transformation is shared with SoftBound via
//! [`softbound::instrument_flavored`]; only the flavor and the runtime
//! cost profile differ.

use sb_ir::{Module, RtFn};
use sb_vm::{AccessSink, Mem, RtCtx, RtVals, RuntimeHooks, Trap};
use softbound::SoftBoundError;
use softbound::{instrument_flavored, Flavor, Meta, SoftBoundConfig};
use std::collections::HashMap;

/// Synthetic address region of MSCC's metadata structures.
pub const MSCC_META_BASE: u64 = 0x0000_1A00_0000_0000;

/// Cost of one MSCC metadata access (pointer-to-metadata indirection
/// through mirrored structures).
pub const MSCC_META_COST: u64 = 12;
/// Cost of one MSCC bounds check.
pub const MSCC_CHECK_COST: u64 = 4;

/// Instruments a module MSCC-style.
pub fn instrument_mscc(module: &Module) -> Module {
    let cfg = SoftBoundConfig {
        clear_on_return: false,
        ..SoftBoundConfig::default()
    };
    instrument_flavored(module, &cfg, Flavor::mscc())
}

/// The MSCC runtime: disjoint metadata with a costlier access path and no
/// NULL-bounds special case for forged pointers (the transformation gives
/// those unbounded metadata instead).
#[derive(Debug, Default)]
pub struct MsccRuntime {
    meta: HashMap<u64, Meta>,
    /// Checks performed.
    pub check_count: u64,
}

impl MsccRuntime {
    /// Creates the runtime.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RuntimeHooks for MsccRuntime {
    fn name(&self) -> &'static str {
        "mscc"
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::MsccCheck { is_store } => {
                self.check_count += 1;
                ctx.add_cost(MSCC_CHECK_COST);
                let (ptr, base, bound, size) = (
                    args[0] as u64,
                    args[1] as u64,
                    args[2] as u64,
                    args[3] as u64,
                );
                if ptr < base || ptr.wrapping_add(size) > bound {
                    Err(Trap::SpatialViolation {
                        scheme: "mscc",
                        addr: ptr,
                        write: is_store,
                    })
                } else {
                    Ok([0, 0])
                }
            }
            RtFn::MsccMetaLoad => {
                let slot = (args[0] as u64) >> 3;
                ctx.add_cost(MSCC_META_COST);
                ctx.touch(MSCC_META_BASE + slot * 16);
                let m = self.meta.get(&slot).copied().unwrap_or(Meta::NULL);
                Ok([m.base as i64, m.bound as i64])
            }
            RtFn::MsccMetaStore => {
                let slot = (args[0] as u64) >> 3;
                ctx.add_cost(MSCC_META_COST);
                ctx.touch(MSCC_META_BASE + slot * 16);
                let m = Meta {
                    base: args[1] as u64,
                    bound: args[2] as u64,
                };
                if m.is_null() {
                    self.meta.remove(&slot);
                } else {
                    self.meta.insert(slot, m);
                }
                Ok([0, 0])
            }
            RtFn::MsccVaCheck => {
                ctx.add_cost(2);
                if args[0] < 0 || args[0] as u64 >= ctx.vararg_count {
                    Err(Trap::SpatialViolation {
                        scheme: "mscc",
                        addr: args[0] as u64,
                        write: false,
                    })
                } else {
                    Ok([0, 0])
                }
            }
            // The shared transformation emits these family-neutral
            // helpers for memcpy metadata movement.
            RtFn::SbMemcpyMeta => {
                let (dst, src, len) = (args[0] as u64, args[1] as u64, args[2] as u64);
                let mut off = 0;
                while off < len {
                    ctx.add_cost(2 * MSCC_META_COST);
                    let m = self
                        .meta
                        .get(&((src + off) >> 3))
                        .copied()
                        .unwrap_or(Meta::NULL);
                    if m.is_null() {
                        self.meta.remove(&((dst + off) >> 3));
                    } else {
                        self.meta.insert((dst + off) >> 3, m);
                    }
                    off += 8;
                }
                Ok([0, 0])
            }
            other => panic!("mscc runtime received foreign rt call {other:?}"),
        }
    }

    fn on_free(&mut self, addr: u64, size: u64, ptr_hint: bool, ctx: &mut RtCtx) {
        if ptr_hint {
            let mut a = addr & !7;
            while a < addr + size {
                self.meta.remove(&(a >> 3));
                ctx.add_cost(2);
                a += 8;
            }
        }
    }

    fn reset(&mut self) {
        self.meta.clear();
        self.check_count = 0;
    }
}

/// One-call pipeline: compile, instrument MSCC-style, run.
///
/// # Errors
///
/// Frontend errors or verifier failures, as [`SoftBoundError`].
pub fn run_mscc(src: &str, entry: &str, args: &[i64]) -> Result<sb_vm::RunResult, SoftBoundError> {
    let prog = sb_cir::compile(src)?;
    let mut m = sb_ir::lower(&prog, "mscc");
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
    let mut m = instrument_mscc(&m);
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PostInstrument);
    sb_ir::verify(&m)?;
    let mut machine = sb_vm::Machine::new(&m, sb_vm::MachineConfig::default(), MsccRuntime::new());
    Ok(machine.run(entry, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> sb_vm::RunResult {
        run_mscc(src, "main", &[]).expect("compiles")
    }

    #[test]
    fn functions_renamed_mscc() {
        let prog = sb_cir::compile("int main() { return 0; }").expect("compiles");
        let m = sb_ir::lower(&prog, "t");
        let m = instrument_mscc(&m);
        assert!(m.func("_mscc_main").is_some());
    }

    #[test]
    fn safe_program_runs() {
        let r = run(r#"
            int main() {
                int* p = (int*)malloc(8 * sizeof(int));
                for (int i = 0; i < 8; i++) p[i] = i;
                int s = 0;
                for (int i = 0; i < 8; i++) s += p[i];
                free(p);
                return s == 28;
            }"#);
        assert_eq!(r.ret(), Some(1), "{:?}", r.outcome);
    }

    #[test]
    fn whole_object_overflow_detected() {
        let r = run(r#"
            int main() {
                char* p = (char*)malloc(8);
                p[8] = 'x';
                return 0;
            }"#);
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn sub_object_overflow_missed() {
        // MSCC's fast configuration keeps allocation-granularity bounds:
        // the intra-struct overflow corrupts the neighbour silently
        // (Table 1 "Complete (subfield access)": No).
        let r = run(r#"
            struct node { char str[8]; long tag; };
            int main() {
                struct node n;
                n.tag = 7;
                char* p = n.str;
                p[8] = 'x';
                return n.tag == 7;
            }"#);
        assert_eq!(
            r.ret(),
            Some(0),
            "sub-object overflow must be missed: {:?}",
            r.outcome
        );
    }

    #[test]
    fn wild_casts_not_handled() {
        // A forged pointer is unchecked under MSCC (unbounded metadata):
        // the clearly-out-of-bounds store corrupts memory silently where
        // SoftBound would abort (Table 1 "Arb. casts": No).
        let src = r#"
            char buf[8];
            char victim[8];
            int main() {
                long addr = (long)buf;
                char* p = (char*)addr; // forged: MSCC cannot bound it
                for (int i = 0; i < 12; i++) p[i] = 'X';
                return victim[0] == 'X';
            }
        "#;
        let mscc = run(src);
        assert_eq!(
            mscc.ret(),
            Some(1),
            "mscc misses the forged overflow: {:?}",
            mscc.outcome
        );
        let sb = softbound::Engine::new()
            .run_once(src, "main", &[])
            .expect("compiles");
        assert!(
            sb.outcome.is_spatial_violation(),
            "softbound aborts: {:?}",
            sb.outcome
        );
    }

    #[test]
    fn mscc_costs_more_than_softbound() {
        let src = r#"
            struct node { int v; struct node* next; };
            int main() {
                struct node* head = NULL;
                for (int i = 0; i < 200; i++) {
                    struct node* n = (struct node*)malloc(sizeof(struct node));
                    n->v = i; n->next = head; head = n;
                }
                long s = 0;
                for (int pass = 0; pass < 5; pass++)
                    for (struct node* p = head; p; p = p->next) s += p->v;
                return s > 0;
            }
        "#;
        let mscc = run(src);
        assert_eq!(mscc.ret(), Some(1));
        let sb = softbound::Engine::new()
            .softbound_config(SoftBoundConfig::full_shadow())
            .run_once(src, "main", &[])
            .expect("ok");
        assert_eq!(sb.ret(), Some(1));
        assert!(
            mscc.stats.cycles > sb.stats.cycles,
            "MSCC ({}) should cost more than SoftBound-shadow ({}) — §6.5",
            mscc.stats.cycles,
            sb.stats.cycles
        );
    }
}
