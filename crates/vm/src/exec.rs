//! The pre-decoded execution IR (the "second tier").
//!
//! [`ExecModule::lower`] flattens a verified [`sb_ir::Module`] into one
//! contiguous `Vec` of fixed-size [`Op`]s per function:
//!
//! * operands are pre-resolved — registers become frame-slot indices,
//!   constants / global addresses / function addresses become immediates
//!   (global layout is a pure function of the module, so addresses are
//!   known before any machine exists);
//! * jump targets are pre-resolved to op offsets, and blocks are laid
//!   out in order so the flat program counter simply falls through;
//! * a spatial check immediately followed by the load/store it guards is
//!   fused into a single [`Op::CheckLoad`] / [`Op::CheckStore`]
//!   superinstruction that pays one dispatch instead of two (the CGuard
//!   shape: fold the bounds check into the guarded access).
//!
//! Variable-length operand lists (call arguments, return values,
//! destination registers) live in per-function side pools referenced by
//! [`PoolRef`] ranges, keeping [`Op`] itself `Copy` and fixed-size.
//!
//! The lowering is purely structural: it never changes which runtime
//! helpers run or in what order, so the machine's pre-decoded lane
//! ([`Machine::run_predecoded`](crate::Machine::run_predecoded)) must
//! produce byte-identical traps, counters, and cycle accounting to the
//! tree-walk oracle — the property `tests/machine_differential.rs` pins
//! for every workload.

use crate::mem::{fn_addr, GLOBAL_BASE};
use sb_cir::hir::Builtin;
use sb_ir::{ArithOp, Callee, CmpOp, Function, Inst, IntKind, MemTy, Module, RegId, RtFn, Value};

/// A pre-resolved operand: a frame slot or an immediate.
///
/// `GlobalAddr` and `FuncAddr` operands are folded to immediates at
/// decode time; only register reads survive to run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpVal {
    /// Read frame slot (register) `n`.
    Slot(u32),
    /// The value itself.
    Imm(i64),
}

/// A range into one of an [`ExecFunc`]'s side pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRef {
    /// First pool index.
    pub start: u32,
    /// Number of entries.
    pub len: u32,
}

impl PoolRef {
    const EMPTY: PoolRef = PoolRef { start: 0, len: 0 };

    /// The pool indices this reference spans.
    #[inline]
    pub fn range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A pre-resolved call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecCallee {
    /// Direct call to function index `n`.
    Direct(u32),
    /// Indirect call through a function-pointer value.
    Indirect(OpVal),
    /// A VM builtin.
    Builtin(Builtin),
}

/// One fixed-size, pre-decoded instruction.
///
/// Mirrors [`sb_ir::Inst`] except that operands are [`OpVal`]s, jump
/// targets are op offsets, variable-length lists are [`PoolRef`]s, and
/// the fused check+access superinstructions have no tree-walk
/// counterpart.
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// `slot[dst] = lhs op rhs`, wrapped to kind `k`.
    Bin {
        dst: u32,
        op: ArithOp,
        k: IntKind,
        lhs: OpVal,
        rhs: OpVal,
    },
    /// `slot[dst] = (lhs op rhs) ? 1 : 0`, comparing in kind `k`.
    Cmp {
        dst: u32,
        op: CmpOp,
        k: IntKind,
        lhs: OpVal,
        rhs: OpVal,
    },
    /// `slot[dst] = wrap_k(src)`.
    Cast { dst: u32, k: IntKind, src: OpVal },
    /// `slot[dst] = src`.
    Mov { dst: u32, src: OpVal },
    /// Stack slot address — precomputed at frame entry; the op only
    /// keeps the oracle's instruction accounting.
    Alloca { dst: u32 },
    /// `slot[dst] = *(mem)addr`.
    Load { dst: u32, mem: MemTy, addr: OpVal },
    /// `*(mem)addr = value`.
    Store {
        mem: MemTy,
        addr: OpVal,
        value: OpVal,
    },
    /// Fused `rt(addr, base, bound, size); slot[dst] = *(mem)addr` —
    /// one dispatch for the check and the load it guards.
    CheckLoad {
        rt: RtFn,
        dst: u32,
        mem: MemTy,
        addr: OpVal,
        base: OpVal,
        bound: OpVal,
    },
    /// Fused `rt(addr, base, bound, size); *(mem)addr = value`.
    CheckStore {
        rt: RtFn,
        mem: MemTy,
        addr: OpVal,
        value: OpVal,
        base: OpVal,
        bound: OpVal,
    },
    /// `slot[dst] = base + index*scale + offset`.
    Gep {
        dst: u32,
        base: OpVal,
        index: OpVal,
        scale: u64,
        offset: i64,
    },
    /// Runtime-helper call; `args` indexes the value pool, `dsts` the
    /// register pool.
    Rt {
        rt: RtFn,
        args: PoolRef,
        dsts: PoolRef,
    },
    /// Call; `args` indexes the value pool, `dsts` the register pool.
    Call {
        callee: ExecCallee,
        args: PoolRef,
        dsts: PoolRef,
        ptr_hint: bool,
        wrapped: bool,
    },
    /// Return the pooled values.
    Ret { vals: PoolRef },
    /// Unconditional jump to op offset `target`.
    Jump { target: u32 },
    /// Conditional branch to pre-resolved op offsets.
    Branch {
        cond: OpVal,
        then_t: u32,
        else_t: u32,
    },
    /// Trips [`Trap::Unreachable`](crate::Trap::Unreachable).
    Unreachable,
}

/// One function's flat op stream plus its operand side pools.
#[derive(Debug, Clone, Default)]
pub struct ExecFunc {
    /// The pre-decoded ops, blocks laid out in order (block 0 at
    /// offset 0). Empty for external declarations.
    pub ops: Vec<Op>,
    /// Operand pool for calls / runtime calls / returns.
    pub vals: Vec<OpVal>,
    /// Destination-register pool for calls / runtime calls.
    pub regs: Vec<RegId>,
}

/// A module lowered to the pre-decoded execution IR.
///
/// Produced once per program (cached on `softbound::Program`) and shared
/// by reference among any number of machines.
#[derive(Debug, Clone, Default)]
pub struct ExecModule {
    /// One entry per module function, same indexing as `module.funcs`.
    pub funcs: Vec<ExecFunc>,
    /// Check+access pairs fused into superinstructions across the module
    /// (static count, for reporting).
    pub fused_checks: u64,
}

impl ExecModule {
    /// Lowers a verified module into the flat execution IR.
    pub fn lower(module: &Module) -> ExecModule {
        let (globals, _) = global_layout(module);
        let mut fused_checks = 0;
        let funcs = module
            .funcs
            .iter()
            .map(|f| lower_func(f, &globals, &mut fused_checks))
            .collect();
        ExecModule {
            funcs,
            fused_checks,
        }
    }

    /// Total pre-decoded ops across the module.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.ops.len()).sum()
    }
}

/// Global addresses as a pure function of the module: the same
/// align-then-advance walk the machine performs when it maps the global
/// segment. Returns the per-global addresses and the end of the segment.
///
/// Shared between `Machine::layout_globals` and [`ExecModule::lower`] so
/// the immediates decoded here are the addresses the machine maps — by
/// construction, not by convention.
pub fn global_layout(module: &Module) -> (Vec<u64>, u64) {
    let mut addrs = Vec::with_capacity(module.globals.len());
    let end = global_layout_into(module, &mut addrs);
    (addrs, end)
}

/// [`global_layout`], writing into a caller-owned buffer (cleared first)
/// and returning the end of the segment. `Machine::reset` uses this form
/// so re-laying-out globals never allocates once the buffer has grown.
pub fn global_layout_into(module: &Module, addrs: &mut Vec<u64>) -> u64 {
    addrs.clear();
    let mut next = GLOBAL_BASE;
    for g in &module.globals {
        let align = g.align.max(1);
        next = next.div_ceil(align) * align;
        addrs.push(next);
        next += g.size.max(1);
    }
    next
}

fn resolve(v: &Value, globals: &[u64]) -> OpVal {
    match v {
        Value::Reg(r) => OpVal::Slot(r.0),
        Value::Const(c) => OpVal::Imm(*c),
        Value::GlobalAddr { id, offset } => OpVal::Imm((globals[id.0 as usize] + offset) as i64),
        Value::FuncAddr(f) => OpVal::Imm(fn_addr(f.0) as i64),
    }
}

/// True when the instruction at `i` is a spatial check guarding exactly
/// the access at `i + 1`, so the pair can fuse into one superinstruction.
///
/// The check must be of the 4-operand `[ptr, base, bound, size]` family,
/// produce no results, and its pointer/size operands must textually match
/// the access (the shape every instrumentation flavor emits). Fusion is
/// safe because jumps only ever target block starts: control cannot
/// enter between the check and its access.
fn fusible(insts: &[Inst], i: usize) -> bool {
    let Inst::Rt { dsts, rt, args } = &insts[i] else {
        return false;
    };
    let is_store = match rt {
        RtFn::SbCheck { is_store } | RtFn::MsccCheck { is_store } | RtFn::FatCheck { is_store } => {
            *is_store
        }
        _ => return false,
    };
    if !dsts.is_empty() || args.len() != 4 {
        return false;
    }
    match insts.get(i + 1) {
        Some(Inst::Load { mem, addr, .. }) if !is_store => {
            args[0] == *addr && args[3] == Value::Const(mem.size() as i64)
        }
        Some(Inst::Store { mem, addr, .. }) if is_store => {
            args[0] == *addr && args[3] == Value::Const(mem.size() as i64)
        }
        _ => false,
    }
}

fn lower_func(f: &Function, globals: &[u64], fused_checks: &mut u64) -> ExecFunc {
    if !f.defined {
        return ExecFunc::default();
    }
    // Pass 1: op offset of every block under fusion.
    let mut offsets = Vec::with_capacity(f.blocks.len());
    let mut off: u32 = 0;
    for b in &f.blocks {
        offsets.push(off);
        let mut i = 0;
        while i < b.insts.len() {
            i += if fusible(&b.insts, i) { 2 } else { 1 };
            off += 1;
        }
    }
    // Pass 2: emit with resolved targets.
    let mut ops = Vec::with_capacity(off as usize);
    let mut vals = Vec::new();
    let mut regs = Vec::new();
    let pool_vals = |vs: &[Value], vals: &mut Vec<OpVal>| -> PoolRef {
        let start = vals.len() as u32;
        vals.extend(vs.iter().map(|v| resolve(v, globals)));
        PoolRef {
            start,
            len: vs.len() as u32,
        }
    };
    let pool_regs = |rs: &[RegId], regs: &mut Vec<RegId>| -> PoolRef {
        let start = regs.len() as u32;
        regs.extend_from_slice(rs);
        PoolRef {
            start,
            len: rs.len() as u32,
        }
    };
    for b in &f.blocks {
        let mut i = 0;
        while i < b.insts.len() {
            if fusible(&b.insts, i) {
                let Inst::Rt { rt, args, .. } = &b.insts[i] else {
                    unreachable!("fusible matched a non-Rt");
                };
                let base = resolve(&args[1], globals);
                let bound = resolve(&args[2], globals);
                match &b.insts[i + 1] {
                    Inst::Load { dst, mem, addr } => ops.push(Op::CheckLoad {
                        rt: *rt,
                        dst: dst.0,
                        mem: *mem,
                        addr: resolve(addr, globals),
                        base,
                        bound,
                    }),
                    Inst::Store { mem, addr, value } => ops.push(Op::CheckStore {
                        rt: *rt,
                        mem: *mem,
                        addr: resolve(addr, globals),
                        value: resolve(value, globals),
                        base,
                        bound,
                    }),
                    _ => unreachable!("fusible matched a non-access"),
                }
                *fused_checks += 1;
                i += 2;
                continue;
            }
            let op = match &b.insts[i] {
                Inst::Bin {
                    dst,
                    op,
                    k,
                    lhs,
                    rhs,
                } => Op::Bin {
                    dst: dst.0,
                    op: *op,
                    k: *k,
                    lhs: resolve(lhs, globals),
                    rhs: resolve(rhs, globals),
                },
                Inst::Cmp {
                    dst,
                    op,
                    k,
                    lhs,
                    rhs,
                } => Op::Cmp {
                    dst: dst.0,
                    op: *op,
                    k: *k,
                    lhs: resolve(lhs, globals),
                    rhs: resolve(rhs, globals),
                },
                Inst::Cast { dst, k, src } => Op::Cast {
                    dst: dst.0,
                    k: *k,
                    src: resolve(src, globals),
                },
                Inst::Mov { dst, src } => Op::Mov {
                    dst: dst.0,
                    src: resolve(src, globals),
                },
                Inst::Alloca { dst, .. } => Op::Alloca { dst: dst.0 },
                Inst::Load { dst, mem, addr } => Op::Load {
                    dst: dst.0,
                    mem: *mem,
                    addr: resolve(addr, globals),
                },
                Inst::Store { mem, addr, value } => Op::Store {
                    mem: *mem,
                    addr: resolve(addr, globals),
                    value: resolve(value, globals),
                },
                Inst::Gep {
                    dst,
                    base,
                    index,
                    scale,
                    offset,
                    ..
                } => Op::Gep {
                    dst: dst.0,
                    base: resolve(base, globals),
                    index: resolve(index, globals),
                    scale: *scale,
                    offset: *offset,
                },
                Inst::Rt { dsts, rt, args } => Op::Rt {
                    rt: *rt,
                    args: pool_vals(args, &mut vals),
                    dsts: pool_regs(dsts, &mut regs),
                },
                Inst::Call {
                    dsts,
                    callee,
                    args,
                    ptr_hint,
                    wrapped,
                } => Op::Call {
                    callee: match callee {
                        Callee::Direct(fid) => ExecCallee::Direct(fid.0),
                        Callee::Indirect(v) => ExecCallee::Indirect(resolve(v, globals)),
                        Callee::Builtin(b) => ExecCallee::Builtin(*b),
                    },
                    args: pool_vals(args, &mut vals),
                    dsts: pool_regs(dsts, &mut regs),
                    ptr_hint: *ptr_hint,
                    wrapped: *wrapped,
                },
                Inst::Ret { vals: vs } => Op::Ret {
                    vals: if vs.is_empty() {
                        PoolRef::EMPTY
                    } else {
                        pool_vals(vs, &mut vals)
                    },
                },
                Inst::Jmp { to } => Op::Jump {
                    target: offsets[to.0 as usize],
                },
                Inst::Br {
                    cond,
                    then_to,
                    else_to,
                } => Op::Branch {
                    cond: resolve(cond, globals),
                    then_t: offsets[then_to.0 as usize],
                    else_t: offsets[else_to.0 as usize],
                },
                Inst::Unreachable => Op::Unreachable,
            };
            ops.push(op);
            i += 1;
        }
    }
    debug_assert_eq!(ops.len(), off as usize, "pass 1/2 disagree on op count");
    ExecFunc { ops, vals, regs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_of(src: &str) -> Module {
        let prog = sb_cir::compile(src).expect("compiles");
        let mut m = sb_ir::lower(&prog, "exec-test");
        sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
        m
    }

    #[test]
    fn lowering_is_structural() {
        let m = module_of(
            r#"
            int add(int a, int b) { return a + b; }
            int main() {
                int a[4];
                for (int i = 0; i < 4; i++) a[i] = i;
                return add(a[1], a[3]);
            }
        "#,
        );
        let exec = ExecModule::lower(&m);
        assert_eq!(exec.funcs.len(), m.funcs.len());
        // No instrumentation → nothing to fuse, op count == inst count.
        assert_eq!(exec.fused_checks, 0);
        assert_eq!(exec.op_count(), m.inst_count());
    }

    #[test]
    fn jump_targets_resolve_to_block_offsets() {
        let m =
            module_of("int main(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }");
        let exec = ExecModule::lower(&m);
        for (f, ef) in m.funcs.iter().zip(&exec.funcs) {
            if !f.defined {
                continue;
            }
            for op in &ef.ops {
                match op {
                    Op::Jump { target } => assert!((*target as usize) < ef.ops.len()),
                    Op::Branch { then_t, else_t, .. } => {
                        assert!((*then_t as usize) < ef.ops.len());
                        assert!((*else_t as usize) < ef.ops.len());
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn global_layout_is_aligned_and_ordered() {
        let m = module_of("int g1; char c; long g2[8]; int main() { return g1; }");
        let (addrs, end) = global_layout(&m);
        assert_eq!(addrs.len(), m.globals.len());
        let mut prev = GLOBAL_BASE;
        for (a, g) in addrs.iter().zip(&m.globals) {
            assert!(*a >= prev, "globals laid out in order");
            assert_eq!(a % g.align.max(1), 0, "aligned");
            prev = *a;
        }
        assert!(end > GLOBAL_BASE);
    }

    #[test]
    fn check_access_pairs_fuse() {
        use sb_ir::{Block, RegKind};
        // Hand-build `f(p) { check(p); *p = 1; check(p); return *p; }`
        // with the exact operand shape the instrumentation pass emits.
        let mut f = Function {
            name: "f".into(),
            params: vec![],
            param_kinds: vec![],
            ret_kinds: vec![RegKind::Int],
            reg_kinds: vec![],
            blocks: vec![Block::default()],
            vararg: false,
            defined: true,
        };
        let p = f.new_reg(RegKind::Ptr);
        f.params.push(p);
        f.param_kinds.push(RegKind::Ptr);
        let v = f.new_reg(RegKind::Int);
        let check = |is_store| Inst::Rt {
            dsts: vec![],
            rt: RtFn::SbCheck { is_store },
            args: vec![
                Value::Reg(p),
                Value::Const(0),
                Value::Const(i64::MAX),
                Value::Const(8),
            ],
        };
        f.blocks[0].insts = vec![
            check(true),
            Inst::Store {
                mem: MemTy::I64,
                addr: Value::Reg(p),
                value: Value::Const(1),
            },
            check(false),
            Inst::Load {
                dst: v,
                mem: MemTy::I64,
                addr: Value::Reg(p),
            },
            Inst::Ret {
                vals: vec![Value::Reg(v)],
            },
        ];
        let m = Module {
            name: "fuse-test".into(),
            globals: vec![],
            funcs: vec![f],
        };
        let exec = ExecModule::lower(&m);
        assert_eq!(exec.fused_checks, 2, "both pairs fuse");
        assert_eq!(exec.funcs[0].ops.len(), 3, "5 insts → 3 ops");
        assert!(matches!(exec.funcs[0].ops[0], Op::CheckStore { .. }));
        assert!(matches!(exec.funcs[0].ops[1], Op::CheckLoad { .. }));
    }
}
