//! Byte-accurate simulated 64-bit memory and the heap allocator.
//!
//! Memory is a sparse map of 4 KiB pages. Segments mirror a conventional
//! process image so that spatial bugs behave realistically:
//!
//! * **globals** at [`GLOBAL_BASE`] — laid out contiguously in declaration
//!   order, so an overflowing global buffer silently corrupts its neighbor
//!   (the BugBench `compress` bug class);
//! * **heap** at [`HEAP_BASE`] — bump-with-free-list allocator, optional
//!   redzones (used by the Valgrind-like baseline);
//! * **stack** at [`STACK_BASE`], growing upward; frames carry spilled
//!   return tokens and saved frame pointers (see `interp`);
//! * **code** at [`FN_BASE`] — function "addresses" are synthesized, not
//!   backed by pages, so data accesses to code fault.
//!
//! Accesses to unmapped pages return [`MemFault`], the analogue of a
//! segfault; accesses *within* a mapped page but outside any object are
//! silent corruption — exactly the behaviour that makes spatial bugs
//! dangerous and bounds checking worthwhile.

use std::collections::HashMap;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Base address of the global/data segment.
pub const GLOBAL_BASE: u64 = 0x0000_0000_0001_0000;
/// Base address of the heap segment.
pub const HEAP_BASE: u64 = 0x0000_2000_0000_0000;
/// Base address of the stack segment (grows upward).
pub const STACK_BASE: u64 = 0x0000_7F00_0000_0000;
/// Base "address" of the code segment (function pointers).
pub const FN_BASE: u64 = 0x0000_4000_0000_0000;
/// Byte stride between synthesized function addresses.
pub const FN_STRIDE: u64 = 16;

/// Encodes a function id as a code address.
pub fn fn_addr(index: u32) -> u64 {
    FN_BASE + index as u64 * FN_STRIDE
}

/// Decodes a code address back to a function index, if well-formed.
pub fn decode_fn_addr(addr: u64) -> Option<u32> {
    if addr >= FN_BASE && (addr - FN_BASE).is_multiple_of(FN_STRIDE) {
        let idx = (addr - FN_BASE) / FN_STRIDE;
        u32::try_from(idx).ok()
    } else {
        None
    }
}

/// An out-of-segment access (the simulated SIGSEGV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: u64,
    /// True if the access was a write.
    pub write: bool,
}

/// Sparse paged memory.
///
/// Page frames live in a flat store indexed through the page table, and
/// the most recent translation is cached: loop-shaped access patterns
/// (array scans, stack traffic) hit the same page repeatedly, so the
/// common case is one comparison instead of a hash lookup. No page is
/// ever unmapped *within* a run, so the cached slot cannot go stale
/// mid-run; the one path that does drop mappings — [`reset`](Mem::reset)
/// between runs of a reused machine — must (and does) invalidate the
/// cache, because both `slot_of` and `map_range` trust it without
/// consulting the page table.
#[derive(Debug)]
pub struct Mem {
    /// Page index → slot in `store`.
    pages: HashMap<u64, u32>,
    /// Page frames, in mapping order.
    store: Vec<Box<[u8; PAGE_SIZE as usize]>>,
    /// Frames released by [`reset`](Mem::reset), recycled (re-zeroed)
    /// by `map_range` before a fresh frame is ever allocated.
    free_frames: Vec<u32>,
    /// Last translation `(page index, slot)`; the sentinel page index
    /// `u64::MAX` is unreachable (addresses are `< 2^64`, so page
    /// indices are `< 2^52`).
    last: (u64, u32),
    /// Total bytes read/written (for statistics).
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

impl Default for Mem {
    fn default() -> Self {
        Mem {
            pages: HashMap::new(),
            store: Vec::new(),
            free_frames: Vec::new(),
            last: (u64::MAX, 0),
            bytes_read: 0,
            bytes_written: 0,
        }
    }
}

impl Mem {
    /// Creates empty memory.
    pub fn new() -> Self {
        Mem::default()
    }

    /// Translates a page index to its store slot, through the one-entry
    /// translation cache.
    #[inline]
    fn slot_of(&mut self, page: u64) -> Option<u32> {
        if self.last.0 == page {
            return Some(self.last.1);
        }
        let s = *self.pages.get(&page)?;
        self.last = (page, s);
        Some(s)
    }

    /// Maps (zero-filled) every page overlapping `[addr, addr+len)`.
    pub fn map_range(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for p in first..=last {
            // The cached translation proves the page is mapped without
            // a hash lookup (frame setup re-maps the same stack page on
            // every call).
            if p == self.last.0 || self.pages.contains_key(&p) {
                continue;
            }
            let slot = match self.free_frames.pop() {
                // Recycle a frame dropped by `reset`, restoring the
                // zero-fill a fresh mapping guarantees.
                Some(s) => {
                    self.store[s as usize].fill(0);
                    s
                }
                None => {
                    let slot = u32::try_from(self.store.len()).expect("page-store overflow");
                    self.store.push(Box::new([0u8; PAGE_SIZE as usize]));
                    slot
                }
            };
            self.pages.insert(p, slot);
        }
    }

    /// Unmaps every page and clears the statistics, returning the memory
    /// to its just-constructed *observable* state while keeping the
    /// allocated page frames for recycling — a long-lived machine that
    /// resets between requests pays the host allocator only for its
    /// high-water page count.
    ///
    /// The one-entry translation cache must be invalidated here: it is
    /// the one piece of state that outlives the page table. `slot_of`
    /// returns the cached slot without consulting `pages`, and
    /// `map_range` takes a cache hit as proof the page is already
    /// mapped — a stale entry would let the next run silently read the
    /// previous run's dropped frame, or skip the zero-fill of a page
    /// the new allocation layout maps at the same address.
    pub fn reset(&mut self) {
        self.pages.clear();
        self.free_frames.clear();
        self.free_frames
            .extend(0..u32::try_from(self.store.len()).expect("page-store overflow"));
        self.last = (u64::MAX, 0);
        self.bytes_read = 0;
        self.bytes_written = 0;
    }

    /// True if `addr` is on a mapped page.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// Number of mapped pages (memory-overhead statistics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `buf.len()` bytes from `addr`.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if any byte is on an unmapped page.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.bytes_read += buf.len() as u64;
        let in_page = (addr % PAGE_SIZE) as usize;
        // Fast path: the access stays on one page — one translation,
        // one slice copy. (Empty reads succeed even on unmapped
        // addresses, as they always have; the slow loop handles them.)
        if !buf.is_empty() && in_page + buf.len() <= PAGE_SIZE as usize {
            return match self.slot_of(addr / PAGE_SIZE) {
                Some(s) => {
                    let n = buf.len();
                    buf.copy_from_slice(&self.store[s as usize][in_page..in_page + n]);
                    Ok(())
                }
                None => Err(MemFault { addr, write: false }),
            };
        }
        self.read_multi_page(addr, buf)
    }

    fn read_multi_page(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a / PAGE_SIZE;
            let in_page = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - off);
            match self.slot_of(page) {
                Some(s) => {
                    buf[off..off + n].copy_from_slice(&self.store[s as usize][in_page..in_page + n])
                }
                None => {
                    return Err(MemFault {
                        addr: a,
                        write: false,
                    })
                }
            }
            off += n;
        }
        Ok(())
    }

    /// Writes `buf` to `addr`.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if any byte is on an unmapped page.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemFault> {
        self.bytes_written += buf.len() as u64;
        let in_page = (addr % PAGE_SIZE) as usize;
        if !buf.is_empty() && in_page + buf.len() <= PAGE_SIZE as usize {
            return match self.slot_of(addr / PAGE_SIZE) {
                Some(s) => {
                    self.store[s as usize][in_page..in_page + buf.len()].copy_from_slice(buf);
                    Ok(())
                }
                None => Err(MemFault { addr, write: true }),
            };
        }
        self.write_multi_page(addr, buf)
    }

    fn write_multi_page(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemFault> {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a / PAGE_SIZE;
            let in_page = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(buf.len() - off);
            match self.slot_of(page) {
                Some(s) => {
                    self.store[s as usize][in_page..in_page + n].copy_from_slice(&buf[off..off + n])
                }
                None => {
                    return Err(MemFault {
                        addr: a,
                        write: true,
                    })
                }
            }
            off += n;
        }
        Ok(())
    }

    /// Reads an unsigned little-endian integer of `size` ∈ {1,2,4,8} bytes.
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped access.
    pub fn read_uint(&mut self, addr: u64, size: u64) -> Result<u64, MemFault> {
        // Fixed-width fast path: a machine-word load instead of a
        // variable-length copy when the access stays on one page.
        let in_page = (addr % PAGE_SIZE) as usize;
        if matches!(size, 1 | 2 | 4 | 8) && in_page + size as usize <= PAGE_SIZE as usize {
            self.bytes_read += size;
            return match self.slot_of(addr / PAGE_SIZE) {
                Some(s) => {
                    let p = &self.store[s as usize][in_page..];
                    Ok(match size {
                        1 => p[0] as u64,
                        2 => u16::from_le_bytes(p[..2].try_into().expect("2 bytes")) as u64,
                        4 => u32::from_le_bytes(p[..4].try_into().expect("4 bytes")) as u64,
                        _ => u64::from_le_bytes(p[..8].try_into().expect("8 bytes")),
                    })
                }
                None => Err(MemFault { addr, write: false }),
            };
        }
        let mut b = [0u8; 8];
        self.read(addr, &mut b[..size as usize])?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes the low `size` bytes of `v`, little-endian.
    ///
    /// # Errors
    ///
    /// [`MemFault`] on unmapped access.
    pub fn write_uint(&mut self, addr: u64, size: u64, v: u64) -> Result<(), MemFault> {
        let in_page = (addr % PAGE_SIZE) as usize;
        if in_page + size as usize <= PAGE_SIZE as usize && matches!(size, 1 | 2 | 4 | 8) {
            return match self.slot_of(addr / PAGE_SIZE) {
                Some(s) => {
                    self.bytes_written += size;
                    let p = &mut self.store[s as usize][in_page..];
                    match size {
                        1 => p[0] = v as u8,
                        2 => p[..2].copy_from_slice(&(v as u16).to_le_bytes()),
                        4 => p[..4].copy_from_slice(&(v as u32).to_le_bytes()),
                        _ => p[..8].copy_from_slice(&v.to_le_bytes()),
                    }
                    Ok(())
                }
                None => {
                    self.bytes_written += size;
                    Err(MemFault { addr, write: true })
                }
            };
        }
        let b = v.to_le_bytes();
        self.write(addr, &b[..size as usize])
    }

    /// Reads an unsigned little-endian integer of `size` (≤ 8) bytes
    /// with the access *clamped* to `[lo, hi)`: in-bounds bytes come
    /// from memory, out-of-bounds bytes read as zero (a "zeroed read").
    /// This is the access shape a repair-and-continue violation policy
    /// substitutes for an out-of-bounds load — a fully out-of-bounds
    /// access yields 0 and touches no memory at all.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if an *in-bounds* byte lies on an unmapped page.
    pub fn read_uint_clamped(
        &mut self,
        addr: u64,
        size: u64,
        lo: u64,
        hi: u64,
    ) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        for i in 0..size.min(8) {
            let a = addr.wrapping_add(i);
            if a >= lo && a < hi {
                b[i as usize] = self.read_uint(a, 1)? as u8;
            }
        }
        Ok(u64::from_le_bytes(b))
    }

    /// Writes the low `size` (≤ 8) bytes of `v` little-endian with the
    /// access clamped to `[lo, hi)`: only in-bounds bytes are stored (a
    /// "truncated write"), out-of-bounds bytes are dropped. The
    /// repair-and-continue counterpart of an out-of-bounds store; a
    /// fully out-of-bounds access stores nothing.
    ///
    /// # Errors
    ///
    /// [`MemFault`] if an *in-bounds* byte lies on an unmapped page.
    pub fn write_uint_clamped(
        &mut self,
        addr: u64,
        size: u64,
        v: u64,
        lo: u64,
        hi: u64,
    ) -> Result<(), MemFault> {
        let b = v.to_le_bytes();
        for i in 0..size.min(8) {
            let a = addr.wrapping_add(i);
            if a >= lo && a < hi {
                self.write_uint(a, 1, b[i as usize] as u64)?;
            }
        }
        Ok(())
    }

    /// Order-independent digest of the full memory image (every mapped
    /// page's index and contents, folded in sorted page order). Two
    /// memories with identical mapped pages and bytes hash equal —
    /// the equality the whole-program differential suite asserts on
    /// final memory across metadata facilities.
    pub fn content_hash(&self) -> u64 {
        let mut idxs: Vec<u64> = self.pages.keys().copied().collect();
        idxs.sort_unstable();
        // FNV-1a over (page index, page bytes).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |byte: u8, h: &mut u64| {
            *h ^= byte as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for i in idxs {
            for b in i.to_le_bytes() {
                mix(b, &mut h);
            }
            for &b in self.store[self.pages[&i] as usize].iter() {
                mix(b, &mut h);
            }
        }
        h
    }

    /// [`content_hash`](Self::content_hash) restricted to pages whose
    /// start address falls in `[lo, hi)` — e.g. the globals+heap region
    /// below [`FN_BASE`], which holds exactly the program-visible data
    /// an uninstrumented twin must reproduce (stack pages carry frame
    /// residue that legitimately differs across instrumentation).
    pub fn content_hash_range(&self, lo: u64, hi: u64) -> u64 {
        let mut idxs: Vec<u64> = self
            .pages
            .keys()
            .copied()
            .filter(|&i| (lo / PAGE_SIZE..hi / PAGE_SIZE).contains(&i))
            .collect();
        idxs.sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mix = |byte: u8, h: &mut u64| {
            *h ^= byte as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for i in idxs {
            for b in i.to_le_bytes() {
                mix(b, &mut h);
            }
            for &b in self.store[self.pages[&i] as usize].iter() {
                mix(b, &mut h);
            }
        }
        h
    }

    /// Reads a NUL-terminated C string (bounded by `max` bytes).
    ///
    /// # Errors
    ///
    /// [`MemFault`] if the string runs onto an unmapped page before a NUL.
    pub fn read_cstr(&mut self, addr: u64, max: u64) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max {
            let c = self.read_uint(addr + i, 1)? as u8;
            if c == 0 {
                break;
            }
            out.push(c);
        }
        Ok(out)
    }
}

/// One live heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapBlock {
    /// User address.
    pub addr: u64,
    /// User-visible size.
    pub size: u64,
}

/// Bump allocator with size-class free lists and optional redzones.
///
/// Redzones (`redzone > 0`) pad each allocation on both sides; the
/// Valgrind-like baseline marks them unaddressable to catch heap
/// overflows. SoftBound itself needs no redzones.
#[derive(Debug)]
pub struct Heap {
    next: u64,
    limit: u64,
    redzone: u64,
    free: HashMap<u64, Vec<u64>>, // rounded size -> addresses
    live: HashMap<u64, u64>,      // addr -> user size
    /// Number of successful allocations.
    pub alloc_count: u64,
    /// Number of frees.
    pub free_count: u64,
    /// High-water mark of live bytes.
    pub peak_live: u64,
    live_bytes: u64,
}

impl Heap {
    /// Creates a heap with the given redzone padding (0 for none).
    pub fn new(redzone: u64) -> Self {
        Heap {
            next: HEAP_BASE,
            limit: HEAP_BASE + (64 << 30), // 64 GiB of address space
            redzone,
            free: HashMap::new(),
            live: HashMap::new(),
            alloc_count: 0,
            free_count: 0,
            peak_live: 0,
            live_bytes: 0,
        }
    }

    /// The configured redzone size.
    pub fn redzone(&self) -> u64 {
        self.redzone
    }

    fn class_of(size: u64) -> u64 {
        size.next_power_of_two().max(16)
    }

    /// Allocates `size` bytes (16-aligned), mapping pages in `mem`.
    /// Returns `None` when address space is exhausted.
    pub fn alloc(&mut self, mem: &mut Mem, size: u64) -> Option<u64> {
        let user = size.max(1);
        let class = Self::class_of(user);
        self.alloc_count += 1;
        let addr = if let Some(list) = self.free.get_mut(&class) {
            list.pop()
        } else {
            None
        };
        let addr = match addr {
            Some(a) => a,
            None => {
                let total = class + 2 * self.redzone;
                let base = self.next;
                if base + total > self.limit {
                    return None;
                }
                self.next = (base + total + 15) & !15;
                base + self.redzone
            }
        };
        mem.map_range(addr, class);
        // Zero the block (reused blocks keep stale contents otherwise;
        // zeroing keeps runs deterministic while reuse of *addresses* —
        // what SoftBound's metadata clearing is about — still happens).
        // Chunked through a fixed buffer so allocating simulated memory
        // never allocates host memory.
        let zeros = [0u8; 256];
        let total = user.min(class);
        let mut off = 0u64;
        while off < total {
            let n = (total - off).min(zeros.len() as u64);
            let _ = mem.write(addr + off, &zeros[..n as usize]);
            off += n;
        }
        self.live.insert(addr, user);
        self.live_bytes += user;
        self.peak_live = self.peak_live.max(self.live_bytes);
        Some(addr)
    }

    /// Frees a block; returns its user size, or `None` for a bad pointer
    /// (double free / wild free).
    pub fn dealloc(&mut self, addr: u64) -> Option<u64> {
        let size = self.live.remove(&addr)?;
        self.free_count += 1;
        self.live_bytes -= size;
        self.free
            .entry(Self::class_of(size))
            .or_default()
            .push(addr);
        Some(size)
    }

    /// User size of a live block.
    pub fn size_of(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Iterates over live blocks.
    pub fn live_blocks(&self) -> impl Iterator<Item = HeapBlock> + '_ {
        self.live
            .iter()
            .map(|(&addr, &size)| HeapBlock { addr, size })
    }

    /// True if `addr` falls inside a live user block (used by the
    /// Valgrind-like baseline's addressability map).
    pub fn find_block(&self, addr: u64) -> Option<HeapBlock> {
        // Linear probe over live blocks; fine for workload-scale heaps and
        // only used by baselines that model their own lookup cost anyway.
        self.live
            .iter()
            .find(|(&a, &s)| addr >= a && addr < a + s)
            .map(|(&a, &s)| HeapBlock { addr: a, size: s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = Mem::new();
        m.map_range(0x1000, 64);
        m.write_uint(0x1008, 8, 0xdead_beef_cafe_f00d)
            .expect("write");
        assert_eq!(m.read_uint(0x1008, 8).expect("read"), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_uint(0x1008, 4).expect("read"), 0xcafe_f00d);
        assert_eq!(m.read_uint(0x1008, 1).expect("read"), 0x0d);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Mem::new();
        m.map_range(PAGE_SIZE - 4, 8);
        m.write_uint(PAGE_SIZE - 4, 8, u64::MAX)
            .expect("write spans pages");
        assert_eq!(m.read_uint(PAGE_SIZE - 4, 8).expect("read"), u64::MAX);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = Mem::new();
        assert_eq!(
            m.read_uint(0x5000, 8),
            Err(MemFault {
                addr: 0x5000,
                write: false
            })
        );
        assert_eq!(
            m.write_uint(0x5000, 8, 1),
            Err(MemFault {
                addr: 0x5000,
                write: true
            })
        );
    }

    #[test]
    fn partial_cross_page_fault_reports_address() {
        let mut m = Mem::new();
        m.map_range(0, PAGE_SIZE); // only page 0
        let e = m
            .write_uint(PAGE_SIZE - 2, 4, 0)
            .expect_err("faults on page 1");
        assert_eq!(e.addr, PAGE_SIZE);
        assert!(e.write);
    }

    #[test]
    fn cstr_reading() {
        let mut m = Mem::new();
        m.map_range(0x2000, 16);
        m.write(0x2000, b"hi\0junk").expect("write");
        assert_eq!(m.read_cstr(0x2000, 16).expect("read"), b"hi");
    }

    #[test]
    fn clamped_read_zero_fills_out_of_bounds_bytes() {
        let mut m = Mem::new();
        m.map_range(0x1000, 64);
        m.write_uint(0x1000, 8, u64::MAX).expect("write");
        // Object is [0x1000, 0x1004): upper 4 bytes of the read are OOB.
        assert_eq!(
            m.read_uint_clamped(0x1000, 8, 0x1000, 0x1004)
                .expect("read"),
            0x0000_0000_ffff_ffff
        );
        // Fully out of bounds: zero, even on unmapped addresses.
        assert_eq!(m.read_uint_clamped(0x9000, 8, 0x1000, 0x1004), Ok(0));
        // Straddling the base: low bytes OOB, high bytes in.
        assert_eq!(
            m.read_uint_clamped(0xffe, 4, 0x1000, 0x1004).expect("read"),
            0xffff_0000
        );
    }

    #[test]
    fn clamped_write_stores_only_in_bounds_bytes() {
        let mut m = Mem::new();
        m.map_range(0x1000, 64);
        m.write_uint_clamped(0x1002, 4, 0xaabb_ccdd, 0x1000, 0x1004)
            .expect("write");
        // Bytes at 0x1002..0x1004 stored, 0x1004..0x1006 dropped.
        assert_eq!(m.read_uint(0x1000, 8).expect("read"), 0xccdd_0000);
        // Fully out of bounds: no fault, no store, even unmapped.
        m.write_uint_clamped(0x9000, 8, 0x1234, 0x1000, 0x1004)
            .expect("write nothing");
        assert!(!m.is_mapped(0x9000));
    }

    #[test]
    fn fn_addr_roundtrip() {
        assert_eq!(decode_fn_addr(fn_addr(0)), Some(0));
        assert_eq!(decode_fn_addr(fn_addr(99)), Some(99));
        assert_eq!(decode_fn_addr(fn_addr(7) + 1), None);
        assert_eq!(decode_fn_addr(0x1234), None);
    }

    #[test]
    fn reset_invalidates_translation_cache() {
        let mut m = Mem::new();
        m.map_range(0x1000, 8);
        m.write_uint(0x1000, 8, 0xAB)
            .expect("write warms the cache");
        m.reset();
        // Failure mode being pinned: a surviving (page, slot) cache entry
        // lets this read silently return the dropped frame's contents
        // instead of faulting on the now-unmapped page.
        assert_eq!(
            m.read_uint(0x1000, 8),
            Err(MemFault {
                addr: 0x1000,
                write: false
            })
        );
    }

    #[test]
    fn reset_invalidates_map_range_mapped_proof() {
        let mut m = Mem::new();
        m.map_range(0x1000, 8);
        m.write_uint(0x1000, 8, 0xdead_beef).expect("write");
        m.reset();
        // `map_range` takes a cache hit as proof the page is mapped; a
        // stale entry would skip both the mapping and the zero-fill.
        m.map_range(0x1000, 8);
        assert_eq!(
            m.read_uint(0x1000, 8).expect("mapped again"),
            0,
            "recycled frame must be zero-filled"
        );
    }

    #[test]
    fn reset_recycles_frames_across_different_layouts() {
        let mut m = Mem::new();
        m.map_range(0x1000, PAGE_SIZE * 2);
        m.write_uint(0x1000, 8, 7).expect("write");
        assert_eq!(m.mapped_pages(), 2);
        m.reset();
        assert_eq!(m.mapped_pages(), 0);
        assert_eq!((m.bytes_read, m.bytes_written), (0, 0));
        // A different layout on the second run: recycled frames, zeroed,
        // observably identical to a fresh memory with the same mappings.
        m.map_range(0x9000, 8);
        let mut fresh = Mem::new();
        fresh.map_range(0x9000, 8);
        assert_eq!(m.content_hash(), fresh.content_hash());
    }

    #[test]
    fn heap_alloc_and_free() {
        let mut mem = Mem::new();
        let mut h = Heap::new(0);
        let a = h.alloc(&mut mem, 100).expect("alloc");
        assert!(a >= HEAP_BASE);
        assert!(mem.is_mapped(a));
        assert_eq!(h.size_of(a), Some(100));
        assert_eq!(h.dealloc(a), Some(100));
        assert_eq!(h.dealloc(a), None, "double free detected");
    }

    #[test]
    fn heap_reuses_freed_blocks() {
        let mut mem = Mem::new();
        let mut h = Heap::new(0);
        let a = h.alloc(&mut mem, 64).expect("alloc");
        h.dealloc(a);
        let b = h.alloc(&mut mem, 64).expect("alloc");
        assert_eq!(a, b, "address reuse is what makes stale metadata dangerous");
    }

    #[test]
    fn heap_reuse_zeroes_contents() {
        let mut mem = Mem::new();
        let mut h = Heap::new(0);
        let a = h.alloc(&mut mem, 32).expect("alloc");
        mem.write_uint(a, 8, 0x1234).expect("write");
        h.dealloc(a);
        let b = h.alloc(&mut mem, 32).expect("alloc");
        assert_eq!(mem.read_uint(b, 8).expect("read"), 0);
    }

    #[test]
    fn heap_redzones_separate_blocks() {
        let mut mem = Mem::new();
        let mut h = Heap::new(16);
        let a = h.alloc(&mut mem, 32).expect("alloc");
        let b = h.alloc(&mut mem, 32).expect("alloc");
        assert!(
            b >= a + 32 + 32,
            "redzones keep blocks apart (a={a:#x}, b={b:#x})"
        );
    }

    #[test]
    fn find_block_contains() {
        let mut mem = Mem::new();
        let mut h = Heap::new(0);
        let a = h.alloc(&mut mem, 40).expect("alloc");
        assert_eq!(h.find_block(a + 39).map(|b| b.addr), Some(a));
        assert_eq!(h.find_block(a + 40), None);
    }

    #[test]
    fn peak_live_tracking() {
        let mut mem = Mem::new();
        let mut h = Heap::new(0);
        let a = h.alloc(&mut mem, 100).expect("a");
        let _b = h.alloc(&mut mem, 200).expect("b");
        h.dealloc(a);
        assert_eq!(h.peak_live, 300);
    }
}
