//! The IR interpreter ("the machine").
//!
//! Executes one [`Module`] against simulated memory with an x86-style
//! instruction-count cost model, an optional L1 cache model, and an
//! installed [`RuntimeHooks`] safety runtime.
//!
//! ## Control-flow realism
//!
//! To make the Wilander & Kamkar attack suite (paper Table 3) genuinely
//! executable, each frame spills two words *into simulated memory* above
//! its locals, like a real calling convention:
//!
//! ```text
//!   frame_base → [allocas, declaration order ...]
//!                [saved frame pointer]  (8 bytes)
//!                [return token]         (8 bytes)
//!   frame_top  →
//! ```
//!
//! On return the machine validates both words. A corrupted return token
//! that decodes to a function address transfers control there — the run
//! ends as [`Outcome::Hijacked`], the attack-succeeded state. Likewise for
//! corrupted saved frame pointers (via a fake frame) and `longjmp`
//! buffers. Uninstrumented runs therefore demonstrate real control-flow
//! hijacks; SoftBound-instrumented runs abort at the out-of-bounds store
//! instead.

use crate::exec::{global_layout_into, ExecCallee, ExecModule, Op, OpVal};
use crate::mem::{decode_fn_addr, fn_addr, Heap, Mem, FN_BASE, GLOBAL_BASE, STACK_BASE};
use crate::rt::{
    BuiltinViolation, CacheConfig, CacheSim, CostModel, ExecStats, NoRuntime, Outcome, RtCtx,
    RuntimeHooks, Trap, ViolationDisposition,
};
use sb_cir::hir::Builtin;
use sb_ir::opt::{eval_bin, eval_cmp};
use sb_ir::{Callee, FuncId, Inst, MemTy, Module, RegId, Value};

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Per-instruction costs.
    pub cost: CostModel,
    /// Optional L1 model (None = flat memory).
    pub cache: Option<CacheConfig>,
    /// Heap redzone bytes (used by the Valgrind-like baseline; 0 normally).
    pub redzone: u64,
    /// Dynamic instruction budget (runaway guard).
    pub fuel: u64,
    /// Maximum captured program output in bytes.
    pub output_limit: usize,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cost: CostModel::default(),
            cache: None,
            redzone: 0,
            fuel: 2_000_000_000,
            output_limit: 1 << 20,
            max_depth: 100_000,
        }
    }
}

/// The result of one execution.
#[derive(Debug)]
pub struct RunResult {
    /// How it ended.
    pub outcome: Outcome,
    /// Dynamic statistics (instructions, cycles, pointer memory ops…).
    pub stats: ExecStats,
    /// Captured `printf`/`puts` output.
    pub output: String,
}

impl RunResult {
    /// Convenience: the integer return value if the run finished normally.
    pub fn ret(&self) -> Option<i64> {
        match self.outcome {
            Outcome::Finished { ret } => Some(ret),
            _ => None,
        }
    }
}

const RET_TOKEN_BASE: u64 = 0x5245_5400_0000_0000;
const SETJMP_TOKEN_BASE: u64 = 0x534A_0000_0000_0000;
/// Seed of the deterministic `rand()` stream; restored by [`Machine::reset`].
const RNG_SEED: u64 = 0x2545_F491_4F6C_DD1D;

struct FramePlan {
    /// (dst register, frame offset, alloca info index into the entry block)
    allocas: Vec<(RegId, u64, usize)>,
    /// Offset of the saved-frame-pointer slot.
    fp_slot: u64,
    /// Offset of the return-token slot.
    token_slot: u64,
    /// Total frame bytes (16-aligned).
    size: u64,
}

struct Frame<'m> {
    func: usize,
    block: u32,
    idx: usize,
    regs: Vec<i64>,
    /// Caller registers receiving the return values — borrowed straight
    /// from the module's `Call` instruction, so pushing a frame never
    /// clones the destination list.
    ret_dsts: &'m [RegId],
    frame_base: u64,
    expected_token: u64,
    serial: u64,
    allocas: Vec<(u64, u64)>,
    varargs: Vec<i64>,
}

impl Frame<'_> {
    fn empty() -> Self {
        Frame {
            func: 0,
            block: 0,
            idx: 0,
            regs: Vec::new(),
            ret_dsts: &[],
            frame_base: 0,
            expected_token: 0,
            serial: 0,
            allocas: Vec::new(),
            varargs: Vec::new(),
        }
    }
}

struct JumpPoint {
    depth: usize,
    serial: u64,
    func: usize,
    block: u32,
    idx: usize,
    dst: Option<RegId>,
}

enum Flow {
    Continue,
    Finished(i64),
    Exited(i64),
    Hijacked(String),
}

/// An executing machine bound to a module, statically specialized on its
/// safety runtime `H`.
///
/// The generic parameter devirtualizes the metadata hot path: every
/// `rt_call` (bounds check, metadata load/store) and lifecycle hook is a
/// direct — typically inlined — call into the concrete runtime. Code that
/// picks the runtime at run time (the CLI/report boundary) uses
/// [`Machine::new_dyn`], which instantiates `H = Box<dyn RuntimeHooks>`
/// and pays one indirect call per hook, exactly as before the refactor.
pub struct Machine<'m, H: RuntimeHooks = Box<dyn RuntimeHooks>> {
    module: &'m Module,
    /// The pre-decoded lowering of `module`, when attached
    /// ([`Machine::attach_exec`]); enables [`Machine::run_predecoded`].
    exec: Option<&'m ExecModule>,
    /// Simulated memory (public for tests and runtimes).
    pub mem: Mem,
    /// The heap allocator.
    pub heap: Heap,
    global_addrs: Vec<u64>,
    plans: Vec<FramePlan>,
    cfg: MachineConfig,
    hooks: H,
    cache: Option<CacheSim>,
    /// Execution statistics.
    pub stats: ExecStats,
    output: Vec<u8>,
    rng: u64,
    stack_top: u64,
    frames: Vec<Frame<'m>>,
    /// Popped frames kept for reuse: their `regs`/`allocas`/`varargs`
    /// buffers make `Inst::Call` allocation-free in the steady state.
    frame_pool: Vec<Frame<'m>>,
    /// Reusable argument-marshalling buffer for `Inst::Call` (the `Rt`
    /// path uses a fixed stack buffer; calls can be arbitrarily wide, so
    /// they share one growable scratch instead).
    call_args: Vec<i64>,
    setjmps: Vec<JumpPoint>,
    ctx: RtCtx,
    /// Repair order handed down by the last check's runtime response
    /// (`RtCtx::repair`), waiting for the access that check guards: the
    /// next load/store consumes it and clamps itself to these bounds.
    /// Instrumentation places each check immediately before its access
    /// (metadata ops may intervene, but never another access), so the
    /// hand-off is unambiguous in both lanes.
    pending_clamp: Option<(u64, u64)>,
    fuel: u64,
    frame_serial: u64,
}

/// The type-erased machine configuration: runtime chosen at run time,
/// hooks dispatched through a vtable. Built by [`Machine::new_dyn`].
pub type DynMachine<'m> = Machine<'m, Box<dyn RuntimeHooks>>;

impl<'m> DynMachine<'m> {
    /// Creates a machine over type-erased hooks — the wrapper for
    /// call sites that select the safety runtime at run time (CLI,
    /// report harness). Hot paths should prefer [`Machine::new`] with a
    /// concrete runtime, which dispatches statically.
    pub fn new_dyn(module: &'m Module, cfg: MachineConfig, hooks: Box<dyn RuntimeHooks>) -> Self {
        Machine::new(module, cfg, hooks)
    }
}

impl<'m> Machine<'m, NoRuntime> {
    /// Creates an uninstrumented machine (no safety runtime).
    pub fn uninstrumented(module: &'m Module) -> Self {
        Machine::new(module, MachineConfig::default(), NoRuntime)
    }
}

impl<'m, H: RuntimeHooks> Machine<'m, H> {
    /// Creates a machine with an installed safety runtime.
    pub fn new(module: &'m Module, cfg: MachineConfig, hooks: H) -> Self {
        let cache = cfg.cache.map(CacheSim::new);
        let heap = Heap::new(cfg.redzone);
        let fuel = cfg.fuel;
        // Touched-table addresses are only recorded when a cache model
        // consumes them; otherwise every runtime-helper call (checks,
        // metadata accesses) runs without touching the scratch buffer.
        let ctx = RtCtx {
            record_touched: cache.is_some(),
            ..RtCtx::default()
        };
        let mut m = Machine {
            module,
            exec: None,
            mem: Mem::new(),
            heap,
            global_addrs: Vec::new(),
            plans: Vec::new(),
            cfg,
            hooks,
            cache,
            stats: ExecStats::default(),
            output: Vec::new(),
            rng: RNG_SEED,
            stack_top: STACK_BASE,
            frames: Vec::new(),
            frame_pool: Vec::new(),
            call_args: Vec::new(),
            setjmps: Vec::new(),
            ctx,
            pending_clamp: None,
            fuel,
            frame_serial: 0,
        };
        m.layout_globals();
        m.build_plans();
        m
    }

    /// The installed safety runtime (for reading its counters after a
    /// run, e.g. in differential tests).
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Restores the machine to its just-constructed state so the next
    /// [`run`](Machine::run) behaves exactly like a run on a fresh
    /// machine: program memory, heap, stack, statistics, output, fuel,
    /// the `rand()` stream, and the installed runtime's state
    /// ([`RuntimeHooks::reset`]) are all cleared, and globals are laid
    /// out (and their lifecycle events fired) again.
    ///
    /// What it deliberately *keeps* is everything derived from the module
    /// alone — frame plans, the recycled frame pool, the call-argument
    /// scratch — plus whatever allocations the runtime's own `reset`
    /// preserves (e.g. the paged shadow facility's directory
    /// reservation). That is the amortization a long-lived
    /// `softbound::Instance` exploits between back-to-back requests.
    pub fn reset(&mut self) {
        // `Mem::reset` (rather than a fresh `Mem`) recycles the page
        // frames of the previous run — and invalidates the last-page
        // translation cache, which would otherwise leak one stale
        // (page → frame) pair into the next run's different layout.
        self.mem.reset();
        self.heap = Heap::new(self.cfg.redzone);
        self.cache = self.cfg.cache.map(CacheSim::new);
        self.stats = ExecStats::default();
        self.output.clear();
        self.rng = RNG_SEED;
        self.stack_top = STACK_BASE;
        // Trapped runs leave their frames in place (no unwinding); drain
        // them into the pool so their buffers stay reusable.
        while let Some(f) = self.frames.pop() {
            self.frame_pool.push(f);
        }
        self.setjmps.clear();
        self.fuel = self.cfg.fuel;
        self.frame_serial = 0;
        self.global_addrs.clear();
        self.hooks.reset();
        self.ctx.reset(0);
        self.pending_clamp = None;
        self.layout_globals();
    }

    /// Mutable access to the installed safety runtime.
    pub fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    /// Address of a named global (for tests and attack drivers).
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        let id = self.module.global_id(name)?;
        Some(self.global_addrs[id.0 as usize])
    }

    fn layout_globals(&mut self) {
        // The walk is shared with `ExecModule::lower`, which folds these
        // addresses into immediates — the two must agree by construction.
        let end = global_layout_into(self.module, &mut self.global_addrs);
        self.mem.map_range(GLOBAL_BASE, end - GLOBAL_BASE + 1);
        for (i, g) in self.module.globals.iter().enumerate() {
            let base = self.global_addrs[i];
            for (off, init) in &g.init {
                match init {
                    sb_ir::GInit::Bytes(b) => {
                        self.mem
                            .write(base + off, b)
                            .expect("global segment mapped");
                    }
                    sb_ir::GInit::GlobalAddr { id, offset } => {
                        let v = self.global_addrs[id.0 as usize] + offset;
                        self.mem
                            .write_uint(base + off, 8, v)
                            .expect("global segment mapped");
                    }
                    sb_ir::GInit::FuncAddr(fid) => {
                        self.mem
                            .write_uint(base + off, 8, fn_addr(fid.0))
                            .expect("global segment mapped");
                    }
                }
            }
        }
        // Lifecycle events after everything is laid out.
        for (i, g) in self.module.globals.iter().enumerate() {
            self.ctx.reset(0);
            self.hooks
                .on_global(self.global_addrs[i], g.size, &mut self.ctx);
        }
    }

    fn build_plans(&mut self) {
        for f in &self.module.funcs {
            let mut allocas = Vec::new();
            let mut off: u64 = 0;
            if f.defined {
                for (ii, inst) in f.blocks[0].insts.iter().enumerate() {
                    if let Inst::Alloca { dst, info } = inst {
                        let a = info.align.max(1);
                        off = off.div_ceil(a) * a;
                        allocas.push((*dst, off, ii));
                        off += info.size.max(1);
                    }
                }
            }
            let fp_slot = off.div_ceil(8) * 8;
            let token_slot = fp_slot + 8;
            let size = (token_slot + 8).div_ceil(16) * 16;
            self.plans.push(FramePlan {
                allocas,
                fp_slot,
                token_slot,
                size,
            });
        }
    }

    /// Attaches the pre-decoded lowering of this machine's module,
    /// enabling [`run_predecoded`](Machine::run_predecoded). The
    /// lowering must come from [`ExecModule::lower`] on the *same*
    /// module (`softbound::Program` caches one per compilation).
    ///
    /// # Panics
    ///
    /// Panics if `exec` was lowered from a module with a different
    /// function count — a sure sign it belongs to another module.
    pub fn attach_exec(&mut self, exec: &'m ExecModule) {
        assert_eq!(
            exec.funcs.len(),
            self.module.funcs.len(),
            "ExecModule lowered from a different module"
        );
        self.exec = Some(exec);
    }

    /// True once [`attach_exec`](Machine::attach_exec) has been called.
    pub fn has_exec(&self) -> bool {
        self.exec.is_some()
    }

    /// Runs `entry` (falling back to `_sb_<entry>` for transformed
    /// modules) with the given integer arguments.
    ///
    /// Functions whose name starts with `__ctor.` run first, in module
    /// order — the C++-global-constructor convention instrumentation
    /// passes use to seed global metadata (paper §5.2).
    pub fn run(&mut self, entry: &str, args: &[i64]) -> RunResult {
        self.run_lane(entry, args, false)
    }

    /// [`run`](Machine::run), but driving the attached pre-decoded
    /// execution IR through the flat dispatch loop instead of walking
    /// the tree-shaped module. Observables — traps, output, statistics,
    /// cycles, final memory — are identical to the tree-walk lane by
    /// construction (and by `tests/machine_differential.rs`).
    ///
    /// # Panics
    ///
    /// Panics if no [`ExecModule`] is attached
    /// ([`attach_exec`](Machine::attach_exec)).
    pub fn run_predecoded(&mut self, entry: &str, args: &[i64]) -> RunResult {
        assert!(
            self.exec.is_some(),
            "run_predecoded requires attach_exec first"
        );
        self.run_lane(entry, args, true)
    }

    fn run_lane(&mut self, entry: &str, args: &[i64], predecoded: bool) -> RunResult {
        // Transformed modules rename functions with a scheme prefix
        // (`_sb_`, `_fat_`, `_mscc_`, …); fall back to any such renaming.
        let fid = self.module.func_id(entry).or_else(|| {
            self.module
                .funcs
                .iter()
                .position(|f| {
                    f.defined
                        && f.name.starts_with('_')
                        && f.name.ends_with(entry)
                        && f.name.len() > entry.len()
                        && f.name.as_bytes()[f.name.len() - entry.len() - 1] == b'_'
                })
                .map(|i| FuncId(i as u32))
        });
        let Some(fid) = fid else {
            return RunResult {
                outcome: Outcome::Trapped(Trap::UndefinedFunction(entry.to_owned())),
                stats: std::mem::take(&mut self.stats),
                output: String::new(),
            };
        };
        // `self.module` is a shared reference; copying it out lets the
        // ctor scan walk the function table while `invoke` borrows the
        // machine mutably — without collecting ids into a Vec (this is
        // the run path's only steady-state host allocation otherwise).
        let module = self.module;
        let mut outcome = None;
        for (i, func) in module.funcs.iter().enumerate() {
            if !(func.defined && func.name.starts_with("__ctor.")) {
                continue;
            }
            let ctor = FuncId(i as u32);
            let r = if predecoded {
                self.invoke_exec(ctor, &[])
            } else {
                self.invoke(ctor, &[])
            };
            match r {
                Outcome::Finished { .. } => {}
                other => {
                    outcome = Some(other);
                    break;
                }
            }
        }
        let outcome = outcome.unwrap_or_else(|| {
            if predecoded {
                self.invoke_exec(fid, args)
            } else {
                self.invoke(fid, args)
            }
        });
        self.stats.cache = self.cache.as_ref().map(|c| c.stats).unwrap_or_default();
        RunResult {
            outcome,
            stats: self.stats.clone(),
            output: String::from_utf8_lossy(&self.output).into_owned(),
        }
    }

    /// Pushes a frame for `fid` and steps it to completion.
    fn invoke(&mut self, fid: FuncId, args: &[i64]) -> Outcome {
        match self.push_frame(fid, args, &[]) {
            Err(t) => Outcome::Trapped(t),
            Ok(()) => loop {
                match self.step() {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Finished(v)) => break Outcome::Finished { ret: v },
                    Ok(Flow::Exited(c)) => break Outcome::Exited { code: c },
                    Ok(Flow::Hijacked(t)) => break Outcome::Hijacked { target: t },
                    Err(t) => break Outcome::Trapped(t),
                }
            },
        }
    }

    /// [`invoke`](Machine::invoke) through the pre-decoded dispatch loop.
    fn invoke_exec(&mut self, fid: FuncId, args: &[i64]) -> Outcome {
        let exec = self.exec.expect("exec attached");
        match self.push_frame(fid, args, &[]) {
            Err(t) => Outcome::Trapped(t),
            Ok(()) => loop {
                match self.step_exec(exec) {
                    Ok(Flow::Continue) => {}
                    Ok(Flow::Finished(v)) => break Outcome::Finished { ret: v },
                    Ok(Flow::Exited(c)) => break Outcome::Exited { code: c },
                    Ok(Flow::Hijacked(t)) => break Outcome::Hijacked { target: t },
                    Err(t) => break Outcome::Trapped(t),
                }
            },
        }
    }

    // ------------------------------------------------------------- frames

    fn push_frame(&mut self, fid: FuncId, args: &[i64], ret_dsts: &'m [RegId]) -> Result<(), Trap> {
        let module: &'m Module = self.module;
        let f = &module.funcs[fid.0 as usize];
        if !f.defined {
            return Err(Trap::UndefinedFunction(f.name.clone()));
        }
        if self.frames.len() >= self.cfg.max_depth {
            return Err(Trap::OutOfMemory);
        }
        let plan = &self.plans[fid.0 as usize];
        let (plan_size, fp_slot, token_slot) = (plan.size, plan.fp_slot, plan.token_slot);
        let n_allocas = plan.allocas.len();
        let frame_base = self.stack_top.div_ceil(16) * 16;
        self.mem.map_range(frame_base, plan_size);
        self.stack_top = frame_base + plan_size;

        self.frame_serial += 1;
        let serial = self.frame_serial;
        let expected_token = RET_TOKEN_BASE | serial;
        self.mem
            .write_uint(frame_base + fp_slot, 8, frame_base)
            .expect("frame mapped");
        self.mem
            .write_uint(frame_base + token_slot, 8, expected_token)
            .expect("frame mapped");

        // Recycle a popped frame's buffers; a fresh frame is only built
        // while the call stack is at its deepest point so far.
        let mut frame = self.frame_pool.pop().unwrap_or_else(Frame::empty);
        frame.func = fid.0 as usize;
        frame.block = 0;
        frame.idx = 0;
        frame.ret_dsts = ret_dsts;
        frame.frame_base = frame_base;
        frame.expected_token = expected_token;
        frame.serial = serial;
        frame.regs.clear();
        frame.regs.resize(f.reg_kinds.len(), 0);
        let nparams = f.params.len();
        for (i, &p) in f.params.iter().enumerate() {
            frame.regs[p.0 as usize] = args.get(i).copied().unwrap_or(0);
        }
        frame.varargs.clear();
        frame
            .varargs
            .extend_from_slice(args.get(nparams..).unwrap_or(&[]));
        let va_count = frame.varargs.len() as u64;

        // Materialize allocas now (the Alloca instructions become cheap
        // moves) and fire lifecycle events.
        frame.allocas.clear();
        for i in 0..n_allocas {
            let (dst, off, ii) = self.plans[fid.0 as usize].allocas[i];
            let addr = frame_base + off;
            frame.regs[dst.0 as usize] = addr as i64;
            let Inst::Alloca { info, .. } = &f.blocks[0].insts[ii] else {
                unreachable!("plan indexes an alloca");
            };
            frame.allocas.push((addr, info.size));
            self.ctx.reset(va_count);
            self.hooks.on_alloca(addr, info, &mut self.ctx);
            self.charge_ctx();
        }

        self.stats.calls += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.frames.len() as u64 + 1);
        self.stats.cycles += self.cfg.cost.call + self.cfg.cost.call_arg * args.len() as u64;
        self.frames.push(frame);
        Ok(())
    }

    /// Validates the spilled return token and saved frame pointer, then
    /// pops the frame. Returns a hijack target if the attacker won.
    fn pop_frame(&mut self, vals: &[i64]) -> Result<Option<Flow>, Trap> {
        let frame = self.frames.last().expect("frame exists");
        let fid = frame.func;
        let plan = &self.plans[fid];
        let token = self.mem.read_uint(frame.frame_base + plan.token_slot, 8)?;
        if token != frame.expected_token {
            if let Some(t) = decode_fn_addr(token) {
                if (t as usize) < self.module.funcs.len() {
                    let name = self.module.funcs[t as usize].name.clone();
                    return Ok(Some(Flow::Hijacked(name)));
                }
            }
            return Err(Trap::CorruptedReturn);
        }
        let fp = self.mem.read_uint(frame.frame_base + plan.fp_slot, 8)?;
        if fp != frame.frame_base {
            // Fake-frame attack: the attacker repoints the saved FP at a
            // crafted frame whose "return token" slot redirects control.
            // The token-slot address must be computed with a *checked*
            // add: a saved FP near `u64::MAX` would wrap to low memory,
            // and whatever happens to be mapped there could misclassify
            // the corruption as a hijack of an unrelated function.
            let Some(fake_token_addr) = fp.checked_add(8) else {
                return Err(Trap::CorruptedFrame);
            };
            if let Ok(fake_ret) = self.mem.read_uint(fake_token_addr, 8) {
                if let Some(t) = decode_fn_addr(fake_ret) {
                    if (t as usize) < self.module.funcs.len() {
                        let name = self.module.funcs[t as usize].name.clone();
                        return Ok(Some(Flow::Hijacked(name)));
                    }
                }
            }
            return Err(Trap::CorruptedFrame);
        }

        let frame = self.frames.pop().expect("frame exists");
        self.ctx.reset(0);
        self.hooks.on_frame_exit(&frame.allocas, &mut self.ctx);
        self.charge_ctx();
        self.stack_top = frame.frame_base;
        // setjmp targets in dead frames are detected via their serial at
        // longjmp time (entries stay so token indices remain stable).
        self.stats.cycles += self.cfg.cost.ret;

        if self.frames.is_empty() {
            self.frame_pool.push(frame);
            return Ok(Some(Flow::Finished(vals.first().copied().unwrap_or(0))));
        }
        let caller = self.frames.last_mut().expect("caller exists");
        for (i, dst) in frame.ret_dsts.iter().enumerate() {
            caller.regs[dst.0 as usize] = vals.get(i).copied().unwrap_or(0);
        }
        self.frame_pool.push(frame);
        Ok(None)
    }

    // ------------------------------------------------------------ stepping

    fn charge_ctx(&mut self) {
        self.stats.cycles += self.ctx.cost;
        self.stats.rt_cycles += self.ctx.cost;
        if let Some(c) = self.cache.as_mut() {
            // Drain without holding a borrow on self.ctx across the loop.
            for i in 0..self.ctx.touched.len() {
                let pen = c.access(self.ctx.touched[i]);
                self.stats.cycles += pen;
                self.stats.rt_cycles += pen;
            }
        }
        self.ctx.touched.clear();
    }

    fn touch(&mut self, addr: u64) {
        if let Some(c) = self.cache.as_mut() {
            self.stats.cycles += c.access(addr);
        }
    }

    fn val(&self, v: &Value) -> i64 {
        match v {
            Value::Reg(r) => self.frames.last().expect("frame").regs[r.0 as usize],
            Value::Const(c) => *c,
            Value::GlobalAddr { id, offset } => (self.global_addrs[id.0 as usize] + offset) as i64,
            Value::FuncAddr(f) => fn_addr(f.0) as i64,
        }
    }

    fn set_reg(&mut self, r: RegId, v: i64) {
        self.frames.last_mut().expect("frame").regs[r.0 as usize] = v;
    }

    #[inline]
    fn set_slot(&mut self, slot: u32, v: i64) {
        self.frames.last_mut().expect("frame").regs[slot as usize] = v;
    }

    fn step(&mut self) -> Result<Flow, Trap> {
        if self.fuel == 0 {
            return Err(Trap::FuelExhausted);
        }
        self.fuel -= 1;
        self.stats.insts += 1;

        let module: &'m Module = self.module;
        let frame = self.frames.last().expect("frame");
        let (fidx, bidx, iidx) = (frame.func, frame.block, frame.idx);
        let inst = &module.funcs[fidx].blocks[bidx as usize].insts[iidx];
        // Default: advance to the next instruction.
        self.frames.last_mut().expect("frame").idx += 1;

        let cost = &self.cfg.cost;
        match inst {
            Inst::Bin {
                dst,
                op,
                k,
                lhs,
                rhs,
            } => {
                let a = self.val(lhs);
                let b = self.val(rhs);
                let v = eval_bin(*op, *k, a, b).ok_or(Trap::DivByZero)?;
                self.stats.cycles += match op {
                    sb_ir::ArithOp::Mul => cost.mul,
                    sb_ir::ArithOp::Div | sb_ir::ArithOp::Rem => cost.div,
                    _ => cost.alu,
                };
                self.set_reg(*dst, v);
            }
            Inst::Cmp {
                dst,
                op,
                k,
                lhs,
                rhs,
            } => {
                let a = self.val(lhs);
                let b = self.val(rhs);
                self.stats.cycles += cost.cmp;
                self.set_reg(*dst, eval_cmp(*op, *k, a, b));
            }
            Inst::Cast { dst, k, src } => {
                let v = k.wrap(self.val(src));
                self.stats.cycles += cost.cast;
                self.set_reg(*dst, v);
            }
            Inst::Mov { dst, src } => {
                let v = self.val(src);
                self.stats.cycles += cost.mov;
                self.set_reg(*dst, v);
            }
            Inst::Alloca { dst, .. } => {
                // Address precomputed at frame entry; ensure it is set (it
                // is — push_frame wrote it), cost folded into call.
                let cur = self.frames.last().expect("frame").regs[dst.0 as usize];
                debug_assert_ne!(cur, 0, "alloca address must be precomputed");
            }
            Inst::Load { dst, mem, addr } => {
                let a = self.val(addr) as u64;
                let size = mem.size();
                let raw = if self.pending_clamp.is_some() {
                    let (lo, hi) = self.pending_clamp.take().expect("just checked");
                    self.mem.read_uint_clamped(a, size, lo, hi)?
                } else {
                    self.mem.read_uint(a, size)?
                };
                let v = extend(raw, *mem);
                self.stats.loads += 1;
                if mem.is_ptr() {
                    self.stats.ptr_mem_ops += 1;
                }
                self.stats.cycles += cost.load;
                self.touch(a);
                self.set_reg(*dst, v);
            }
            Inst::Store { mem, addr, value } => {
                let a = self.val(addr) as u64;
                let v = self.val(value);
                if self.pending_clamp.is_some() {
                    let (lo, hi) = self.pending_clamp.take().expect("just checked");
                    self.mem
                        .write_uint_clamped(a, mem.size(), v as u64, lo, hi)?;
                } else {
                    self.mem.write_uint(a, mem.size(), v as u64)?;
                }
                self.stats.stores += 1;
                if mem.is_ptr() {
                    self.stats.ptr_mem_ops += 1;
                }
                self.stats.cycles += cost.store;
                self.touch(a);
            }
            Inst::Gep {
                dst,
                base,
                index,
                scale,
                offset,
                ..
            } => {
                let b = self.val(base);
                let i = self.val(index);
                let v = b
                    .wrapping_add(i.wrapping_mul(*scale as i64))
                    .wrapping_add(*offset);
                self.stats.cycles += cost.gep;
                self.set_reg(*dst, v);
            }
            Inst::Jmp { to } => {
                self.stats.cycles += cost.jmp;
                let f = self.frames.last_mut().expect("frame");
                f.block = to.0;
                f.idx = 0;
            }
            Inst::Br {
                cond,
                then_to,
                else_to,
            } => {
                let c = self.val(cond);
                self.stats.cycles += cost.branch;
                let to = if c != 0 { *then_to } else { *else_to };
                let f = self.frames.last_mut().expect("frame");
                f.block = to.0;
                f.idx = 0;
            }
            Inst::Ret { vals } => {
                // At most 3 return values today (value + base + bound in
                // wrapper mode); a fixed buffer keeps returns
                // allocation-free, like the Rt argument buffer. The IR
                // puts no upper bound on ret arity, so wider returns
                // spill through the call-arg scratch (idle outside
                // `Inst::Call`) rather than corrupting the fast path.
                let flow = if vals.len() <= 8 {
                    let mut vbuf = [0i64; 8];
                    for (i, v) in vals.iter().enumerate() {
                        vbuf[i] = self.val(v);
                    }
                    self.pop_frame(&vbuf[..vals.len()])?
                } else {
                    let mut vs = std::mem::take(&mut self.call_args);
                    vs.clear();
                    vs.extend(vals.iter().map(|v| self.val(v)));
                    let popped = self.pop_frame(&vs);
                    self.call_args = vs;
                    popped?
                };
                if let Some(flow) = flow {
                    return Ok(flow);
                }
            }
            Inst::Unreachable => return Err(Trap::Unreachable),
            Inst::Rt { dsts, rt, args } => {
                // Runtime helpers take at most 4 operands (SbCheck); a
                // fixed buffer keeps the check path allocation-free.
                debug_assert!(args.len() <= 8, "rt call with {} args", args.len());
                let mut abuf = [0i64; 8];
                for (i, v) in args.iter().enumerate() {
                    abuf[i] = self.val(v);
                }
                let avs = &abuf[..args.len()];
                let va = self.frames.last().expect("frame").varargs.len() as u64;
                self.ctx.reset(va);
                self.ctx.pc = self.stats.insts;
                self.stats.rt_calls += 1;
                // Classification shared with the pre-decoded lane so the
                // two can never disagree on what counts as a check.
                if rt.is_check() {
                    self.stats.checks += 1;
                } else if rt.is_meta_load() {
                    self.stats.meta_loads += 1;
                } else if rt.is_meta_store() {
                    self.stats.meta_stores += 1;
                }
                let res = self.hooks.rt_call(*rt, avs, &mut self.mem, &mut self.ctx);
                self.charge_ctx();
                // A repair-and-continue runtime absorbed a violation:
                // carry its clamp order to the access this check guards
                // (conditional, so intervening metadata ops pass through).
                if let Some(r) = self.ctx.repair.take() {
                    self.pending_clamp = Some(r);
                }
                let vals = res?;
                for (i, d) in dsts.iter().enumerate() {
                    self.set_reg(*d, vals[i]);
                }
            }
            Inst::Call {
                dsts,
                callee,
                args,
                ptr_hint,
                wrapped,
            } => {
                // Marshal arguments through the machine's reusable
                // scratch buffer (taken out of `self` for the duration so
                // `&mut self` methods remain callable): no per-call heap
                // allocation once the buffer has grown to the widest call.
                let mut avs = std::mem::take(&mut self.call_args);
                avs.clear();
                avs.extend(args.iter().map(|v| self.val(v)));
                let result = match callee {
                    Callee::Direct(fid) => {
                        self.push_frame(*fid, &avs, dsts).map(|()| Flow::Continue)
                    }
                    Callee::Indirect(v) => {
                        let target = self.val(v) as u64;
                        match decode_fn_addr(target) {
                            Some(fi) if (fi as usize) < module.funcs.len() => self
                                .push_frame(FuncId(fi), &avs, dsts)
                                .map(|()| Flow::Continue),
                            _ => Err(Trap::BadIndirectCall { addr: target }),
                        }
                    }
                    Callee::Builtin(b) => self.builtin(*b, dsts, &avs, *ptr_hint, *wrapped),
                };
                self.call_args = avs;
                let flow = result?;
                if !matches!(flow, Flow::Continue) {
                    return Ok(flow);
                }
            }
        }
        Ok(Flow::Continue)
    }

    /// One step of the pre-decoded lane: observable semantics identical
    /// to [`step`](Machine::step), dispatched over flat [`Op`]s with a
    /// plain program counter (`frame.idx`; `frame.block` stays 0).
    ///
    /// The fused check+access superinstructions account for *both*
    /// halves — two fuel ticks, two instruction counts, the check's
    /// runtime cost plus the access's cycle — in the oracle's exact
    /// order, including the possibility of fuel exhausting between the
    /// check and the access. Only the dispatch is paid once.
    #[allow(clippy::too_many_lines)]
    fn step_exec(&mut self, exec: &'m ExecModule) -> Result<Flow, Trap> {
        if self.fuel == 0 {
            return Err(Trap::FuelExhausted);
        }
        self.fuel -= 1;
        self.stats.insts += 1;

        let frame = self.frames.last_mut().expect("frame");
        let (fidx, pc) = (frame.func, frame.idx);
        frame.idx += 1;
        // `exec` is a borrow of the Program's cached module, disjoint
        // from `self`: matching the op in place keeps the fixed-size
        // `Op` out of the per-step copy path. The single hoisted `frame`
        // borrow serves every operand read and slot write directly —
        // `self.stats`/`self.cfg`/`self.mem`/`self.hooks` are disjoint
        // fields, so they stay usable while `frame` is live; only the
        // `&mut self` helpers (`touch`, `charge_ctx`, frame push/pop)
        // require `frame`'s last use to precede them.
        let func = &exec.funcs[fidx];
        macro_rules! rd {
            ($v:expr) => {
                match $v {
                    OpVal::Slot(s) => frame.regs[s as usize],
                    OpVal::Imm(i) => i,
                }
            };
        }
        match func.ops[pc] {
            Op::Bin {
                dst,
                op,
                k,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                let v = eval_bin(op, k, a, b).ok_or(Trap::DivByZero)?;
                frame.regs[dst as usize] = v;
                self.stats.cycles += match op {
                    sb_ir::ArithOp::Mul => self.cfg.cost.mul,
                    sb_ir::ArithOp::Div | sb_ir::ArithOp::Rem => self.cfg.cost.div,
                    _ => self.cfg.cost.alu,
                };
            }
            Op::Cmp {
                dst,
                op,
                k,
                lhs,
                rhs,
            } => {
                let a = rd!(lhs);
                let b = rd!(rhs);
                frame.regs[dst as usize] = eval_cmp(op, k, a, b);
                self.stats.cycles += self.cfg.cost.cmp;
            }
            Op::Cast { dst, k, src } => {
                frame.regs[dst as usize] = k.wrap(rd!(src));
                self.stats.cycles += self.cfg.cost.cast;
            }
            Op::Mov { dst, src } => {
                frame.regs[dst as usize] = rd!(src);
                self.stats.cycles += self.cfg.cost.mov;
            }
            Op::Alloca { dst } => {
                let cur = frame.regs[dst as usize];
                debug_assert_ne!(cur, 0, "alloca address must be precomputed");
                let _ = cur;
            }
            Op::Load { dst, mem, addr } => {
                let a = rd!(addr) as u64;
                let raw = if self.pending_clamp.is_some() {
                    let (lo, hi) = self.pending_clamp.take().expect("just checked");
                    self.mem.read_uint_clamped(a, mem.size(), lo, hi)?
                } else {
                    self.mem.read_uint(a, mem.size())?
                };
                frame.regs[dst as usize] = extend(raw, mem);
                self.stats.loads += 1;
                if mem.is_ptr() {
                    self.stats.ptr_mem_ops += 1;
                }
                self.stats.cycles += self.cfg.cost.load;
                self.touch(a);
            }
            Op::Store { mem, addr, value } => {
                let a = rd!(addr) as u64;
                let v = rd!(value);
                if self.pending_clamp.is_some() {
                    let (lo, hi) = self.pending_clamp.take().expect("just checked");
                    self.mem
                        .write_uint_clamped(a, mem.size(), v as u64, lo, hi)?;
                } else {
                    self.mem.write_uint(a, mem.size(), v as u64)?;
                }
                self.stats.stores += 1;
                if mem.is_ptr() {
                    self.stats.ptr_mem_ops += 1;
                }
                self.stats.cycles += self.cfg.cost.store;
                self.touch(a);
            }
            Op::CheckLoad {
                rt,
                dst,
                mem,
                addr,
                base,
                bound,
            } => {
                // First half: the check, exactly as a standalone Rt op
                // (empty dsts — nothing to write back).
                let p = rd!(addr);
                let avs = [p, rd!(base), rd!(bound), mem.size() as i64];
                let va = frame.varargs.len() as u64;
                self.ctx.reset(va);
                self.ctx.pc = self.stats.insts;
                self.stats.rt_calls += 1;
                self.stats.checks += 1;
                let res = self.hooks.rt_call(rt, &avs, &mut self.mem, &mut self.ctx);
                self.charge_ctx();
                // The fused pair consumes a repair order directly: the
                // guarded access is the very next half of this op.
                let repair = self.ctx.repair.take();
                res?;
                // Second half: the guarded load, with its own fuel and
                // instruction tick.
                if self.fuel == 0 {
                    return Err(Trap::FuelExhausted);
                }
                self.fuel -= 1;
                self.stats.insts += 1;
                let a = p as u64;
                let raw = if let Some((lo, hi)) = repair {
                    self.mem.read_uint_clamped(a, mem.size(), lo, hi)?
                } else {
                    self.mem.read_uint(a, mem.size())?
                };
                let v = extend(raw, mem);
                self.stats.loads += 1;
                if mem.is_ptr() {
                    self.stats.ptr_mem_ops += 1;
                }
                self.stats.cycles += self.cfg.cost.load;
                self.touch(a);
                self.set_slot(dst, v);
            }
            Op::CheckStore {
                rt,
                mem,
                addr,
                value,
                base,
                bound,
            } => {
                let p = rd!(addr);
                let v = rd!(value);
                let avs = [p, rd!(base), rd!(bound), mem.size() as i64];
                let va = frame.varargs.len() as u64;
                self.ctx.reset(va);
                self.ctx.pc = self.stats.insts;
                self.stats.rt_calls += 1;
                self.stats.checks += 1;
                let res = self.hooks.rt_call(rt, &avs, &mut self.mem, &mut self.ctx);
                self.charge_ctx();
                let repair = self.ctx.repair.take();
                res?;
                if self.fuel == 0 {
                    return Err(Trap::FuelExhausted);
                }
                self.fuel -= 1;
                self.stats.insts += 1;
                let a = p as u64;
                if let Some((lo, hi)) = repair {
                    self.mem
                        .write_uint_clamped(a, mem.size(), v as u64, lo, hi)?;
                } else {
                    self.mem.write_uint(a, mem.size(), v as u64)?;
                }
                self.stats.stores += 1;
                if mem.is_ptr() {
                    self.stats.ptr_mem_ops += 1;
                }
                self.stats.cycles += self.cfg.cost.store;
                self.touch(a);
            }
            Op::Gep {
                dst,
                base,
                index,
                scale,
                offset,
            } => {
                let b = rd!(base);
                let i = rd!(index);
                frame.regs[dst as usize] = b
                    .wrapping_add(i.wrapping_mul(scale as i64))
                    .wrapping_add(offset);
                self.stats.cycles += self.cfg.cost.gep;
            }
            Op::Jump { target } => {
                frame.idx = target as usize;
                self.stats.cycles += self.cfg.cost.jmp;
            }
            Op::Branch {
                cond,
                then_t,
                else_t,
            } => {
                let c = rd!(cond);
                frame.idx = if c != 0 { then_t } else { else_t } as usize;
                self.stats.cycles += self.cfg.cost.branch;
            }
            Op::Ret { vals } => {
                let vs = &func.vals[vals.range()];
                let flow = if vs.len() <= 8 {
                    let mut vbuf = [0i64; 8];
                    for (i, v) in vs.iter().enumerate() {
                        vbuf[i] = rd!(*v);
                    }
                    self.pop_frame(&vbuf[..vs.len()])?
                } else {
                    let mut out = std::mem::take(&mut self.call_args);
                    out.clear();
                    for v in vs {
                        out.push(rd!(*v));
                    }
                    let popped = self.pop_frame(&out);
                    self.call_args = out;
                    popped?
                };
                if let Some(flow) = flow {
                    return Ok(flow);
                }
            }
            Op::Unreachable => return Err(Trap::Unreachable),
            Op::Rt { rt, args, dsts } => {
                let avs_src = &func.vals[args.range()];
                debug_assert!(avs_src.len() <= 8, "rt call with {} args", avs_src.len());
                let mut abuf = [0i64; 8];
                for (i, v) in avs_src.iter().enumerate() {
                    abuf[i] = rd!(*v);
                }
                let avs = &abuf[..avs_src.len()];
                let va = frame.varargs.len() as u64;
                self.ctx.reset(va);
                self.ctx.pc = self.stats.insts;
                self.stats.rt_calls += 1;
                if rt.is_check() {
                    self.stats.checks += 1;
                } else if rt.is_meta_load() {
                    self.stats.meta_loads += 1;
                } else if rt.is_meta_store() {
                    self.stats.meta_stores += 1;
                }
                let res = self.hooks.rt_call(rt, avs, &mut self.mem, &mut self.ctx);
                self.charge_ctx();
                // Un-fused checks (e.g. before pointer-typed loads, where
                // a metadata load sits between check and access) hand
                // their repair order to the next load/store.
                if let Some(r) = self.ctx.repair.take() {
                    self.pending_clamp = Some(r);
                }
                let vals = res?;
                for (i, d) in func.regs[dsts.range()].iter().enumerate() {
                    self.set_reg(*d, vals[i]);
                }
            }
            Op::Call {
                callee,
                args,
                dsts,
                ptr_hint,
                wrapped,
            } => {
                let ret_dsts: &'m [RegId] = &func.regs[dsts.range()];
                let mut avs = std::mem::take(&mut self.call_args);
                avs.clear();
                for v in &func.vals[args.range()] {
                    avs.push(rd!(*v));
                }
                let result = match callee {
                    ExecCallee::Direct(fi) => self
                        .push_frame(FuncId(fi), &avs, ret_dsts)
                        .map(|()| Flow::Continue),
                    ExecCallee::Indirect(v) => {
                        let target = rd!(v) as u64;
                        match decode_fn_addr(target) {
                            Some(fi) if (fi as usize) < self.module.funcs.len() => self
                                .push_frame(FuncId(fi), &avs, ret_dsts)
                                .map(|()| Flow::Continue),
                            _ => Err(Trap::BadIndirectCall { addr: target }),
                        }
                    }
                    ExecCallee::Builtin(b) => self.builtin(b, ret_dsts, &avs, ptr_hint, wrapped),
                };
                self.call_args = avs;
                let flow = result?;
                if !matches!(flow, Flow::Continue) {
                    return Ok(flow);
                }
            }
        }
        Ok(Flow::Continue)
    }

    // ------------------------------------------------------------ builtins

    #[allow(clippy::too_many_lines)]
    fn builtin(
        &mut self,
        b: Builtin,
        dsts: &[RegId],
        args: &[i64],
        ptr_hint: bool,
        wrapped: bool,
    ) -> Result<Flow, Trap> {
        let cost = self.cfg.cost;
        let set = |m: &mut Self, i: usize, v: i64| {
            if let Some(&d) = dsts.get(i) {
                m.set_reg(d, v);
            }
        };
        match b {
            Builtin::Malloc | Builtin::Calloc => {
                let size = if b == Builtin::Calloc {
                    (args[0].max(0) as u64).saturating_mul(args[1].max(0) as u64)
                } else {
                    args[0].max(0) as u64
                };
                self.stats.mallocs += 1;
                self.stats.cycles += 30 + size / 64;
                match self.heap.alloc(&mut self.mem, size) {
                    Some(p) => {
                        self.ctx.reset(0);
                        self.hooks.on_malloc(p, size, &mut self.ctx);
                        self.charge_ctx();
                        set(self, 0, p as i64);
                        if wrapped {
                            set(self, 1, p as i64);
                            set(self, 2, (p + size) as i64);
                        }
                    }
                    None => {
                        set(self, 0, 0);
                        if wrapped {
                            set(self, 1, 0);
                            set(self, 2, 0);
                        }
                    }
                }
            }
            Builtin::Free => {
                let p = args[0] as u64;
                self.stats.frees += 1;
                self.stats.cycles += 15;
                if p != 0 {
                    let size = self.heap.dealloc(p).ok_or(Trap::BadFree { addr: p })?;
                    self.ctx.reset(0);
                    self.hooks.on_free(p, size, ptr_hint, &mut self.ctx);
                    self.charge_ctx();
                }
            }
            Builtin::Memcpy => {
                let (d, s, n) = (args[0] as u64, args[1] as u64, args[2].max(0) as u64);
                let mut eff = n;
                if wrapped {
                    // One check per buffer, at the start (§5.2). A
                    // clamping policy truncates the copy to what both
                    // buffers can legally provide/receive.
                    let es = self.wrapper_check(s, n, args[3 + 2], args[3 + 3], false)?; // src bounds
                    let ed = self.wrapper_check(d, n, args[3], args[3 + 1], true)?; // dst bounds
                    eff = es.min(ed);
                    self.stats.checks += 2;
                    self.stats.cycles += 6;
                }
                self.hook_range(s, eff, false)?;
                self.hook_range(d, eff, true)?;
                self.copy_bytes(d, s, eff)?;
                self.stats.cycles += 4 + n / 8;
                set(self, 0, d as i64);
                if wrapped {
                    set(self, 1, args[3]);
                    set(self, 2, args[4]);
                }
            }
            Builtin::Memset => {
                let (d, c, n) = (args[0] as u64, args[1] as u8, args[2].max(0) as u64);
                let mut eff = n;
                if wrapped {
                    eff = self.wrapper_check(d, n, args[3], args[4], true)?;
                    self.stats.checks += 1;
                    self.stats.cycles += 3;
                }
                self.hook_range(d, eff, true)?;
                let chunk = vec![c; 256];
                let mut off = 0;
                while off < eff {
                    let len = (eff - off).min(256);
                    self.mem.write(d + off, &chunk[..len as usize])?;
                    off += len;
                }
                self.stats.cycles += 4 + n / 8;
                set(self, 0, d as i64);
                if wrapped {
                    set(self, 1, args[3]);
                    set(self, 2, args[4]);
                }
            }
            Builtin::Strcpy | Builtin::Strcat => {
                let (d, s) = (args[0] as u64, args[1] as u64);
                let sv = self.mem.read_cstr(s, 1 << 20)?;
                let dlen = if b == Builtin::Strcat {
                    self.mem.read_cstr(d, 1 << 20)?.len() as u64
                } else {
                    0
                };
                let n = sv.len() as u64 + 1;
                let (mut eff_s, mut eff_d) = (n, n);
                if wrapped {
                    eff_s = self.wrapper_check(s, n, args[4], args[5], false)?;
                    eff_d = self.wrapper_check(d + dlen, n, args[2], args[3], true)?;
                    self.stats.checks += 2;
                    self.stats.cycles += 6;
                }
                // A clamped source read zero-fills past its bound, so the
                // effective payload ends there; a clamped destination
                // truncates the write (terminator included only if it
                // still fits).
                let payload = &sv[..sv.len().min(eff_s as usize)];
                let w = (payload.len() as u64 + 1).min(eff_d);
                self.hook_range(s, eff_s.min(n), false)?;
                self.hook_range(d + dlen, w, true)?;
                self.mem
                    .write(d + dlen, &payload[..payload.len().min(w as usize)])?;
                if w > payload.len() as u64 {
                    self.mem.write_uint(d + dlen + payload.len() as u64, 1, 0)?;
                }
                self.stats.cycles += 4 + n;
                set(self, 0, d as i64);
                if wrapped {
                    set(self, 1, args[2]);
                    set(self, 2, args[3]);
                }
            }
            Builtin::Strncpy => {
                let (d, s, n) = (args[0] as u64, args[1] as u64, args[2].max(0) as u64);
                let sv = self.mem.read_cstr(s, n)?;
                let src_len = (sv.len() as u64 + 1).min(n);
                let (mut eff_d, mut eff_s) = (n, src_len);
                if wrapped {
                    eff_d = self.wrapper_check(d, n, args[3], args[4], true)?;
                    eff_s = self.wrapper_check(s, src_len, args[5], args[6], false)?;
                    self.stats.checks += 2;
                    self.stats.cycles += 6;
                }
                self.hook_range(s, eff_s.min(src_len), false)?;
                self.hook_range(d, eff_d.min(n), true)?;
                // Clamped source: payload ends at the boundary (zero-fill
                // behaves like an early terminator). Clamped destination:
                // the n-byte write is truncated to the in-bounds prefix.
                let mut buf = sv[..sv.len().min(eff_s as usize)].to_vec();
                buf.resize(n as usize, 0);
                self.mem.write(d, &buf[..(n.min(eff_d)) as usize])?;
                self.stats.cycles += 4 + n;
                set(self, 0, d as i64);
                if wrapped {
                    set(self, 1, args[3]);
                    set(self, 2, args[4]);
                }
            }
            Builtin::Strlen => {
                let s = args[0] as u64;
                let sv = self.mem.read_cstr(s, 1 << 20)?;
                let n = sv.len() as u64 + 1;
                let mut eff = n;
                if wrapped {
                    eff = self.wrapper_check(s, n, args[1], args[2], false)?;
                    self.stats.checks += 1;
                    self.stats.cycles += 3;
                }
                self.hook_range(s, eff.min(n), false)?;
                self.stats.cycles += 2 + sv.len() as u64;
                // A clamped scan stops at the boundary: the zero-fill
                // past the object reads as a terminator.
                set(self, 0, (sv.len() as u64).min(eff) as i64);
            }
            Builtin::Strcmp | Builtin::Strncmp => {
                let a = self.mem.read_cstr(args[0] as u64, 1 << 20)?;
                let c = self.mem.read_cstr(args[1] as u64, 1 << 20)?;
                let (a, c, alen, clen) = if b == Builtin::Strncmp {
                    let n = args[2].max(0) as usize;
                    // A bounded compare touches at most n bytes of each
                    // string: the terminator is only read when the string
                    // ends before the limit.
                    let alen = (a.len() as u64 + 1).min(n as u64);
                    let clen = (c.len() as u64 + 1).min(n as u64);
                    let (a, c) = (a[..a.len().min(n)].to_vec(), c[..c.len().min(n)].to_vec());
                    (a, c, alen, clen)
                } else {
                    let (alen, clen) = (a.len() as u64 + 1, c.len() as u64 + 1);
                    (a, c, alen, clen)
                };
                let (mut eff_a, mut eff_c) = (alen, clen);
                if wrapped {
                    let boff = if b == Builtin::Strncmp { 3 } else { 2 };
                    eff_a = self.wrapper_check(
                        args[0] as u64,
                        alen,
                        args[boff],
                        args[boff + 1],
                        false,
                    )?;
                    eff_c = self.wrapper_check(
                        args[1] as u64,
                        clen,
                        args[boff + 2],
                        args[boff + 3],
                        false,
                    )?;
                    self.stats.checks += 2;
                    self.stats.cycles += 6;
                }
                // Clamped reads end at the boundary (zero-fill acts as a
                // terminator), so a clamped compare sees the truncation.
                let a = &a[..a.len().min(eff_a as usize)];
                let c = &c[..c.len().min(eff_c as usize)];
                self.hook_range(args[0] as u64, a.len() as u64 + 1, false)?;
                self.hook_range(args[1] as u64, c.len() as u64 + 1, false)?;
                self.stats.cycles += 2 + a.len().min(c.len()) as u64;
                set(
                    self,
                    0,
                    match a.cmp(c) {
                        std::cmp::Ordering::Less => -1,
                        std::cmp::Ordering::Equal => 0,
                        std::cmp::Ordering::Greater => 1,
                    },
                );
            }
            Builtin::Printf => {
                let n = self.printf(args, wrapped)?;
                set(self, 0, n);
            }
            Builtin::Puts => {
                let s = self.mem.read_cstr(args[0] as u64, 1 << 20)?;
                let n = s.len() as u64 + 1;
                let mut eff = n;
                if wrapped {
                    eff = self.wrapper_check(args[0] as u64, n, args[1], args[2], false)?;
                    self.stats.checks += 1;
                }
                self.hook_range(args[0] as u64, eff.min(n), false)?;
                self.stats.cycles += 2 + s.len() as u64;
                self.emit_out(&s[..s.len().min(eff as usize)]);
                self.emit_out(b"\n");
                set(self, 0, 0);
            }
            Builtin::Putchar => {
                self.emit_out(&[args[0] as u8]);
                self.stats.cycles += 2;
                set(self, 0, args[0]);
            }
            Builtin::Abort => return Err(Trap::Abort),
            Builtin::Exit => return Ok(Flow::Exited(*args.first().unwrap_or(&0))),
            Builtin::Assert => {
                if args[0] == 0 {
                    return Err(Trap::AssertFail);
                }
                self.stats.cycles += 1;
            }
            Builtin::Setjmp => {
                let buf = args[0] as u64;
                let mut eff = 8u64;
                if wrapped {
                    eff = self.wrapper_check(buf, 8, args[1], args[2], true)?;
                    self.stats.checks += 1;
                }
                let frame = self.frames.last().expect("frame");
                let jp = JumpPoint {
                    depth: self.frames.len() - 1,
                    serial: frame.serial,
                    func: frame.func,
                    block: frame.block,
                    idx: frame.idx, // already advanced past the call
                    dst: dsts.first().copied(),
                };
                let token = SETJMP_TOKEN_BASE | self.setjmps.len() as u64;
                self.setjmps.push(jp);
                // A clamped jmp_buf write stores only the in-bounds prefix
                // of the token; a later longjmp through it reports a
                // corrupted buffer instead of jumping wild.
                self.mem
                    .write(buf, &token.to_le_bytes()[..eff.min(8) as usize])?;
                self.stats.cycles += 6;
                set(self, 0, 0);
            }
            Builtin::Longjmp => {
                let buf = args[0] as u64;
                let v = *args.get(1).unwrap_or(&1);
                let token = self.mem.read_uint(buf, 8)?;
                self.stats.cycles += 8;
                if token & 0xFFFF_0000_0000_0000 == SETJMP_TOKEN_BASE {
                    let idx = (token & 0xFFFF_FFFF) as usize;
                    if idx >= self.setjmps.len() {
                        return Err(Trap::CorruptedJmpBuf);
                    }
                    let jp = &self.setjmps[idx];
                    if jp.depth >= self.frames.len() || self.frames[jp.depth].serial != jp.serial {
                        return Err(Trap::DeadJmpBuf);
                    }
                    // Unwind to the setjmp frame.
                    let (depth, func, block, idx_r, dst) =
                        (jp.depth, jp.func, jp.block, jp.idx, jp.dst);
                    while self.frames.len() > depth + 1 {
                        let dead = self.frames.pop().expect("frame");
                        self.ctx.reset(0);
                        self.hooks.on_frame_exit(&dead.allocas, &mut self.ctx);
                        self.charge_ctx();
                        self.stack_top = dead.frame_base;
                        self.frame_pool.push(dead);
                    }
                    let f = self.frames.last_mut().expect("frame");
                    debug_assert_eq!(f.func, func);
                    f.block = block;
                    f.idx = idx_r;
                    if let Some(d) = dst {
                        f.regs[d.0 as usize] = if v == 0 { 1 } else { v };
                    }
                } else if let Some(t) = decode_fn_addr(token) {
                    // Corrupted jmp_buf pointing at attacker code.
                    if (t as usize) < self.module.funcs.len() {
                        return Ok(Flow::Hijacked(self.module.funcs[t as usize].name.clone()));
                    }
                    return Err(Trap::CorruptedJmpBuf);
                } else {
                    return Err(Trap::CorruptedJmpBuf);
                }
            }
            Builtin::Rand => {
                self.rng = self
                    .rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.stats.cycles += 4;
                set(self, 0, ((self.rng >> 33) & 0x7fff_ffff) as i64);
            }
            Builtin::Srand => {
                self.rng = (args[0] as u64) ^ 0x9E37_79B9_7F4A_7C15;
                self.stats.cycles += 1;
            }
            Builtin::Setbound => {
                // Identity at runtime; the SoftBound pass gives the result
                // the explicit bounds [p, p+size) (§5.2).
                set(self, 0, args[0]);
                if wrapped {
                    set(self, 1, args[0]);
                    set(self, 2, args[0].wrapping_add(args[1]));
                }
                self.stats.cycles += 1;
            }
            Builtin::VaCount => {
                let n = self.frames.last().expect("frame").varargs.len();
                set(self, 0, n as i64);
                self.stats.cycles += 1;
            }
            Builtin::VaArgLong | Builtin::VaArgPtr => {
                let i = args[0].max(0) as usize;
                let frame = self.frames.last().expect("frame");
                let v = frame.varargs.get(i).copied().unwrap_or(0);
                set(self, 0, v);
                if wrapped && b == Builtin::VaArgPtr {
                    // Pointers decoded from varargs get NULL bounds — the
                    // safe default of §5.2 (any dereference traps).
                    set(self, 1, 0);
                    set(self, 2, 0);
                }
                self.stats.cycles += 2;
            }
        }
        let _ = cost;
        Ok(Flow::Continue)
    }

    /// Wrapper-mode range check (the paper's library wrappers, §5.2):
    /// `base <= lo && lo + len <= bound`, routed through the installed
    /// runtime's violation policy. Returns how many bytes of the
    /// intended range the builtin may touch:
    ///
    /// * in bounds — the full `len` (the common path; the runtime is
    ///   not consulted, so a trap-policy run pays nothing here);
    /// * violation, policy traps — `Trap::SpatialViolation` with scheme
    ///   `"softbound-wrapper"`. The wrapper runs *before* the builtin
    ///   touches memory, so nothing has been accessed yet; the reported
    ///   address is the first out-of-bounds byte the builtin *would*
    ///   have touched — `lo` when the access starts outside the object,
    ///   otherwise `bound` (the first byte past the object an upward
    ///   walk reaches). The libc conformance harness pins this address
    ///   against the per-byte check path, which traps at the same byte;
    /// * violation, policy clamps — the in-bounds prefix (`bound - lo`,
    ///   or 0 when the range starts outside the object entirely);
    /// * violation, policy observes — the full `len`.
    fn wrapper_check(
        &mut self,
        lo: u64,
        len: u64,
        base: i64,
        bound: i64,
        write: bool,
    ) -> Result<u64, Trap> {
        let (base, bound) = (base as u64, bound as u64);
        if lo >= base && lo + len <= bound {
            return Ok(len);
        }
        let va = self
            .frames
            .last()
            .map(|f| f.varargs.len() as u64)
            .unwrap_or(0);
        self.ctx.reset(va);
        self.ctx.pc = self.stats.insts;
        let violation = BuiltinViolation {
            ptr: lo,
            len,
            base,
            bound,
            write,
        };
        let disposition = self.hooks.on_builtin_violation(&violation, &mut self.ctx);
        self.charge_ctx();
        match disposition {
            ViolationDisposition::Trap => Err(Trap::SpatialViolation {
                scheme: "softbound-wrapper",
                addr: if lo < base || lo >= bound { lo } else { bound },
                write,
            }),
            ViolationDisposition::Clamp => Ok(if lo < base || lo >= bound {
                0
            } else {
                bound - lo
            }),
            ViolationDisposition::Observe => Ok(len),
        }
    }

    /// Reports a builtin-touched buffer to the installed runtime (the
    /// libc-interposition point used by object-table and addressability
    /// schemes).
    fn hook_range(&mut self, ptr: u64, len: u64, is_store: bool) -> Result<(), Trap> {
        let va = self
            .frames
            .last()
            .map(|f| f.varargs.len() as u64)
            .unwrap_or(0);
        self.ctx.reset(va);
        let r = self
            .hooks
            .check_builtin_range(ptr, len, is_store, &mut self.ctx);
        self.charge_ctx();
        r
    }

    fn copy_bytes(&mut self, dst: u64, src: u64, n: u64) -> Result<(), Trap> {
        let mut buf = vec![0u8; 256];
        let mut off = 0;
        while off < n {
            let len = (n - off).min(256) as usize;
            self.mem.read(src + off, &mut buf[..len])?;
            self.mem.write(dst + off, &buf[..len])?;
            off += len as u64;
        }
        Ok(())
    }

    fn emit_out(&mut self, bytes: &[u8]) {
        if self.output.len() + bytes.len() <= self.cfg.output_limit {
            self.output.extend_from_slice(bytes);
        }
    }

    /// Minimal printf: `%d %u %ld %lu %x %c %s %p %%` with optional `-`,
    /// `0` flags and width. Returns the number of bytes written.
    fn printf(&mut self, args: &[i64], wrapped: bool) -> Result<i64, Trap> {
        let fmt_ptr = args[0] as u64;
        let mut fmt = self.mem.read_cstr(fmt_ptr, 1 << 16)?;
        // In wrapper mode the last two args are the fmt bounds.
        let va_end = if wrapped {
            args.len().saturating_sub(2)
        } else {
            args.len()
        };
        if wrapped {
            // Routed through the shared wrapper check so the format
            // string's trap address follows the same first-out-of-bounds
            // byte convention as every other wrapper (it used to report
            // `lo` unconditionally), and so non-trap policies can clamp
            // the scan at the boundary instead.
            let n = fmt.len() as u64 + 1;
            let eff = self.wrapper_check(fmt_ptr, n, args[va_end], args[va_end + 1], false)?;
            fmt.truncate(fmt.len().min(eff as usize));
            self.stats.checks += 1;
        }
        let varargs = &args[1..va_end];
        let mut ai = 0usize;
        let mut out: Vec<u8> = Vec::with_capacity(fmt.len() + 16);
        let mut i = 0usize;
        while i < fmt.len() {
            let c = fmt[i];
            if c != b'%' {
                out.push(c);
                i += 1;
                continue;
            }
            i += 1;
            if i >= fmt.len() {
                break;
            }
            // Flags and width.
            let mut left = false;
            let mut zero = false;
            let mut width = 0usize;
            while i < fmt.len() && (fmt[i] == b'-' || fmt[i] == b'0') {
                if fmt[i] == b'-' {
                    left = true;
                } else {
                    zero = true;
                }
                i += 1;
            }
            while i < fmt.len() && fmt[i].is_ascii_digit() {
                width = width * 10 + (fmt[i] - b'0') as usize;
                i += 1;
            }
            while i < fmt.len() && fmt[i] == b'l' {
                i += 1;
            }
            if i >= fmt.len() {
                break;
            }
            let conv = fmt[i];
            i += 1;
            let mut next = || {
                let v = varargs.get(ai).copied().unwrap_or(0);
                ai += 1;
                v
            };
            let piece: Vec<u8> = match conv {
                b'%' => vec![b'%'],
                b'd' | b'i' => next().to_string().into_bytes(),
                b'u' => (next() as u64).to_string().into_bytes(),
                b'x' => format!("{:x}", next() as u64).into_bytes(),
                b'p' => format!("{:#x}", next() as u64).into_bytes(),
                b'c' => vec![next() as u8],
                b's' => {
                    let p = next() as u64;
                    self.mem.read_cstr(p, 1 << 16)?
                }
                other => vec![b'%', other],
            };
            let pad = width.saturating_sub(piece.len());
            if pad > 0 && !left {
                let fill = if zero { b'0' } else { b' ' };
                out.extend(std::iter::repeat_n(fill, pad));
            }
            out.extend_from_slice(&piece);
            if pad > 0 && left {
                out.extend(std::iter::repeat_n(b' ', pad));
            }
        }
        self.stats.cycles += 10 + out.len() as u64;
        let n = out.len() as i64;
        self.emit_out(&out);
        Ok(n)
    }
}

fn extend(raw: u64, mem: MemTy) -> i64 {
    match mem {
        MemTy::I8 => raw as u8 as i8 as i64,
        MemTy::U8 => raw as u8 as i64,
        MemTy::I16 => raw as u16 as i16 as i64,
        MemTy::U16 => raw as u16 as i64,
        MemTy::I32 => raw as u32 as i32 as i64,
        MemTy::U32 => raw as u32 as i64,
        MemTy::I64 | MemTy::Ptr => raw as i64,
    }
}

/// Compiles, lowers, optimizes and runs a CIR-C source uninstrumented:
/// the one-call helper used across tests and examples.
///
/// # Panics
///
/// Panics if the source does not compile (tests pass known-good sources).
pub fn run_source(src: &str, entry: &str, args: &[i64]) -> RunResult {
    let prog = sb_cir::compile(src).expect("source compiles");
    let mut module = sb_ir::lower(&prog, "run");
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
    sb_ir::verify(&module).expect("module verifies");
    let mut m = Machine::uninstrumented(&module);
    m.run(entry, args)
}

/// True if `addr` is in the synthetic code segment.
pub fn is_code_addr(addr: u64) -> bool {
    addr >= FN_BASE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunResult {
        run_source(src, "main", &[])
    }

    fn ret(src: &str) -> i64 {
        let r = run(src);
        match r.outcome {
            Outcome::Finished { ret } => ret,
            other => panic!(
                "expected normal finish, got {other:?}; output: {}",
                r.output
            ),
        }
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ret("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
        assert_eq!(ret("int main() { int x = -7; return x % 3; }"), -1);
        assert_eq!(
            ret("int main() { unsigned int x = 0 - 1; return x > 100; }"),
            1
        );
    }

    #[test]
    fn int_wrapping() {
        assert_eq!(
            ret("int main() { int x = 2147483647; return x + 1 < 0; }"),
            1
        );
        assert_eq!(ret("int main() { char c = 200; return c < 0; }"), 1);
        assert_eq!(
            ret("int main() { unsigned char c = 200; return c > 0; }"),
            1
        );
    }

    #[test]
    fn loops_and_conditionals() {
        assert_eq!(
            ret("int main() { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }"),
            55
        );
        assert_eq!(
            ret("int main() { int n = 0; int i = 100; while (i > 1) { i /= 2; n++; } return n; }"),
            6
        );
        assert_eq!(ret("int main() { return 3 > 2 ? 10 : 20; }"), 10);
    }

    #[test]
    fn pointers_and_arrays() {
        assert_eq!(
            ret(r#"
            int main() {
                int a[5];
                for (int i = 0; i < 5; i++) a[i] = i * i;
                int* p = &a[1];
                return p[2] + *(a + 4); // 9 + 16
            }"#),
            25
        );
    }

    #[test]
    fn structs_and_lists() {
        assert_eq!(
            ret(r#"
            struct node { int v; struct node* next; };
            int main() {
                struct node* head = NULL;
                for (int i = 1; i <= 4; i++) {
                    struct node* n = (struct node*)malloc(sizeof(struct node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                int s = 0;
                while (head) { s = s * 10 + head->v; head = head->next; }
                return s; // 4321
            }"#),
            4321
        );
    }

    #[test]
    fn recursion() {
        assert_eq!(
            ret("int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main() { return fib(12); }"),
            144
        );
    }

    #[test]
    fn function_pointers_work() {
        assert_eq!(
            ret(r#"
            int dbl(int x) { return 2 * x; }
            int neg(int x) { return -x; }
            int apply(int (*f)(int), int v) { return f(v); }
            int main() { return apply(dbl, 10) + apply(neg, 3); }
        "#),
            17
        );
    }

    #[test]
    fn global_initializers_visible() {
        assert_eq!(
            ret("int table[4] = {10, 20, 30, 40}; int main() { return table[2]; }"),
            30
        );
        assert_eq!(
            ret("int x = 5; int* px = &x; int main() { return *px; }"),
            5
        );
    }

    #[test]
    fn strings_and_builtins() {
        let r = run(r#"
            int main() {
                char buf[16];
                strcpy(buf, "hello");
                strcat(buf, " vm");
                printf("%s/%d\n", buf, (int)strlen(buf));
                return strcmp(buf, "hello vm") == 0;
            }
        "#);
        assert_eq!(r.ret(), Some(1));
        assert_eq!(r.output, "hello vm/8\n");
    }

    #[test]
    fn printf_formats() {
        let r = run(r#"
            int main() {
                printf("%d %u %x %c %s %% %p", -5, 300, 255, 'A', "ok", (void*)16);
                return 0;
            }
        "#);
        assert_eq!(r.output, "-5 300 ff A ok % 0x10");
    }

    #[test]
    fn printf_width() {
        let r = run(r#"int main() { printf("[%5d][%-4d][%04x]", 42, 7, 11); return 0; }"#);
        assert_eq!(r.output, "[   42][7   ][000b]");
    }

    #[test]
    fn heap_roundtrip_and_free() {
        assert_eq!(
            ret(r#"
            int main() {
                int* p = (int*)malloc(10 * sizeof(int));
                for (int i = 0; i < 10; i++) p[i] = i;
                int s = 0;
                for (int i = 0; i < 10; i++) s += p[i];
                free(p);
                return s;
            }"#),
            45
        );
    }

    #[test]
    fn memcpy_memset() {
        assert_eq!(
            ret(r#"
            int main() {
                char a[8]; char b[8];
                memset(a, 7, 8);
                memcpy(b, a, 8);
                return b[0] + b[7];
            }"#),
            14
        );
    }

    #[test]
    fn silent_intra_page_overflow_is_silent() {
        // The raison d'être of SoftBound: an uninstrumented overflow into
        // an adjacent global silently corrupts it.
        assert_eq!(
            ret(r#"
            char buf[8];
            char victim[8];
            int main() {
                for (int i = 0; i < 12; i++) buf[i] = 'X';
                return victim[0] == 'X'; // corrupted neighbour
            }"#),
            1
        );
    }

    #[test]
    fn wild_unmapped_store_faults() {
        let r = run("int main() { *(int*)123456789 = 1; return 0; }");
        assert!(
            matches!(r.outcome, Outcome::Trapped(Trap::MemFault { .. })),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let r = run("int main() { int z = 0; return 5 / z; }");
        assert!(matches!(r.outcome, Outcome::Trapped(Trap::DivByZero)));
    }

    #[test]
    fn abort_exit_assert() {
        assert!(matches!(
            run("int main() { abort(); return 0; }").outcome,
            Outcome::Trapped(Trap::Abort)
        ));
        assert!(matches!(
            run("int main() { exit(42); return 0; }").outcome,
            Outcome::Exited { code: 42 }
        ));
        assert!(matches!(
            run("int main() { assert(1 == 2); return 0; }").outcome,
            Outcome::Trapped(Trap::AssertFail)
        ));
    }

    #[test]
    fn setjmp_longjmp_roundtrip() {
        assert_eq!(
            ret(r#"
            long jb[8];
            int depth(int n) {
                if (n == 0) { longjmp(jb, 7); }
                return depth(n - 1);
            }
            int main() {
                int r = setjmp(jb);
                if (r == 0) { depth(5); return -1; }
                return r;
            }"#),
            7
        );
    }

    #[test]
    fn longjmp_dead_frame_traps() {
        let r = run(r#"
            long jb[8];
            int setter() { return setjmp(jb); }
            int main() { setter(); longjmp(jb, 1); return 0; }
        "#);
        assert!(
            matches!(r.outcome, Outcome::Trapped(Trap::DeadJmpBuf)),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn return_token_overflow_hijacks() {
        // Classic stack smash: overflow a local buffer upward into the
        // spilled return token, redirecting control to `evil`.
        let r = run(r#"
            void evil(void) { exit(66); }
            void vulnerable(long target) {
                long buf[2];
                long* p = buf;
                // Overwrite saved fp (buf+2... padding) and the token.
                for (int i = 0; i < 6; i++) p[i] = target;
            }
            int main() {
                vulnerable((long)&evil);
                return 0;
            }
        "#);
        assert!(
            matches!(&r.outcome, Outcome::Hijacked { target } if target == "evil"),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn return_token_garbage_crashes() {
        let r = run(r#"
            void vulnerable(void) {
                long buf[2];
                long* p = buf;
                for (int i = 0; i < 6; i++) p[i] = 0x4141414141414141l;
            }
            int main() { vulnerable(); return 0; }
        "#);
        assert!(
            matches!(r.outcome, Outcome::Trapped(Trap::CorruptedReturn)),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn saved_fp_near_u64_max_is_corruption_not_hijack() {
        // Boundary-value fake-frame probe: the attacker plants a saved FP
        // of `u64::MAX - 7`, whose token-slot address `fp + 8` wraps to
        // address 0. With the old wrapping add, whatever sits in low
        // memory is read as the fake frame's "return token" — mapping a
        // valid code address there made the detector misreport the
        // corruption as a successful hijack of that function. The checked
        // add classifies the wrap itself as frame corruption.
        let src = r#"
            void evil(void) { exit(66); }
            void vulnerable(void) {
                long buf[1];
                buf[1] = -8; // saved-FP slot := u64::MAX - 7; token intact
            }
            int main() { vulnerable(); return 0; }
        "#;
        let prog = sb_cir::compile(src).expect("source compiles");
        let mut module = sb_ir::lower(&prog, "run");
        sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
        sb_ir::verify(&module).expect("module verifies");
        let evil = module
            .funcs
            .iter()
            .position(|f| f.name == "evil")
            .expect("evil exists") as u32;
        let mut m = Machine::uninstrumented(&module);
        // Adversarial low memory: the wrapped address holds a valid code
        // pointer, so a wrapping implementation would say Hijacked(evil).
        m.mem.map_range(0, 16);
        m.mem.write_uint(0, 8, fn_addr(evil)).expect("mapped");
        let r = m.run("main", &[]);
        assert!(
            matches!(r.outcome, Outcome::Trapped(Trap::CorruptedFrame)),
            "wrapping saved FP must trap as frame corruption, got {:?}",
            r.outcome
        );
    }

    #[test]
    fn corrupted_fnptr_in_global_hijack_via_exit() {
        // Data-pointer attack: overflow a global buffer into an adjacent
        // function pointer; the program then calls it "legitimately".
        let r = run(r#"
            void evil(void) { exit(66); }
            void good(void) { }
            char buf[8];
            void (*handler)(void) = good;
            int main() {
                long* p = (long*)buf;
                p[1] = (long)&evil; // overflow into handler
                handler();
                return 0;
            }
        "#);
        assert!(
            matches!(r.outcome, Outcome::Exited { code: 66 }),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn vararg_builtins() {
        assert_eq!(
            ret(r#"
            int sum_all(int n, ...) {
                int s = 0;
                for (int i = 0; i < n; i++) s += (int)va_arg_long(i);
                return s;
            }
            int main() { return sum_all(4, 10, 20, 30, 40) + va_helper(); }
            int va_helper() { return 0; }
        "#),
            100
        );
    }

    #[test]
    fn stats_count_pointer_memops() {
        let r = run(r#"
            struct node { int v; struct node* next; };
            int main() {
                struct node* head = NULL;
                for (int i = 0; i < 50; i++) {
                    struct node* n = (struct node*)malloc(sizeof(struct node));
                    n->v = i; n->next = head; head = n;
                }
                int s = 0;
                while (head) { s += head->v; head = head->next; }
                return s;
            }
        "#);
        assert_eq!(r.ret(), Some(1225));
        assert!(
            r.stats.ptr_mem_ops > 0,
            "pointer loads/stores must be counted"
        );
        assert!(
            r.stats.ptr_mem_fraction() > 0.2,
            "list walk is pointer-heavy: {}",
            r.stats.ptr_mem_fraction()
        );
        assert!(r.stats.mallocs == 50);
    }

    #[test]
    fn fuel_guard() {
        let prog = sb_cir::compile("int main() { while (1) { } return 0; }").expect("compiles");
        let module = sb_ir::lower(&prog, "t");
        let cfg = MachineConfig {
            fuel: 10_000,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(&module, cfg, NoRuntime);
        let r = m.run("main", &[]);
        assert!(matches!(r.outcome, Outcome::Trapped(Trap::FuelExhausted)));
    }

    #[test]
    fn wide_returns_exceed_the_fixed_buffer() {
        // The verifier caps ret arity only by `ret_kinds.len()`; a
        // hand-built function returning more than the 8-slot fast-path
        // buffer must spill correctly instead of indexing out of bounds.
        use sb_ir::{Block, Function, RegKind};
        let mut wide = Function {
            name: "wide".into(),
            params: vec![],
            param_kinds: vec![],
            ret_kinds: vec![RegKind::Int; 10],
            reg_kinds: vec![],
            blocks: vec![Block::default()],
            vararg: false,
            defined: true,
        };
        wide.blocks[0].insts.push(Inst::Ret {
            vals: (0..10).map(|i| Value::Const(i + 1)).collect(),
        });
        let mut main = Function {
            name: "main".into(),
            params: vec![],
            param_kinds: vec![],
            ret_kinds: vec![RegKind::Int],
            reg_kinds: vec![],
            blocks: vec![Block::default()],
            vararg: false,
            defined: true,
        };
        let dsts: Vec<RegId> = (0..10).map(|_| main.new_reg(RegKind::Int)).collect();
        main.blocks[0].insts.push(Inst::Call {
            dsts: dsts.clone(),
            callee: Callee::Direct(FuncId(0)),
            args: vec![],
            ptr_hint: false,
            wrapped: false,
        });
        main.blocks[0].insts.push(Inst::Ret {
            vals: vec![Value::Reg(dsts[9])],
        });
        let module = Module {
            name: "wide_ret".into(),
            globals: vec![],
            funcs: vec![wide, main],
        };
        sb_ir::verify(&module).expect("verifies");
        let mut m = Machine::uninstrumented(&module);
        let r = m.run("main", &[]);
        assert_eq!(r.ret(), Some(10), "{:?}", r.outcome);
    }

    #[test]
    fn reset_restores_fresh_machine_behaviour() {
        // A program touching every resettable piece of state: globals
        // (mutated in place), heap, the rand() stream, output, and — when
        // run with a nonzero argument — a mid-frame trap that leaves
        // frames stacked up.
        let src = r#"
            int counter = 0;
            int main(int crash) {
                counter = counter + 1;
                srand(3);
                int* p = (int*)malloc(8 * sizeof(int));
                for (int i = 0; i < 8; i++) p[i] = rand() % 100;
                if (crash) { *(int*)123456789 = 1; }
                printf("run %d: %d\n", counter, p[3]);
                free(p);
                return counter;
            }
        "#;
        let prog = sb_cir::compile(src).expect("compiles");
        let mut module = sb_ir::lower(&prog, "t");
        sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);

        let mut fresh = Machine::uninstrumented(&module);
        let want = fresh.run("main", &[0]);
        assert_eq!(want.ret(), Some(1));

        let mut reused = Machine::uninstrumented(&module);
        // First a trapping run that abandons live frames and heap blocks.
        let crash = reused.run("main", &[1]);
        assert!(matches!(
            crash.outcome,
            Outcome::Trapped(Trap::MemFault { .. })
        ));
        reused.reset();
        let got = reused.run("main", &[0]);
        assert_eq!(got.outcome, want.outcome, "outcome diverged after reset");
        assert_eq!(got.output, want.output, "output diverged after reset");
        assert_eq!(got.stats, want.stats, "stats diverged after reset");
        assert_eq!(
            reused.mem.content_hash(),
            fresh.mem.content_hash(),
            "final memory diverged after reset"
        );
    }

    #[test]
    fn rand_is_deterministic() {
        let a = run("int main() { srand(7); return rand() % 1000; }");
        let b = run("int main() { srand(7); return rand() % 1000; }");
        assert_eq!(a.ret(), b.ret());
    }

    #[test]
    fn cache_model_counts() {
        let prog = sb_cir::compile(
            "int a[4096]; int main() { int s = 0; for (int i = 0; i < 4096; i++) s += a[i]; return s>=0; }",
        )
        .expect("compiles");
        let mut module = sb_ir::lower(&prog, "t");
        sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
        let cfg = MachineConfig {
            cache: Some(CacheConfig::default()),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(&module, cfg, NoRuntime);
        let r = m.run("main", &[]);
        assert_eq!(r.ret(), Some(1));
        assert!(r.stats.cache.accesses >= 4096);
        // Sequential scan of 16 KiB: roughly one miss per 64B line.
        let misses = r.stats.cache.misses;
        assert!((200..=400).contains(&misses), "misses={misses}");
    }

    #[test]
    fn multidim_array_sum() {
        assert_eq!(
            ret(r#"
            int g[4][8];
            int main() {
                for (int i = 0; i < 4; i++)
                    for (int j = 0; j < 8; j++)
                        g[i][j] = i * j;
                int s = 0;
                for (int i = 0; i < 4; i++) s += g[i][7];
                return s; // 7*(0+1+2+3)
            }"#),
            42
        );
    }

    #[test]
    fn union_type_punning() {
        assert_eq!(
            ret(r#"
            union conv { long l; char bytes[8]; };
            int main() {
                union conv c;
                c.l = 0x4142;
                return c.bytes[0] == 0x42 && c.bytes[1] == 0x41;
            }"#),
            1
        );
    }

    #[test]
    fn null_free_is_noop_and_bad_free_traps() {
        assert_eq!(ret("int main() { free(NULL); return 1; }"), 1);
        let r = run("int main() { int x; free(&x); return 0; }");
        assert!(
            matches!(r.outcome, Outcome::Trapped(Trap::BadFree { .. })),
            "{:?}",
            r.outcome
        );
    }
}
