//! Runtime interfaces: traps, outcomes, statistics, the x86-style cost
//! model, an optional L1 cache model, and the [`RuntimeHooks`] trait that
//! safety schemes (SoftBound, object tables, redzones, MSCC) implement.

use crate::mem::{Mem, MemFault};
use sb_ir::{AllocaInfo, RtFn};
use std::fmt;

/// Why an execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// A safety runtime detected a spatial violation and aborted the
    /// program (the paper's `abort()` in `check()`).
    SpatialViolation {
        /// Which scheme fired.
        scheme: &'static str,
        /// The out-of-bounds address (or pointer value).
        addr: u64,
        /// True if the faulting access was a write.
        write: bool,
    },
    /// Access to an unmapped page — the simulated SIGSEGV.
    MemFault {
        /// Faulting address.
        addr: u64,
        /// True for writes.
        write: bool,
    },
    /// The spilled return token was corrupted and did not decode to a
    /// function (a crash in a real system).
    CorruptedReturn,
    /// The saved frame pointer was corrupted (and no viable fake frame).
    CorruptedFrame,
    /// A `longjmp` buffer held a token that decodes to nothing.
    CorruptedJmpBuf,
    /// `longjmp` to a frame that already returned.
    DeadJmpBuf,
    /// Integer division by zero.
    DivByZero,
    /// `assert()` failed.
    AssertFail,
    /// `abort()` was called.
    Abort,
    /// Heap exhausted.
    OutOfMemory,
    /// Instruction budget exhausted (runaway loop guard).
    FuelExhausted,
    /// Call to an undefined (external, unlinked) function.
    UndefinedFunction(String),
    /// Indirect call through a value that is not a function address.
    BadIndirectCall {
        /// The bogus target value.
        addr: u64,
    },
    /// An `unreachable` instruction was executed.
    Unreachable,
    /// `free()` of a pointer that is not a live allocation.
    BadFree {
        /// The bogus pointer.
        addr: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::SpatialViolation {
                scheme,
                addr,
                write,
            } => write!(
                f,
                "{scheme}: spatial memory violation ({} at {addr:#x})",
                if *write { "store" } else { "load" }
            ),
            Trap::MemFault { addr, write } => write!(
                f,
                "memory fault ({} at {addr:#x})",
                if *write { "store" } else { "load" }
            ),
            Trap::CorruptedReturn => write!(f, "return token corrupted"),
            Trap::CorruptedFrame => write!(f, "saved frame pointer corrupted"),
            Trap::CorruptedJmpBuf => write!(f, "longjmp buffer corrupted"),
            Trap::DeadJmpBuf => write!(f, "longjmp target frame has returned"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::AssertFail => write!(f, "assertion failed"),
            Trap::Abort => write!(f, "abort() called"),
            Trap::OutOfMemory => write!(f, "out of memory"),
            Trap::FuelExhausted => write!(f, "instruction budget exhausted"),
            Trap::UndefinedFunction(n) => write!(f, "call to undefined function `{n}`"),
            Trap::BadIndirectCall { addr } => write!(f, "indirect call to non-function {addr:#x}"),
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::BadFree { addr } => write!(f, "free() of invalid pointer {addr:#x}"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<MemFault> for Trap {
    fn from(e: MemFault) -> Self {
        Trap::MemFault {
            addr: e.addr,
            write: e.write,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The entry function returned normally.
    Finished {
        /// Its return value (0 for void).
        ret: i64,
    },
    /// `exit(code)` was called.
    Exited {
        /// The exit code.
        code: i64,
    },
    /// Abnormal termination.
    Trapped(Trap),
    /// Control flow was successfully diverted to an attacker-chosen
    /// function (a corrupted return token / frame pointer / jmp_buf that
    /// decoded to a valid function). This is the *attack succeeded* state
    /// of the Wilander suite.
    Hijacked {
        /// Name of the function the attacker redirected control to.
        target: String,
    },
}

impl Outcome {
    /// True if this outcome represents a *detected* spatial violation.
    pub fn is_spatial_violation(&self) -> bool {
        matches!(self, Outcome::Trapped(Trap::SpatialViolation { .. }))
    }

    /// True if the run completed without traps or hijacks.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Finished { .. } | Outcome::Exited { code: 0 })
    }
}

/// Cache statistics (when the cache model is enabled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

/// Dynamic execution statistics — the raw material for Figures 1 and 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Dynamic IR instructions executed.
    pub insts: u64,
    /// Cost-model cycles (x86-equivalent instruction count + cache
    /// penalties + runtime-helper costs).
    pub cycles: u64,
    /// Program loads executed.
    pub loads: u64,
    /// Program stores executed.
    pub stores: u64,
    /// Loads/stores of pointer values (the Figure 1 numerator).
    pub ptr_mem_ops: u64,
    /// Runtime-helper invocations (checks + metadata ops).
    pub rt_calls: u64,
    /// Cycles spent in runtime helpers.
    pub rt_cycles: u64,
    /// Bounds checks executed.
    pub checks: u64,
    /// Metadata loads executed.
    pub meta_loads: u64,
    /// Metadata stores executed.
    pub meta_stores: u64,
    /// `malloc`/`calloc` calls.
    pub mallocs: u64,
    /// `free` calls.
    pub frees: u64,
    /// Calls executed.
    pub calls: u64,
    /// Maximum frame depth.
    pub max_depth: u64,
    /// Cache behaviour, if modelled.
    pub cache: CacheStats,
}

impl ExecStats {
    /// Total program memory operations (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of memory operations that move pointers — Figure 1's
    /// y-axis.
    pub fn ptr_mem_fraction(&self) -> f64 {
        if self.mem_ops() == 0 {
            0.0
        } else {
            self.ptr_mem_ops as f64 / self.mem_ops() as f64
        }
    }
}

/// Per-instruction costs in x86-equivalent instructions. Defaults follow
/// the paper's own accounting (§5.1: shadow-space lookup ≈ 5, hash lookup
/// ≈ 9, check ≈ 3 — the helper costs live in the runtime implementations;
/// these are the base program costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU op (add/sub/logic).
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
    /// Compare (+ setcc).
    pub cmp: u64,
    /// Load (hit cost; misses add `miss_penalty`).
    pub load: u64,
    /// Store.
    pub store: u64,
    /// Address computation (lea).
    pub gep: u64,
    /// Register move (usually renamed away).
    pub mov: u64,
    /// Width cast (movsx/movzx).
    pub cast: u64,
    /// Unconditional jump.
    pub jmp: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Call overhead (caller+callee bookkeeping).
    pub call: u64,
    /// Return overhead.
    pub ret: u64,
    /// Per-argument cost of a call.
    pub call_arg: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 22,
            cmp: 1,
            load: 1,
            store: 1,
            gep: 1,
            mov: 0,
            cast: 1,
            jmp: 1,
            branch: 1,
            call: 4,
            ret: 2,
            call_arg: 1,
        }
    }
}

/// Configuration of the optional set-associative L1 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity.
    pub ways: u64,
    /// Extra cycles on a miss.
    pub miss_penalty: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 32 KiB, 64 B lines, 8-way, 30-cycle miss penalty: a Core 2-era
        // L1D (the paper's evaluation machine is a 2.66 GHz Core 2).
        CacheConfig {
            size: 32 * 1024,
            line: 64,
            ways: 8,
            miss_penalty: 30,
        }
    }
}

/// A small set-associative cache with LRU replacement, used to model the
/// memory-pressure effects the paper mentions for treeadd/mst/health
/// (§6.3: "simulations of cache miss rates indicate the additional memory
/// pressure is contributing to the runtime overheads").
#[derive(Debug)]
pub struct CacheSim {
    cfg: CacheConfig,
    sets: Vec<Vec<u64>>, // per-set LRU stack of tags (front = MRU)
    /// Statistics.
    pub stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache from a config.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = (cfg.size / (cfg.line * cfg.ways)).max(1) as usize;
        CacheSim {
            cfg,
            sets: vec![Vec::new(); nsets],
            stats: CacheStats::default(),
        }
    }

    /// Touches `addr`; returns the extra cycles (0 on hit, `miss_penalty`
    /// on miss).
    pub fn access(&mut self, addr: u64) -> u64 {
        self.stats.accesses += 1;
        let line = addr / self.cfg.line;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let ways = self.cfg.ways as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            let t = s.remove(pos);
            s.insert(0, t);
            0
        } else {
            self.stats.misses += 1;
            s.insert(0, tag);
            s.truncate(ways);
            self.cfg.miss_penalty
        }
    }
}

/// Consumer of metadata-access side effects: cost in x86-equivalent
/// instructions and the simulated table addresses the access touched.
///
/// This replaces the old `(cost: &mut u64, touched: &mut Vec<u64>)`
/// out-parameter convention. Implementations decide what to retain:
/// [`RtCtx`] records cost always and addresses only when a cache model
/// consumes them, [`ScratchSink`] is a reusable recorder for tests, and
/// [`NoopSink`] discards everything (pure data-structure benchmarks).
pub trait AccessSink {
    /// Adds `cost` x86-equivalent instructions.
    fn add_cost(&mut self, cost: u64);

    /// Reports a touched simulated metadata-table address.
    fn touch(&mut self, table_addr: u64);

    /// Reports one complete metadata access — cost plus the table
    /// address it touched — in a single virtual dispatch. This is the
    /// facilities' hot-path entry point; the split methods remain for
    /// callers that only have one half to report.
    fn record(&mut self, cost: u64, table_addr: u64) {
        self.add_cost(cost);
        if self.wants_addresses() {
            self.touch(table_addr);
        }
    }

    /// True when [`touch`](AccessSink::touch) addresses are consumed —
    /// lets facilities skip work that only feeds the cache model.
    fn wants_addresses(&self) -> bool {
        true
    }
}

/// Sink that discards cost and addresses (for benchmarking the bare data
/// structures).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl AccessSink for NoopSink {
    fn add_cost(&mut self, _cost: u64) {}

    fn touch(&mut self, _table_addr: u64) {}

    fn record(&mut self, _cost: u64, _table_addr: u64) {}

    fn wants_addresses(&self) -> bool {
        false
    }
}

/// Reusable recorder of cost and touched addresses (tests and
/// cost-accounting harnesses).
#[derive(Debug, Default)]
pub struct ScratchSink {
    /// Accumulated cost.
    pub cost: u64,
    /// Touched simulated table addresses, in order.
    pub touched: Vec<u64>,
}

impl ScratchSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the recorder for reuse (keeps the buffer).
    pub fn reset(&mut self) {
        self.cost = 0;
        self.touched.clear();
    }
}

impl AccessSink for ScratchSink {
    fn add_cost(&mut self, cost: u64) {
        self.cost += cost;
    }

    fn touch(&mut self, table_addr: u64) {
        self.touched.push(table_addr);
    }
}

/// Scratch context handed to [`RuntimeHooks`] calls: the hook reports its
/// cost and the memory addresses it touched (for the cache model), and can
/// read VM facts (current vararg count).
#[derive(Debug, Default)]
pub struct RtCtx {
    /// Cycles consumed by the helper (e.g. 5 for a shadow-space lookup).
    pub cost: u64,
    /// Addresses the helper touched (metadata tables); fed to the cache.
    pub touched: Vec<u64>,
    /// True when a cache model is installed and consumes [`Self::touched`];
    /// when false, [`AccessSink::touch`] is a no-op, so the interpreter's
    /// check path does no per-access buffer work at all.
    pub record_touched: bool,
    /// Number of variadic arguments of the current frame (for `SbVaCheck`).
    pub vararg_count: u64,
    /// Dynamic instruction index at the call site — the "PC" a runtime
    /// stamps into evidence records. The machine writes it before every
    /// check-shaped hook call; [`reset`](RtCtx::reset) leaves it alone.
    pub pc: u64,
    /// Repair order from a repair-and-continue runtime: `Some((base,
    /// bound))` means "the check I just ran would have trapped; perform
    /// the guarded access clamped to these bounds instead". The machine
    /// consumes it on the very next load/store (check and access are
    /// adjacent by construction of the instrumentation pass).
    pub repair: Option<(u64, u64)>,
}

impl RtCtx {
    /// Resets for the next call (reusing the buffer).
    pub fn reset(&mut self, vararg_count: u64) {
        self.cost = 0;
        self.touched.clear();
        self.vararg_count = vararg_count;
        self.repair = None;
    }
}

impl AccessSink for RtCtx {
    fn add_cost(&mut self, cost: u64) {
        self.cost += cost;
    }

    fn touch(&mut self, table_addr: u64) {
        if self.record_touched {
            self.touched.push(table_addr);
        }
    }

    fn wants_addresses(&self) -> bool {
        self.record_touched
    }
}

/// One §5.2 wrapper-check violation, reported to the installed runtime
/// *before* the builtin touches memory. The VM describes the whole range
/// the builtin wanted (`[ptr, ptr + len)`) against the pointer's bounds
/// (`[base, bound)`); the runtime decides how the machine responds via
/// [`ViolationDisposition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinViolation {
    /// First byte the builtin would touch.
    pub ptr: u64,
    /// Length of the intended access in bytes.
    pub len: u64,
    /// Lower bound of the pointed-to object.
    pub base: u64,
    /// One past the last valid byte of the object.
    pub bound: u64,
    /// True if the builtin would write through this pointer.
    pub write: bool,
}

/// How the installed runtime wants the VM to respond to a wrapper
/// (builtin) range violation — the §5.2 `check_range` analogue of the
/// violation policy applied on explicit checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationDisposition {
    /// Abort with a `"softbound-wrapper"` [`Trap::SpatialViolation`]
    /// (the paper's behaviour, and the default).
    Trap,
    /// Clamp the builtin's access to the in-bounds prefix of the range
    /// (zero bytes when the range starts out of bounds) and continue.
    Clamp,
    /// Perform the full access anyway and continue (monitor-only mode).
    Observe,
}

/// Return values of a runtime helper (at most 2: base and bound).
pub type RtVals = [i64; 2];

/// The interface between the VM and a safety runtime.
///
/// Instrumentation passes insert [`RtFn`] instructions; the VM forwards
/// them here together with allocation-lifecycle events. Implementations
/// live in the `softbound` and `sb-baselines` crates.
pub trait RuntimeHooks {
    /// Short identifier for diagnostics (e.g. `"softbound-shadow"`).
    fn name(&self) -> &'static str;

    /// Executes a runtime helper.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] (usually [`Trap::SpatialViolation`]) to abort the
    /// program, exactly like the paper's `check()` calling `abort()`.
    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap>;

    /// A heap allocation of `size` user bytes succeeded at `addr`.
    fn on_malloc(&mut self, addr: u64, size: u64, ctx: &mut RtCtx) {
        let _ = (addr, size, ctx);
    }

    /// A heap block is being freed.
    fn on_free(&mut self, addr: u64, size: u64, ptr_hint: bool, ctx: &mut RtCtx) {
        let _ = (addr, size, ptr_hint, ctx);
    }

    /// A stack allocation materialized at `addr`.
    fn on_alloca(&mut self, addr: u64, info: &AllocaInfo, ctx: &mut RtCtx) {
        let _ = (addr, info, ctx);
    }

    /// A frame is being torn down; `allocas` lists its `(addr, size)`
    /// stack allocations.
    fn on_frame_exit(&mut self, allocas: &[(u64, u64)], ctx: &mut RtCtx) {
        let _ = (allocas, ctx);
    }

    /// A global was laid out at `addr` during module load.
    fn on_global(&mut self, addr: u64, size: u64, ctx: &mut RtCtx) {
        let _ = (addr, size, ctx);
    }

    /// Interposition point for C-library builtins (memcpy/strcpy/…): the
    /// VM reports each buffer a builtin is about to touch. Schemes that
    /// check by *address* (object tables, addressability maps) implement
    /// their libc wrappers here; pointer-based schemes use explicit
    /// metadata arguments instead and keep the default no-op.
    ///
    /// # Errors
    ///
    /// A [`Trap`] aborts the program before the builtin runs.
    fn check_builtin_range(
        &mut self,
        ptr: u64,
        len: u64,
        is_store: bool,
        ctx: &mut RtCtx,
    ) -> Result<(), Trap> {
        let _ = (ptr, len, is_store, ctx);
        Ok(())
    }

    /// A §5.2 wrapper range check failed. The returned
    /// [`ViolationDisposition`] tells the VM whether to trap (the
    /// default, the paper's behaviour), clamp the builtin's access to
    /// the in-bounds prefix, or perform it anyway — the seam a
    /// repair-and-continue violation policy plugs into. Implementations
    /// typically record evidence here; `ctx.pc` carries the dynamic
    /// instruction index of the builtin call.
    fn on_builtin_violation(
        &mut self,
        violation: &BuiltinViolation,
        ctx: &mut RtCtx,
    ) -> ViolationDisposition {
        let _ = (violation, ctx);
        ViolationDisposition::Trap
    }

    /// Clears all per-execution state (metadata tables, counters) so a
    /// reused [`Machine`](crate::Machine) behaves exactly like a freshly
    /// constructed one while keeping expensive allocations alive.
    /// Runtimes holding state between `rt_call`s **must** implement this
    /// for [`Machine::reset`](crate::Machine::reset) to be sound; the
    /// default is a no-op for stateless runtimes.
    fn reset(&mut self) {}
}

/// Boxed hooks forward to their contents, so `Box<dyn RuntimeHooks>`
/// plugs into the generic [`Machine`](crate::Machine) as its type-erased
/// configuration (`Machine::new_dyn`). The generic machine statically
/// dispatches on `H`; only this impl's calls go through a vtable.
impl<H: RuntimeHooks + ?Sized> RuntimeHooks for Box<H> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        (**self).rt_call(rt, args, mem, ctx)
    }

    fn on_malloc(&mut self, addr: u64, size: u64, ctx: &mut RtCtx) {
        (**self).on_malloc(addr, size, ctx);
    }

    fn on_free(&mut self, addr: u64, size: u64, ptr_hint: bool, ctx: &mut RtCtx) {
        (**self).on_free(addr, size, ptr_hint, ctx);
    }

    fn on_alloca(&mut self, addr: u64, info: &AllocaInfo, ctx: &mut RtCtx) {
        (**self).on_alloca(addr, info, ctx);
    }

    fn on_frame_exit(&mut self, allocas: &[(u64, u64)], ctx: &mut RtCtx) {
        (**self).on_frame_exit(allocas, ctx);
    }

    fn on_global(&mut self, addr: u64, size: u64, ctx: &mut RtCtx) {
        (**self).on_global(addr, size, ctx);
    }

    fn check_builtin_range(
        &mut self,
        ptr: u64,
        len: u64,
        is_store: bool,
        ctx: &mut RtCtx,
    ) -> Result<(), Trap> {
        (**self).check_builtin_range(ptr, len, is_store, ctx)
    }

    fn on_builtin_violation(
        &mut self,
        violation: &BuiltinViolation,
        ctx: &mut RtCtx,
    ) -> ViolationDisposition {
        (**self).on_builtin_violation(violation, ctx)
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// A no-op runtime for uninstrumented executions.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRuntime;

impl RuntimeHooks for NoRuntime {
    fn name(&self) -> &'static str {
        "none"
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        _args: &[i64],
        _mem: &mut Mem,
        _ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        // Uninstrumented modules contain no Rt instructions; reaching here
        // means a pass/module mismatch, which we surface loudly.
        panic!("runtime call {rt:?} executed without an installed runtime");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_display() {
        let t = Trap::SpatialViolation {
            scheme: "softbound",
            addr: 0x1234,
            write: true,
        };
        assert!(t.to_string().contains("softbound"));
        assert!(t.to_string().contains("store"));
    }

    #[test]
    fn outcome_predicates() {
        assert!(Outcome::Finished { ret: 0 }.is_success());
        assert!(Outcome::Exited { code: 0 }.is_success());
        assert!(!Outcome::Exited { code: 66 }.is_success());
        assert!(Outcome::Trapped(Trap::SpatialViolation {
            scheme: "x",
            addr: 0,
            write: false
        })
        .is_spatial_violation());
        assert!(!Outcome::Hijacked {
            target: "evil".into()
        }
        .is_success());
    }

    #[test]
    fn stats_fraction() {
        let mut s = ExecStats::default();
        assert_eq!(s.ptr_mem_fraction(), 0.0);
        s.loads = 60;
        s.stores = 40;
        s.ptr_mem_ops = 25;
        assert!((s.ptr_mem_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cache_hits_and_misses() {
        let mut c = CacheSim::new(CacheConfig {
            size: 128,
            line: 64,
            ways: 1,
            miss_penalty: 10,
        });
        assert_eq!(c.access(0), 10, "cold miss");
        assert_eq!(c.access(8), 0, "same line hits");
        assert_eq!(c.access(64), 10, "different set");
        // Conflict: set 0 holds line 0; line 128 maps to set 0 in a 2-set
        // direct-mapped cache and evicts it.
        assert_eq!(c.access(128), 10);
        assert_eq!(c.access(0), 10, "evicted");
        assert_eq!(c.stats.accesses, 5);
        assert_eq!(c.stats.misses, 4);
    }

    #[test]
    fn cache_lru_within_set() {
        let mut c = CacheSim::new(CacheConfig {
            size: 256,
            line: 64,
            ways: 2,
            miss_penalty: 1,
        });
        // 2 sets × 2 ways. Lines 0,2,4 all map to set 0.
        c.access(0); // miss
        c.access(128); // miss (line 2, set 0)
        c.access(0); // hit, now MRU
        c.access(256); // miss (line 4, set 0) — evicts 128
        assert_eq!(c.access(0), 0, "0 stayed (was MRU)");
        assert_eq!(c.access(128), 1, "128 was evicted");
    }

    #[test]
    fn rtctx_reuse() {
        let mut ctx = RtCtx {
            cost: 9,
            ..RtCtx::default()
        };
        ctx.touched.push(0x10);
        ctx.reset(3);
        assert_eq!(ctx.cost, 0);
        assert!(ctx.touched.is_empty());
        assert_eq!(ctx.vararg_count, 3);
    }
}
