//! # sb-vm — the execution substrate of the SoftBound reproduction
//!
//! A simulated 64-bit machine that executes `sb-ir` modules: byte-accurate
//! paged [memory](mem) with global/heap/stack segments, a heap allocator
//! with optional redzones, an [interpreter](interp) with an x86-style
//! instruction-count cost model and optional L1 cache model, and the
//! [`RuntimeHooks`] interface through which safety
//! runtimes (SoftBound and the baselines) supply semantics and cost for
//! instrumentation-inserted runtime calls.
//!
//! Frames spill return tokens and saved frame pointers into simulated
//! memory, and `setjmp` writes live jump tokens — so the buffer-overflow
//! attacks of the paper's Table 3 genuinely divert control when no
//! protection is installed.
//!
//! # Examples
//!
//! ```
//! use sb_vm::{run_source, Outcome};
//!
//! let result = run_source("int main() { return 6 * 7; }", "main", &[]);
//! assert!(matches!(result.outcome, Outcome::Finished { ret: 42 }));
//! ```

pub mod exec;
pub mod interp;
pub mod mem;
pub mod rt;

pub use exec::{
    global_layout, global_layout_into, ExecCallee, ExecFunc, ExecModule, Op, OpVal, PoolRef,
};
pub use interp::{is_code_addr, run_source, DynMachine, Machine, MachineConfig, RunResult};
pub use mem::{
    decode_fn_addr, fn_addr, Heap, HeapBlock, Mem, MemFault, FN_BASE, GLOBAL_BASE, HEAP_BASE,
    PAGE_SIZE, STACK_BASE,
};
pub use rt::{
    AccessSink, BuiltinViolation, CacheConfig, CacheSim, CacheStats, CostModel, ExecStats,
    NoRuntime, NoopSink, Outcome, RtCtx, RtVals, RuntimeHooks, ScratchSink, Trap,
    ViolationDisposition,
};
