//! Proves the interpreter's call path performs no per-call heap
//! allocation in the steady state.
//!
//! `Inst::Call` used to collect its arguments into a fresh `Vec`, clone
//! the destination-register list, and build each frame's register file
//! from scratch. The frame pool + shared argument scratch removed all of
//! it; this test pins the property with a counting global allocator: a
//! warmed-up machine re-running a call-heavy program must allocate
//! nothing at all.

use sb_vm::{ExecModule, Machine, Outcome};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes the measuring sections: the allocation counter is global,
/// so concurrently running tests would see each other's allocations.
static MEASURE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `window` until it reports zero allocations, up to a few
/// attempts, returning the last attempt's delta.
///
/// The counter is process-global, so the measured section also sees
/// allocations from the libtest harness's own threads (result
/// bookkeeping, thread teardown) — rare, but nonzero on a loaded
/// 1-core host. Those are transient: noise can only *add* counts, so a
/// genuinely allocation-free replay reaches zero on some attempt, while
/// a real per-call allocation (the bug this suite pins) repeats on
/// every attempt and still fails.
fn min_delta_over_attempts(mut window: impl FnMut() -> u64) -> u64 {
    let mut delta = u64::MAX;
    for _ in 0..5 {
        delta = window();
        if delta == 0 {
            break;
        }
    }
    delta
}

/// Call-heavy, allocation-free program: deep recursion, wide calls,
/// varargs, indirect calls through function pointers, and allocas — every
/// shape the frame machinery must marshal. No printf/malloc/strings, so
/// the program itself asks the host for nothing.
const CALL_HEAVY: &str = r#"
    int add4(int a, int b, int c, int d) { return a + b + c + d; }
    int apply(int (*f)(int, int, int, int), int v) { return f(v, v, v, v); }
    int sum_varargs(int n, ...) {
        int s = 0;
        for (int i = 0; i < n; i++) s += (int)va_arg_long(i);
        return s;
    }
    int fib(int n) {
        int scratch[4];
        scratch[n & 3] = n;
        if (n < 2) return scratch[n & 3];
        return fib(n - 1) + fib(n - 2);
    }
    int main() {
        int total = 0;
        for (int i = 0; i < 50; i++) {
            total += add4(i, i, i, i);
            total += apply(add4, i);
            total += sum_varargs(3, i, i, i);
        }
        total += fib(15);
        return total > 0;
    }
"#;

#[test]
fn warm_machine_reruns_without_allocating() {
    // Locked before any setup: compilation in a concurrently-running
    // test would bump the shared counter mid-measurement.
    let _guard = MEASURE.lock().expect("no poisoned measurements");
    let prog = sb_cir::compile(CALL_HEAVY).expect("compiles");
    let mut module = sb_ir::lower(&prog, "alloc_test");
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
    sb_ir::verify(&module).expect("verifies");

    let mut machine = Machine::uninstrumented(&module);
    // Warmup: grows the frame pool to the program's peak depth, the
    // argument scratch to its widest call, and maps every stack page.
    let warm = machine.run("main", &[]);
    assert!(
        matches!(warm.outcome, Outcome::Finished { ret: 1 }),
        "{:?}",
        warm.outcome
    );

    // Interior allocas observe a fresh frame each run; fuel is already
    // budgeted per machine, not per run, so re-running is pure replay.
    let mut calls = 0;
    let delta = min_delta_over_attempts(|| {
        let before = allocs();
        let again = machine.run("main", &[]);
        let delta = allocs() - before;
        assert!(
            matches!(again.outcome, Outcome::Finished { ret: 1 }),
            "{:?}",
            again.outcome
        );
        calls = again.stats.calls;
        delta
    });
    assert_eq!(
        delta, 0,
        "warm interpreter must not allocate per call: {delta} allocations \
         across {calls} calls"
    );
    assert!(
        calls > 200,
        "program must be call-heavy, executed only {calls} calls"
    );
}

/// The pre-decoded execution lane (PR 6) shares the frame pool and
/// scratch buffers with the tree-walk oracle, and its flat-op dispatch
/// adds no per-step state of its own — so a warmed machine replaying
/// the same program through `run_predecoded` must also allocate
/// nothing. Lowering the `ExecModule` itself allocates (that is the
/// decode cost `Program` caching amortizes); it happens once, before
/// the measured window.
#[test]
fn warm_predecoded_lane_reruns_without_allocating() {
    let _guard = MEASURE.lock().expect("no poisoned measurements");
    let prog = sb_cir::compile(CALL_HEAVY).expect("compiles");
    let mut module = sb_ir::lower(&prog, "alloc_test_exec");
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
    sb_ir::verify(&module).expect("verifies");
    let exec = ExecModule::lower(&module);

    let mut machine = Machine::uninstrumented(&module);
    machine.attach_exec(&exec);
    let warm = machine.run_predecoded("main", &[]);
    assert!(
        matches!(warm.outcome, Outcome::Finished { ret: 1 }),
        "{:?}",
        warm.outcome
    );

    let mut calls = 0;
    let delta = min_delta_over_attempts(|| {
        let before = allocs();
        let again = machine.run_predecoded("main", &[]);
        let delta = allocs() - before;
        assert!(
            matches!(again.outcome, Outcome::Finished { ret: 1 }),
            "{:?}",
            again.outcome
        );
        calls = again.stats.calls;
        delta
    });
    assert_eq!(
        delta, 0,
        "warm pre-decoded lane must not allocate per call: {delta} allocations \
         across {calls} calls"
    );
    assert!(
        calls > 200,
        "program must be call-heavy, executed only {calls} calls"
    );
}

#[test]
fn deeper_recursion_only_grows_pools() {
    let _guard = MEASURE.lock().expect("no poisoned measurements");
    // Per-call allocation would scale with the call count; pool growth
    // scales with peak depth. Distinguish the two: after warming at a
    // given depth, running *the same depth* again allocates zero even
    // though it executes thousands more calls.
    let src = r#"
        int down(int n) { if (n == 0) return 0; return down(n - 1) + 1; }
        int main(int n) {
            int total = 0;
            for (int i = 0; i < 40; i++) total += down(n);
            return total;
        }
    "#;
    let prog = sb_cir::compile(src).expect("compiles");
    let mut module = sb_ir::lower(&prog, "depth_test");
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);

    let mut machine = Machine::uninstrumented(&module);
    let depth = 300i64;
    machine.run("main", &[depth]);
    let mut calls = 0;
    let delta = min_delta_over_attempts(|| {
        let before = allocs();
        let r = machine.run("main", &[depth]);
        let delta = allocs() - before;
        assert_eq!(r.ret(), Some(40 * depth));
        calls = r.stats.calls;
        delta
    });
    assert!(calls > 10_000, "calls: {calls}");
    assert_eq!(
        delta, 0,
        "{delta} allocations for {calls} calls at warmed depth"
    );
}
