//! Property tests: the paged memory against a flat reference model, and
//! the heap allocator's invariants.

use proptest::prelude::*;
use sb_vm::{Heap, Mem};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Map { addr: u64, len: u64 },
    Write { addr: u64, size: u8, val: u64 },
    Read { addr: u64, size: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..0x8000, 1u64..256).prop_map(|(addr, len)| Op::Map { addr, len }),
        (
            0u64..0x8400,
            prop::sample::select(vec![1u8, 2, 4, 8]),
            any::<u64>()
        )
            .prop_map(|(addr, size, val)| Op::Write { addr, size, val }),
        (0u64..0x8400, prop::sample::select(vec![1u8, 2, 4, 8]))
            .prop_map(|(addr, size)| Op::Read { addr, size }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte-level equivalence with a flat HashMap model, including the
    /// fault behaviour on unmapped pages.
    #[test]
    fn mem_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut mem = Mem::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mapped = |model: &HashMap<u64, u8>, addr: u64| model.contains_key(&addr);
        for op in ops {
            match op {
                Op::Map { addr, len } => {
                    mem.map_range(addr, len);
                    // Model maps whole pages, like the real thing.
                    let first = addr / 4096;
                    let last = (addr + len - 1) / 4096;
                    for p in first..=last {
                        for b in 0..4096u64 {
                            model.entry(p * 4096 + b).or_insert(0);
                        }
                    }
                }
                Op::Write { addr, size, val } => {
                    let ok = (0..size as u64).all(|i| mapped(&model, addr + i));
                    let r = mem.write_uint(addr, size as u64, val);
                    prop_assert_eq!(r.is_ok(), ok, "write fault mismatch at {:#x}", addr);
                    if ok {
                        for (i, b) in val.to_le_bytes()[..size as usize].iter().enumerate() {
                            model.insert(addr + i as u64, *b);
                        }
                    }
                }
                Op::Read { addr, size } => {
                    let ok = (0..size as u64).all(|i| mapped(&model, addr + i));
                    let r = mem.read_uint(addr, size as u64);
                    prop_assert_eq!(r.is_ok(), ok, "read fault mismatch at {:#x}", addr);
                    if let Ok(v) = r {
                        let mut bytes = [0u8; 8];
                        for i in 0..size as usize {
                            bytes[i] = model[&(addr + i as u64)];
                        }
                        prop_assert_eq!(v, u64::from_le_bytes(bytes));
                    }
                }
            }
        }
    }

    /// Heap invariants: live blocks never overlap, double frees are
    /// rejected, size queries agree, and reuse only happens after free.
    #[test]
    fn heap_invariants(sizes in prop::collection::vec(1u64..512, 1..60), frees in prop::collection::vec(any::<usize>(), 0..40)) {
        let mut mem = Mem::new();
        let mut heap = Heap::new(0);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for &s in &sizes {
            let addr = heap.alloc(&mut mem, s).expect("space available");
            // No overlap with any live block.
            for &(a, sz) in &live {
                prop_assert!(addr + s <= a || a + sz <= addr,
                    "overlap: new [{:#x},{:#x}) vs live [{:#x},{:#x})", addr, addr + s, a, a + sz);
            }
            prop_assert_eq!(heap.size_of(addr), Some(s));
            live.push((addr, s));
        }
        for &f in &frees {
            if live.is_empty() { break; }
            let (addr, s) = live.remove(f % live.len());
            prop_assert_eq!(heap.dealloc(addr), Some(s));
            prop_assert_eq!(heap.dealloc(addr), None, "double free must fail");
        }
    }
}
