//! Hand-rolled lexer for CIR-C.
//!
//! Produces a flat token stream with positions. Handles `//` and `/* */`
//! comments, decimal/hex/octal integer literals with optional `u`/`l`
//! suffixes, character and string literals with the usual C escapes, and
//! adjacent string literal concatenation (`"a" "b"` → `"ab"`).

use crate::error::{CompileError, Pos, Result};
use crate::token::{Tok, Token};

/// Lexes a full source string into tokens, ending with [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals, unterminated comments
/// or characters outside the CIR-C alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.i).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.i + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn push(&mut self, tok: Tok, pos: Pos) {
        self.out.push(Token { tok, pos });
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_ws_and_comments()?;
            let pos = self.pos();
            let c = self.peek();
            if c == 0 {
                self.push(Tok::Eof, pos);
                return Ok(self.out);
            }
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(pos),
                b'0'..=b'9' => self.number(pos)?,
                b'\'' => self.char_lit(pos)?,
                b'"' => self.string_lit(pos)?,
                _ => self.punct(pos)?,
            }
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            let c = self.peek();
            if c == b' ' || c == b'\t' || c == b'\r' || c == b'\n' {
                self.bump();
            } else if c == b'/' && self.peek2() == b'/' {
                while self.peek() != b'\n' && self.peek() != 0 {
                    self.bump();
                }
            } else if c == b'/' && self.peek2() == b'*' {
                let start = self.pos();
                self.bump();
                self.bump();
                loop {
                    if self.peek() == 0 {
                        return Err(CompileError::new("unterminated block comment", start));
                    }
                    if self.peek() == b'*' && self.peek2() == b'/' {
                        self.bump();
                        self.bump();
                        break;
                    }
                    self.bump();
                }
            } else if c == b'#' {
                // Preprocessor-style lines (e.g. `#include`) are ignored so
                // that realistic-looking sources can be pasted in.
                while self.peek() != b'\n' && self.peek() != 0 {
                    self.bump();
                }
            } else {
                return Ok(());
            }
        }
    }

    fn ident(&mut self, pos: Pos) {
        let start = self.i;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let s = std::str::from_utf8(&self.bytes[start..self.i]).expect("ascii ident");
        let tok = match s {
            "int" => Tok::KwInt,
            "char" => Tok::KwChar,
            "long" => Tok::KwLong,
            "short" => Tok::KwShort,
            "void" => Tok::KwVoid,
            "unsigned" => Tok::KwUnsigned,
            "signed" => Tok::KwSigned,
            "struct" => Tok::KwStruct,
            "union" => Tok::KwUnion,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "for" => Tok::KwFor,
            "do" => Tok::KwDo,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "sizeof" => Tok::KwSizeof,
            "static" => Tok::KwStatic,
            "const" => Tok::KwConst,
            "extern" => Tok::KwExtern,
            "switch" => Tok::KwSwitch,
            "case" => Tok::KwCase,
            "default" => Tok::KwDefault,
            "goto" => Tok::KwGoto,
            "NULL" => Tok::KwNull,
            _ => Tok::Ident(s.to_owned()),
        };
        self.push(tok, pos);
    }

    fn number(&mut self, pos: Pos) -> Result<()> {
        let mut value: i64 = 0;
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            self.bump();
            self.bump();
            let mut any = false;
            loop {
                let c = self.peek();
                let d = match c {
                    b'0'..=b'9' => (c - b'0') as i64,
                    b'a'..=b'f' => (c - b'a' + 10) as i64,
                    b'A'..=b'F' => (c - b'A' + 10) as i64,
                    _ => break,
                };
                value = value.wrapping_mul(16).wrapping_add(d);
                any = true;
                self.bump();
            }
            if !any {
                return Err(CompileError::new(
                    "hex literal needs at least one digit",
                    pos,
                ));
            }
        } else if self.peek() == b'0' && matches!(self.peek2(), b'0'..=b'7') {
            self.bump();
            while matches!(self.peek(), b'0'..=b'7') {
                value = value
                    .wrapping_mul(8)
                    .wrapping_add((self.bump() - b'0') as i64);
            }
        } else {
            while self.peek().is_ascii_digit() {
                value = value
                    .wrapping_mul(10)
                    .wrapping_add((self.bump() - b'0') as i64);
            }
        }
        // Eat integer suffixes; the value itself is position-independent.
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            self.bump();
        }
        if matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'.') {
            return Err(CompileError::new("malformed numeric literal", pos));
        }
        self.push(Tok::IntLit(value), pos);
        Ok(())
    }

    fn escape(&mut self, pos: Pos) -> Result<u8> {
        let c = self.bump();
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'a' => 7,
            b'b' => 8,
            b'f' => 12,
            b'v' => 11,
            b'x' => {
                let mut v: u32 = 0;
                let mut any = false;
                loop {
                    let h = self.peek();
                    let d = match h {
                        b'0'..=b'9' => (h - b'0') as u32,
                        b'a'..=b'f' => (h - b'a' + 10) as u32,
                        b'A'..=b'F' => (h - b'A' + 10) as u32,
                        _ => break,
                    };
                    v = v * 16 + d;
                    any = true;
                    self.bump();
                }
                if !any {
                    return Err(CompileError::new("\\x escape needs hex digits", pos));
                }
                (v & 0xff) as u8
            }
            _ => return Err(CompileError::new("unknown escape sequence", pos)),
        })
    }

    fn char_lit(&mut self, pos: Pos) -> Result<()> {
        self.bump(); // opening quote
        let c = self.bump();
        let value = if c == b'\\' { self.escape(pos)? } else { c };
        if self.bump() != b'\'' {
            return Err(CompileError::new("unterminated char literal", pos));
        }
        self.push(Tok::CharLit(value), pos);
        Ok(())
    }

    fn string_lit(&mut self, pos: Pos) -> Result<()> {
        let mut buf = Vec::new();
        loop {
            self.bump(); // opening quote
            loop {
                let c = self.bump();
                match c {
                    b'"' => break,
                    0 => return Err(CompileError::new("unterminated string literal", pos)),
                    b'\\' => buf.push(self.escape(pos)?),
                    _ => buf.push(c),
                }
            }
            // Adjacent string literals concatenate, as in C.
            let save = (self.i, self.line, self.col);
            self.skip_ws_and_comments()?;
            if self.peek() == b'"' {
                continue;
            }
            self.i = save.0;
            self.line = save.1;
            self.col = save.2;
            break;
        }
        self.push(Tok::StrLit(buf), pos);
        Ok(())
    }

    fn punct(&mut self, pos: Pos) -> Result<()> {
        let c = self.bump();
        let n = self.peek();
        let n2 = self.peek2();
        let tok = match (c, n, n2) {
            (b'.', b'.', b'.') => {
                self.bump();
                self.bump();
                Tok::Ellipsis
            }
            (b'<', b'<', b'=') => {
                self.bump();
                self.bump();
                Tok::ShlAssign
            }
            (b'>', b'>', b'=') => {
                self.bump();
                self.bump();
                Tok::ShrAssign
            }
            (b'-', b'>', _) => {
                self.bump();
                Tok::Arrow
            }
            (b'+', b'+', _) => {
                self.bump();
                Tok::PlusPlus
            }
            (b'-', b'-', _) => {
                self.bump();
                Tok::MinusMinus
            }
            (b'<', b'<', _) => {
                self.bump();
                Tok::Shl
            }
            (b'>', b'>', _) => {
                self.bump();
                Tok::Shr
            }
            (b'<', b'=', _) => {
                self.bump();
                Tok::Le
            }
            (b'>', b'=', _) => {
                self.bump();
                Tok::Ge
            }
            (b'=', b'=', _) => {
                self.bump();
                Tok::EqEq
            }
            (b'!', b'=', _) => {
                self.bump();
                Tok::BangEq
            }
            (b'&', b'&', _) => {
                self.bump();
                Tok::AmpAmp
            }
            (b'|', b'|', _) => {
                self.bump();
                Tok::PipePipe
            }
            (b'+', b'=', _) => {
                self.bump();
                Tok::PlusAssign
            }
            (b'-', b'=', _) => {
                self.bump();
                Tok::MinusAssign
            }
            (b'*', b'=', _) => {
                self.bump();
                Tok::StarAssign
            }
            (b'/', b'=', _) => {
                self.bump();
                Tok::SlashAssign
            }
            (b'%', b'=', _) => {
                self.bump();
                Tok::PercentAssign
            }
            (b'&', b'=', _) => {
                self.bump();
                Tok::AmpAssign
            }
            (b'|', b'=', _) => {
                self.bump();
                Tok::PipeAssign
            }
            (b'^', b'=', _) => {
                self.bump();
                Tok::CaretAssign
            }
            (b'(', ..) => Tok::LParen,
            (b')', ..) => Tok::RParen,
            (b'{', ..) => Tok::LBrace,
            (b'}', ..) => Tok::RBrace,
            (b'[', ..) => Tok::LBracket,
            (b']', ..) => Tok::RBracket,
            (b';', ..) => Tok::Semi,
            (b',', ..) => Tok::Comma,
            (b':', ..) => Tok::Colon,
            (b'?', ..) => Tok::Question,
            (b'.', ..) => Tok::Dot,
            (b'+', ..) => Tok::Plus,
            (b'-', ..) => Tok::Minus,
            (b'*', ..) => Tok::Star,
            (b'/', ..) => Tok::Slash,
            (b'%', ..) => Tok::Percent,
            (b'&', ..) => Tok::Amp,
            (b'|', ..) => Tok::Pipe,
            (b'^', ..) => Tok::Caret,
            (b'~', ..) => Tok::Tilde,
            (b'!', ..) => Tok::Bang,
            (b'<', ..) => Tok::Lt,
            (b'>', ..) => Tok::Gt,
            (b'=', ..) => Tok::Assign,
            _ => {
                return Err(CompileError::new(
                    format!("unexpected character `{}`", c as char),
                    pos,
                ))
            }
        };
        self.push(tok, pos);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lex_simple_decl() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::IntLit(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_hex_and_octal() {
        assert_eq!(
            kinds("0xff 0x10 017 0"),
            vec![
                Tok::IntLit(255),
                Tok::IntLit(16),
                Tok::IntLit(15),
                Tok::IntLit(0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_suffixes() {
        assert_eq!(
            kinds("10UL 3l"),
            vec![Tok::IntLit(10), Tok::IntLit(3), Tok::Eof]
        );
    }

    #[test]
    fn lex_operators_longest_match() {
        assert_eq!(
            kinds("a <<= b >> c <= d -> e ... ++"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Arrow,
                Tok::Ident("e".into()),
                Tok::Ellipsis,
                Tok::PlusPlus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_comments_and_preprocessor() {
        assert_eq!(
            kinds("#include <stdio.h>\n// line\nint /* block\n comment */ y;"),
            vec![Tok::KwInt, Tok::Ident("y".into()), Tok::Semi, Tok::Eof]
        );
    }

    #[test]
    fn lex_char_escapes() {
        assert_eq!(
            kinds(r"'a' '\n' '\0' '\x41'"),
            vec![
                Tok::CharLit(b'a'),
                Tok::CharLit(b'\n'),
                Tok::CharLit(0),
                Tok::CharLit(b'A'),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_string_concat() {
        assert_eq!(
            kinds(r#""ab" "cd""#),
            vec![Tok::StrLit(b"abcd".to_vec()), Tok::Eof]
        );
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(
            kinds(r#""a\tb\0""#),
            vec![Tok::StrLit(vec![b'a', 9, b'b', 0]), Tok::Eof]
        );
    }

    #[test]
    fn lex_positions() {
        let toks = lex("int\n  x;").unwrap();
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn bad_character_is_error() {
        assert!(lex("int $x;").is_err());
    }

    #[test]
    fn null_keyword() {
        assert_eq!(kinds("NULL"), vec![Tok::KwNull, Tok::Eof]);
    }
}
