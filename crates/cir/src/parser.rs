//! Recursive-descent parser for CIR-C.
//!
//! The grammar is the pragmatic C subset described in `DESIGN.md`: full
//! expression syntax with C precedence, statements (`if`/`while`/`for`/
//! `do`/`return`/`break`/`continue`/blocks), struct and union definitions,
//! globals with brace initializers, function definitions and prototypes,
//! and function-pointer declarators of the common `ret (*name)(params)`
//! shape.

use crate::ast::*;
use crate::error::{CompileError, Pos, Result};
use crate::lexer::lex;
use crate::token::{Tok, Token};

/// Parses a translation unit from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> Result<Unit> {
    let toks = lex(src)?;
    Parser { toks, i: 0 }.unit()
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.i].clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::new(
                format!("expected {}, found {}", t, self.peek()),
                self.pos(),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(CompileError::new(
                format!("expected identifier, found {other}"),
                self.pos(),
            )),
        }
    }

    // ---------------------------------------------------------- top level

    fn unit(&mut self) -> Result<Unit> {
        let mut decls = Vec::new();
        while !self.at(&Tok::Eof) {
            self.top_decl(&mut decls)?;
        }
        Ok(Unit { decls })
    }

    fn top_decl(&mut self, out: &mut Vec<Decl>) -> Result<()> {
        // Storage-class keywords are accepted and ignored.
        while self.eat(&Tok::KwStatic) || self.eat(&Tok::KwExtern) || self.eat(&Tok::KwConst) {}

        // struct/union definition `struct TAG { ... };` — distinguished from
        // a declaration that merely *uses* `struct TAG` by the `{` after the
        // tag.
        if (self.at(&Tok::KwStruct) || self.at(&Tok::KwUnion))
            && matches!(self.peek2(), Tok::Ident(_))
            && self.toks.get(self.i + 2).map(|t| &t.tok) == Some(&Tok::LBrace)
        {
            let pos = self.pos();
            let is_union = matches!(self.bump().tok, Tok::KwUnion);
            let tag = self.ident()?;
            self.expect(&Tok::LBrace)?;
            let mut fields = Vec::new();
            while !self.eat(&Tok::RBrace) {
                let base = self.base_type()?;
                loop {
                    let (name, ty) = self.declarator(base.clone())?;
                    fields.push((name, ty));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Semi)?;
            }
            self.expect(&Tok::Semi)?;
            out.push(Decl::Struct {
                tag,
                is_union,
                fields,
                pos,
            });
            return Ok(());
        }

        let pos = self.pos();
        let base = self.base_type()?;
        // `struct TAG;` forward declaration: nothing to record.
        if self.eat(&Tok::Semi) {
            return Ok(());
        }
        let (name, ty) = self.declarator(base.clone())?;

        if self.at(&Tok::LParen) && !matches!(ty, TypeExpr::Func { .. }) {
            // Function definition or prototype: `ret name(params) {body}`.
            let (params, vararg) = self.param_list()?;
            if self.eat(&Tok::Semi) {
                out.push(Decl::Func {
                    name,
                    ret: ty,
                    params,
                    vararg,
                    body: None,
                    pos,
                });
            } else {
                self.expect(&Tok::LBrace)?;
                let body = self.block_body()?;
                out.push(Decl::Func {
                    name,
                    ret: ty,
                    params,
                    vararg,
                    body: Some(body),
                    pos,
                });
            }
            return Ok(());
        }

        // Global variable(s), possibly a comma-separated declarator list.
        let mut pending = vec![(name, ty)];
        loop {
            let init = if self.eat(&Tok::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            let (name, ty) = pending.pop().expect("one pending declarator");
            out.push(Decl::Global {
                name,
                ty,
                init,
                pos,
            });
            if self.eat(&Tok::Comma) {
                pending.push(self.declarator(base.clone())?);
                continue;
            }
            self.expect(&Tok::Semi)?;
            break;
        }
        Ok(())
    }

    fn param_list(&mut self) -> Result<(Vec<Param>, bool)> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        let mut vararg = false;
        if self.eat(&Tok::RParen) {
            return Ok((params, vararg));
        }
        // `(void)` means no parameters.
        if self.at(&Tok::KwVoid) && self.peek2() == &Tok::RParen {
            self.bump();
            self.bump();
            return Ok((params, vararg));
        }
        loop {
            if self.eat(&Tok::Ellipsis) {
                vararg = true;
                break;
            }
            let base = self.base_type()?;
            let (name, ty) = self.declarator_opt_name(base)?;
            // Array parameters decay to pointers, as in C.
            let ty = decay(ty);
            params.push(Param { name, ty });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok((params, vararg))
    }

    // --------------------------------------------------------------- types

    /// Parses the "base type" part: keywords plus `struct`/`union` tags.
    fn base_type(&mut self) -> Result<TypeExpr> {
        while self.eat(&Tok::KwConst) || self.eat(&Tok::KwStatic) {}
        let pos = self.pos();
        let mut unsigned = false;
        let mut explicit_sign = false;
        if self.eat(&Tok::KwUnsigned) {
            unsigned = true;
            explicit_sign = true;
        } else if self.eat(&Tok::KwSigned) {
            explicit_sign = true;
        }
        while self.eat(&Tok::KwConst) {}
        let t = match self.peek().clone() {
            Tok::KwVoid => {
                self.bump();
                TypeExpr::Void
            }
            Tok::KwChar => {
                self.bump();
                TypeExpr::Char { unsigned }
            }
            Tok::KwShort => {
                self.bump();
                self.eat(&Tok::KwInt);
                TypeExpr::Short { unsigned }
            }
            Tok::KwInt => {
                self.bump();
                TypeExpr::Int { unsigned }
            }
            Tok::KwLong => {
                self.bump();
                self.eat(&Tok::KwLong); // `long long` == long
                self.eat(&Tok::KwInt); // `long int`
                TypeExpr::Long { unsigned }
            }
            Tok::KwStruct | Tok::KwUnion => {
                let is_union = matches!(self.bump().tok, Tok::KwUnion);
                let tag = self.ident()?;
                TypeExpr::Named { tag, is_union }
            }
            _ if explicit_sign => TypeExpr::Int { unsigned },
            other => {
                return Err(CompileError::new(
                    format!("expected type, found {other}"),
                    pos,
                ))
            }
        };
        while self.eat(&Tok::KwConst) {}
        Ok(t)
    }

    /// Parses pointer stars, a (required) name or `(*name)(params)`
    /// function-pointer declarator, and array suffixes.
    fn declarator(&mut self, base: TypeExpr) -> Result<(String, TypeExpr)> {
        let (name, ty) = self.declarator_opt_name(base)?;
        if name.is_empty() {
            return Err(CompileError::new(
                "expected a name in declarator",
                self.pos(),
            ));
        }
        Ok((name, ty))
    }

    fn declarator_opt_name(&mut self, base: TypeExpr) -> Result<(String, TypeExpr)> {
        let mut ty = base;
        while self.eat(&Tok::Star) {
            while self.eat(&Tok::KwConst) {}
            ty = TypeExpr::Ptr(Box::new(ty));
        }
        // Function-pointer declarator: `(*name)(params)` (possibly with
        // extra leading stars for pointer-to-function-pointer, and array
        // suffixes for arrays of function pointers: `(*ops[2])(int)`).
        if self.at(&Tok::LParen) && self.peek2() == &Tok::Star {
            self.bump(); // (
            let mut extra = 0;
            while self.eat(&Tok::Star) {
                extra += 1;
            }
            let name = if matches!(self.peek(), Tok::Ident(_)) {
                self.ident()?
            } else {
                String::new()
            };
            let mut dims = Vec::new();
            while self.eat(&Tok::LBracket) {
                let e = self.expr()?;
                self.expect(&Tok::RBracket)?;
                dims.push(e);
            }
            self.expect(&Tok::RParen)?;
            let (params, vararg) = self.type_param_list()?;
            let mut fty = TypeExpr::Ptr(Box::new(TypeExpr::Func {
                ret: Box::new(ty),
                params,
                vararg,
            }));
            for _ in 1..extra {
                fty = TypeExpr::Ptr(Box::new(fty));
            }
            for d in dims.into_iter().rev() {
                fty = TypeExpr::Array(Box::new(fty), Box::new(d));
            }
            return Ok((name, fty));
        }
        let name = if matches!(self.peek(), Tok::Ident(_)) {
            self.ident()?
        } else {
            String::new()
        };
        // Array suffixes, outermost first in source order.
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            if self.eat(&Tok::RBracket) {
                // Unsized `[]` — size inferred from initializer (checked later).
                dims.push(None);
            } else {
                let e = self.expr()?;
                self.expect(&Tok::RBracket)?;
                dims.push(Some(e));
            }
        }
        for d in dims.into_iter().rev() {
            let size = d.unwrap_or(Expr {
                kind: ExprKind::IntLit(0),
                pos: Pos::none(),
            });
            ty = TypeExpr::Array(Box::new(ty), Box::new(size));
        }
        Ok((name, ty))
    }

    /// Parameter list of a function *type* (names allowed but ignored).
    fn type_param_list(&mut self) -> Result<(Vec<TypeExpr>, bool)> {
        let (params, vararg) = self.param_list()?;
        Ok((params.into_iter().map(|p| p.ty).collect(), vararg))
    }

    /// Parses a type-name (for casts and `sizeof`): base type, stars, and
    /// abstract function-pointer/array suffixes.
    fn type_name(&mut self) -> Result<TypeExpr> {
        let base = self.base_type()?;
        let (name, ty) = self.declarator_opt_name(base)?;
        if !name.is_empty() {
            return Err(CompileError::new("unexpected name in type", self.pos()));
        }
        Ok(ty)
    }

    // ---------------------------------------------------------- statements

    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            self.stmt_into(&mut stmts)?;
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let mut v = Vec::new();
        self.stmt_into(&mut v)?;
        if v.len() == 1 {
            Ok(v.pop().expect("one statement"))
        } else {
            let pos = v.first().map(|s| s.pos).unwrap_or_else(Pos::none);
            Ok(Stmt {
                kind: StmtKind::Block(v),
                pos,
            })
        }
    }

    /// Parses one statement; declarations with comma lists may expand to
    /// several `Stmt`s, hence the out-parameter.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<()> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let body = self.block_body()?;
                out.push(Stmt {
                    kind: StmtKind::Block(body),
                    pos,
                });
            }
            Tok::Semi => {
                self.bump();
                out.push(Stmt {
                    kind: StmtKind::Empty,
                    pos,
                });
            }
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                out.push(Stmt {
                    kind: StmtKind::If { cond, then, els },
                    pos,
                });
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                out.push(Stmt {
                    kind: StmtKind::While { cond, body },
                    pos,
                });
            }
            Tok::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&Tok::KwWhile)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                out.push(Stmt {
                    kind: StmtKind::DoWhile { cond, body },
                    pos,
                });
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.at(&Tok::Semi) {
                    self.bump();
                    None
                } else {
                    let mut v = Vec::new();
                    if self.peek().starts_type() {
                        self.decl_stmt(&mut v)?;
                    } else {
                        let e = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        v.push(Stmt {
                            kind: StmtKind::Expr(e),
                            pos,
                        });
                    }
                    Some(Box::new(if v.len() == 1 {
                        v.pop().expect("one statement")
                    } else {
                        Stmt {
                            kind: StmtKind::Block(v),
                            pos,
                        }
                    }))
                };
                let cond = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.at(&Tok::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                out.push(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    pos,
                });
            }
            Tok::KwReturn => {
                self.bump();
                let e = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                out.push(Stmt {
                    kind: StmtKind::Return(e),
                    pos,
                });
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                out.push(Stmt {
                    kind: StmtKind::Break,
                    pos,
                });
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                out.push(Stmt {
                    kind: StmtKind::Continue,
                    pos,
                });
            }
            t if t.starts_type() || t == Tok::KwStatic => {
                self.decl_stmt(out)?;
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                out.push(Stmt {
                    kind: StmtKind::Expr(e),
                    pos,
                });
            }
        }
        Ok(())
    }

    fn decl_stmt(&mut self, out: &mut Vec<Stmt>) -> Result<()> {
        let pos = self.pos();
        while self.eat(&Tok::KwStatic) {}
        let base = self.base_type()?;
        loop {
            let (name, ty) = self.declarator(base.clone())?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.initializer()?)
            } else {
                None
            };
            out.push(Stmt {
                kind: StmtKind::Decl { name, ty, init },
                pos,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(())
    }

    fn initializer(&mut self) -> Result<Init> {
        if self.eat(&Tok::LBrace) {
            let mut items = Vec::new();
            if !self.eat(&Tok::RBrace) {
                loop {
                    items.push(self.initializer()?);
                    if self.eat(&Tok::Comma) {
                        if self.eat(&Tok::RBrace) {
                            break; // trailing comma
                        }
                        continue;
                    }
                    self.expect(&Tok::RBrace)?;
                    break;
                }
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assign_expr()?))
        }
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr> {
        // Comma operator: evaluate left, yield right. Used mainly in `for`
        // steps like `i++, j++`.
        let mut e = self.assign_expr()?;
        while self.at(&Tok::Comma) {
            let pos = self.pos();
            self.bump();
            let rhs = self.assign_expr()?;
            // Encode `(a, b)` as `(a && 1, b)`-free: use a Logical "and"
            // would change semantics. Represent with a block-like Binary on
            // a fresh kind is overkill; we desugar to `((void)a, b)` by
            // keeping both for effect through a Cond: cond ? b : b would
            // double-evaluate. Instead keep a dedicated node via Assign-less
            // trick: wrap in Call to nothing is wrong too. So: represent
            // as Binary(Comma) is cleanest — but we avoid a new BinOp by
            // using `Cond(1 != 0, b after a, ...)`. Simplest correct choice:
            // a Block expression is unsupported, so we synthesize
            // `Logical{and:false}`-free sequencing node:
            e = Expr {
                kind: ExprKind::Binary(BinOp::Add, Box::new(seq_discard(e)), Box::new(rhs)),
                pos,
            };
        }
        Ok(e)
    }

    fn assign_expr(&mut self) -> Result<Expr> {
        let lhs = self.cond_expr()?;
        let pos = self.pos();
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::And),
            Tok::PipeAssign => Some(BinOp::Or),
            Tok::CaretAssign => Some(BinOp::Xor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        Ok(Expr {
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            pos,
        })
    }

    fn cond_expr(&mut self) -> Result<Expr> {
        let cond = self.binary_expr(0)?;
        if self.at(&Tok::Question) {
            let pos = self.pos();
            self.bump();
            let t = self.expr()?;
            self.expect(&Tok::Colon)?;
            let e = self.cond_expr()?;
            return Ok(Expr {
                kind: ExprKind::Cond(Box::new(cond), Box::new(t), Box::new(e)),
                pos,
            });
        }
        Ok(cond)
    }

    /// Precedence-climbing for binary operators. Level 0 = `||`.
    fn binary_expr(&mut self, min_level: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (level, tok) = match self.peek() {
                Tok::PipePipe => (0, self.peek().clone()),
                Tok::AmpAmp => (1, self.peek().clone()),
                Tok::Pipe => (2, self.peek().clone()),
                Tok::Caret => (3, self.peek().clone()),
                Tok::Amp => (4, self.peek().clone()),
                Tok::EqEq | Tok::BangEq => (5, self.peek().clone()),
                Tok::Lt | Tok::Gt | Tok::Le | Tok::Ge => (6, self.peek().clone()),
                Tok::Shl | Tok::Shr => (7, self.peek().clone()),
                Tok::Plus | Tok::Minus => (8, self.peek().clone()),
                Tok::Star | Tok::Slash | Tok::Percent => (9, self.peek().clone()),
                _ => break,
            };
            if level < min_level {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let kind = match tok {
                Tok::PipePipe => ExprKind::Logical {
                    and: false,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                Tok::AmpAmp => ExprKind::Logical {
                    and: true,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                Tok::Pipe => ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                Tok::Caret => ExprKind::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs)),
                Tok::Amp => ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                Tok::EqEq => ExprKind::Binary(BinOp::Eq, Box::new(lhs), Box::new(rhs)),
                Tok::BangEq => ExprKind::Binary(BinOp::Ne, Box::new(lhs), Box::new(rhs)),
                Tok::Lt => ExprKind::Binary(BinOp::Lt, Box::new(lhs), Box::new(rhs)),
                Tok::Gt => ExprKind::Binary(BinOp::Gt, Box::new(lhs), Box::new(rhs)),
                Tok::Le => ExprKind::Binary(BinOp::Le, Box::new(lhs), Box::new(rhs)),
                Tok::Ge => ExprKind::Binary(BinOp::Ge, Box::new(lhs), Box::new(rhs)),
                Tok::Shl => ExprKind::Binary(BinOp::Shl, Box::new(lhs), Box::new(rhs)),
                Tok::Shr => ExprKind::Binary(BinOp::Shr, Box::new(lhs), Box::new(rhs)),
                Tok::Plus => ExprKind::Binary(BinOp::Add, Box::new(lhs), Box::new(rhs)),
                Tok::Minus => ExprKind::Binary(BinOp::Sub, Box::new(lhs), Box::new(rhs)),
                Tok::Star => ExprKind::Binary(BinOp::Mul, Box::new(lhs), Box::new(rhs)),
                Tok::Slash => ExprKind::Binary(BinOp::Div, Box::new(lhs), Box::new(rhs)),
                Tok::Percent => ExprKind::Binary(BinOp::Rem, Box::new(lhs), Box::new(rhs)),
                _ => unreachable!(),
            };
            lhs = Expr { kind, pos };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                    pos,
                })
            }
            Tok::Plus => {
                self.bump();
                self.unary_expr()
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                    pos,
                })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::BitNot, Box::new(e)),
                    pos,
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::Deref, Box::new(e)),
                    pos,
                })
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnOp::AddrOf, Box::new(e)),
                    pos,
                })
            }
            Tok::PlusPlus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::IncDec {
                        target: Box::new(e),
                        inc: true,
                        post: false,
                    },
                    pos,
                })
            }
            Tok::MinusMinus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::IncDec {
                        target: Box::new(e),
                        inc: false,
                        post: false,
                    },
                    pos,
                })
            }
            Tok::KwSizeof => {
                self.bump();
                if self.at(&Tok::LParen) && self.peek2().starts_type() {
                    self.bump();
                    let ty = self.type_name()?;
                    self.expect(&Tok::RParen)?;
                    Ok(Expr {
                        kind: ExprKind::SizeofTy(ty),
                        pos,
                    })
                } else {
                    let e = self.unary_expr()?;
                    Ok(Expr {
                        kind: ExprKind::SizeofExpr(Box::new(e)),
                        pos,
                    })
                }
            }
            Tok::LParen if self.peek2().starts_type() => {
                // Cast expression.
                self.bump();
                let ty = self.type_name()?;
                self.expect(&Tok::RParen)?;
                let e = self.unary_expr()?;
                Ok(Expr {
                    kind: ExprKind::Cast(ty, Box::new(e)),
                    pos,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.pos();
            match self.peek().clone() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    e = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        pos,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        pos,
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr {
                        kind: ExprKind::Member(Box::new(e), f),
                        pos,
                    };
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr {
                        kind: ExprKind::Arrow(Box::new(e), f),
                        pos,
                    };
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr {
                        kind: ExprKind::IncDec {
                            target: Box::new(e),
                            inc: true,
                            post: true,
                        },
                        pos,
                    };
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr {
                        kind: ExprKind::IncDec {
                            target: Box::new(e),
                            inc: false,
                            post: true,
                        },
                        pos,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    pos,
                })
            }
            Tok::CharLit(c) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::CharLit(c),
                    pos,
                })
            }
            Tok::StrLit(s) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::StrLit(s),
                    pos,
                })
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Null,
                    pos,
                })
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    pos,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                format!("expected expression, found {other}"),
                pos,
            )),
        }
    }
}

/// Rewrites `e` so that its value is discarded but side effects kept, for
/// the comma operator: `(e, rhs)` becomes `(e - e's value → 0) + rhs`…
/// Since CIR-C lacks a block expression, we multiply the value by zero;
/// side effects still occur exactly once because the operand is a single
/// evaluated expression.
fn seq_discard(e: Expr) -> Expr {
    let pos = e.pos;
    Expr {
        kind: ExprKind::Binary(
            BinOp::Mul,
            Box::new(Expr {
                kind: ExprKind::Cast(TypeExpr::Long { unsigned: false }, Box::new(e)),
                pos,
            }),
            Box::new(Expr {
                kind: ExprKind::IntLit(0),
                pos,
            }),
        ),
        pos,
    }
}

/// Array-of-T parameter types decay to pointer-to-T.
fn decay(ty: TypeExpr) -> TypeExpr {
    match ty {
        TypeExpr::Array(elem, _) => TypeExpr::Ptr(elem),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Unit {
        parse(src).unwrap_or_else(|e| panic!("parse error: {e}\nsource: {src}"))
    }

    #[test]
    fn parse_global_int() {
        let u = p("int x = 5;");
        assert_eq!(u.decls.len(), 1);
        match &u.decls[0] {
            Decl::Global { name, init, .. } => {
                assert_eq!(name, "x");
                assert!(init.is_some());
            }
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_global_list() {
        let u = p("int a, b = 2, c;");
        assert_eq!(u.decls.len(), 3);
    }

    #[test]
    fn parse_struct_def() {
        let u = p("struct node { int v; struct node* next; };");
        match &u.decls[0] {
            Decl::Struct {
                tag,
                fields,
                is_union,
                ..
            } => {
                assert_eq!(tag, "node");
                assert_eq!(fields.len(), 2);
                assert!(!is_union);
            }
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_union_def() {
        let u = p("union u { long l; char c[8]; };");
        match &u.decls[0] {
            Decl::Struct { is_union, .. } => assert!(is_union),
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_function() {
        let u = p("int add(int a, int b) { return a + b; }");
        match &u.decls[0] {
            Decl::Func {
                name,
                params,
                body,
                vararg,
                ..
            } => {
                assert_eq!(name, "add");
                assert_eq!(params.len(), 2);
                assert!(body.is_some());
                assert!(!vararg);
            }
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_prototype_and_vararg() {
        let u = p("int printf(char* fmt, ...); void f(void);");
        match &u.decls[0] {
            Decl::Func { vararg, body, .. } => {
                assert!(*vararg);
                assert!(body.is_none());
            }
            d => panic!("unexpected decl {d:?}"),
        }
        match &u.decls[1] {
            Decl::Func { params, .. } => assert!(params.is_empty()),
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_function_pointer_declarator() {
        let u =
            p("struct s { void (*handler)(int); }; int g(int (*cmp)(char*, char*)) { return 0; }");
        match &u.decls[1] {
            Decl::Func { params, .. } => match &params[0].ty {
                TypeExpr::Ptr(inner) => assert!(matches!(**inner, TypeExpr::Func { .. })),
                t => panic!("expected fn ptr, got {t:?}"),
            },
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_array_dims() {
        let u = p("int grid[8][16];");
        match &u.decls[0] {
            Decl::Global { ty, .. } => match ty {
                TypeExpr::Array(inner, _) => assert!(matches!(**inner, TypeExpr::Array(..))),
                t => panic!("expected array, got {t:?}"),
            },
            d => panic!("unexpected decl {d:?}"),
        }
    }

    #[test]
    fn parse_control_flow() {
        p(r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) s += i; else s -= i;
                }
                while (s > 100) { s /= 2; }
                do { s++; } while (s < 0);
                return s;
            }
        "#);
    }

    #[test]
    fn parse_pointer_expressions() {
        p(r#"
            int main() {
                char buf[16];
                char* p = &buf[2];
                *p = 'x';
                p = p + 3;
                **(&p) = 0;
                return (int)(p - buf);
            }
        "#);
    }

    #[test]
    fn parse_casts_vs_parens() {
        p("int main() { long x = (long)5; int y = (x + 2); return (int)(char)y; }");
    }

    #[test]
    fn parse_member_chains() {
        p(r#"
            struct inner { int v; };
            struct outer { struct inner in; struct inner* pin; };
            int main() {
                struct outer o;
                o.in.v = 1;
                o.pin->v = 2;
                return o.in.v + o.pin->v;
            }
        "#);
    }

    #[test]
    fn parse_ternary_and_logical() {
        p("int f(int a, int b) { return a && b ? a | b : a ^ ~b; }");
    }

    #[test]
    fn parse_brace_initializers() {
        p("int t[4] = {1, 2, 3, 4}; struct p { int x; int y; }; struct p origin = {0, 0};");
    }

    #[test]
    fn parse_sizeof_forms() {
        p("int main() { return sizeof(int) + sizeof(char*) + (int)sizeof 4; }");
    }

    #[test]
    fn parse_string_and_null() {
        p("char* msg = \"hi\"; int main() { char* p = NULL; return p == NULL; }");
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse("int main() { return 1 + ; }").unwrap_err();
        assert!(err.pos().line >= 1);
    }

    #[test]
    fn parse_comma_in_for_step() {
        p("int main() { int i; int j; for (i = 0, j = 9; i < j; i++, j--) {} return i; }");
    }

    #[test]
    fn parse_do_not_confuse_deref_mul() {
        p("int main() { int x = 4; int* p = &x; int y = x * *p; return y; }");
    }

    #[test]
    fn parse_unsized_array_with_init() {
        p("int t[] = {1,2,3};");
    }

    #[test]
    fn parse_forward_struct_decl() {
        p("struct node; struct node { int v; };");
    }
}
