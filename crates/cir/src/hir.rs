//! Typed, desugared program representation ("HIR") produced by the type
//! checker and consumed by IR lowering.
//!
//! Compared to the AST, the HIR: resolves all names (locals get slot ids,
//! globals and functions are split), makes lvalues explicit ([`Place`]),
//! inserts all implicit conversions as explicit [`Cast`](ExprKind::Cast)s,
//! performs array-to-pointer decay, resolves struct field offsets, and
//! classifies calls into direct / builtin / indirect.

use crate::error::Pos;
use crate::types::{FuncSig, IntKind, StructId, Ty, TypeTable};

/// Slot id of a local variable (parameters included), unique per function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

/// Id of an interned string literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrId(pub u32);

/// Comparison operators with signedness resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic/bitwise binary operators (type-checked, no comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Unary operators surviving into HIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (yields `int` 0/1).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Cast kinds with all type information resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum CastKind {
    /// Integer width/signedness change.
    IntToInt(IntKind),
    /// Integer to pointer: SoftBound gives the result NULL bounds (§5.2).
    IntToPtr,
    /// Pointer to integer.
    PtrToInt(IntKind),
    /// Pointer to pointer (including wild casts): bounds are inherited.
    PtrToPtr,
}

/// Builtin functions known to the frontend; the SoftBound pass and the VM
/// give each one its runtime semantics (and, where applicable, its wrapper
/// metadata behaviour per §5.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    Malloc,
    Calloc,
    Free,
    Memcpy,
    Memset,
    Strcpy,
    Strncpy,
    Strlen,
    Strcmp,
    Strncmp,
    Strcat,
    Printf,
    Puts,
    Putchar,
    Abort,
    Exit,
    Assert,
    Setjmp,
    Longjmp,
    Rand,
    Srand,
    /// `setbound(p, size)`: explicitly (re)bounds a pointer — the paper's
    /// escape hatch for custom allocators and int-to-pointer casts.
    Setbound,
    /// Number of variadic arguments passed to the current function.
    VaCount,
    /// `va_arg_long(i)`: i-th variadic argument as a long.
    VaArgLong,
    /// `va_arg_ptr(i)`: i-th variadic argument as a pointer (with bounds
    /// under SoftBound).
    VaArgPtr,
}

impl Builtin {
    /// Resolves a source-level name to a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "malloc" => Builtin::Malloc,
            "calloc" => Builtin::Calloc,
            "free" => Builtin::Free,
            "memcpy" => Builtin::Memcpy,
            "memset" => Builtin::Memset,
            "strcpy" => Builtin::Strcpy,
            "strncpy" => Builtin::Strncpy,
            "strlen" => Builtin::Strlen,
            "strcmp" => Builtin::Strcmp,
            "strncmp" => Builtin::Strncmp,
            "strcat" => Builtin::Strcat,
            "printf" => Builtin::Printf,
            "puts" => Builtin::Puts,
            "putchar" => Builtin::Putchar,
            "abort" => Builtin::Abort,
            "exit" => Builtin::Exit,
            "assert" => Builtin::Assert,
            "setjmp" => Builtin::Setjmp,
            "longjmp" => Builtin::Longjmp,
            "rand" => Builtin::Rand,
            "srand" => Builtin::Srand,
            "setbound" => Builtin::Setbound,
            "va_count" => Builtin::VaCount,
            "va_arg_long" => Builtin::VaArgLong,
            "va_arg_ptr" => Builtin::VaArgPtr,
            _ => return None,
        })
    }

    /// The builtin's signature (`vararg` for printf).
    pub fn sig(self) -> FuncSig {
        let vp = Ty::void_ptr;
        let cp = || Ty::char().ptr_to();
        let (ret, params, vararg) = match self {
            Builtin::Malloc => (vp(), vec![Ty::long()], false),
            Builtin::Calloc => (vp(), vec![Ty::long(), Ty::long()], false),
            Builtin::Free => (Ty::Void, vec![vp()], false),
            Builtin::Memcpy => (vp(), vec![vp(), vp(), Ty::long()], false),
            Builtin::Memset => (vp(), vec![vp(), Ty::int(), Ty::long()], false),
            Builtin::Strcpy => (cp(), vec![cp(), cp()], false),
            Builtin::Strncpy => (cp(), vec![cp(), cp(), Ty::long()], false),
            Builtin::Strlen => (Ty::long(), vec![cp()], false),
            Builtin::Strcmp => (Ty::int(), vec![cp(), cp()], false),
            Builtin::Strncmp => (Ty::int(), vec![cp(), cp(), Ty::long()], false),
            Builtin::Strcat => (cp(), vec![cp(), cp()], false),
            Builtin::Printf => (Ty::int(), vec![cp()], true),
            Builtin::Puts => (Ty::int(), vec![cp()], false),
            Builtin::Putchar => (Ty::int(), vec![Ty::int()], false),
            Builtin::Abort => (Ty::Void, vec![], false),
            Builtin::Exit => (Ty::Void, vec![Ty::int()], false),
            Builtin::Assert => (Ty::Void, vec![Ty::int()], false),
            Builtin::Setjmp => (Ty::int(), vec![Ty::long().ptr_to()], false),
            Builtin::Longjmp => (Ty::Void, vec![Ty::long().ptr_to(), Ty::int()], false),
            Builtin::Rand => (Ty::int(), vec![], false),
            Builtin::Srand => (Ty::Void, vec![Ty::int()], false),
            Builtin::Setbound => (vp(), vec![vp(), Ty::long()], false),
            Builtin::VaCount => (Ty::int(), vec![], false),
            Builtin::VaArgLong => (Ty::long(), vec![Ty::int()], false),
            Builtin::VaArgPtr => (vp(), vec![Ty::int()], false),
        };
        FuncSig {
            ret,
            params,
            vararg,
        }
    }
}

/// An lvalue: a typed recipe for computing an address.
#[derive(Debug, Clone, PartialEq)]
pub enum Place {
    /// A local variable slot.
    Var { id: LocalId, ty: Ty },
    /// A global variable.
    Global { name: String, ty: Ty },
    /// `*ptr`
    Deref { ptr: Box<Expr>, ty: Ty },
    /// `base[index]` where `base` is an *array* place (not pointer).
    Index {
        base: Box<Place>,
        index: Box<Expr>,
        elem: Ty,
    },
    /// `base.field` (and `p->field` as `Field` over `Deref`). Carries the
    /// resolved byte offset and the struct id for diagnostics.
    Field {
        base: Box<Place>,
        sid: StructId,
        offset: u64,
        ty: Ty,
    },
}

impl Place {
    /// The type of the value stored at this place.
    pub fn ty(&self) -> &Ty {
        match self {
            Place::Var { ty, .. }
            | Place::Global { ty, .. }
            | Place::Deref { ty, .. }
            | Place::Field { ty, .. } => ty,
            Place::Index { elem, .. } => elem,
        }
    }
}

/// How a call resolves.
#[derive(Debug, Clone, PartialEq)]
pub enum CallTarget {
    /// A user-defined function by name.
    Direct(String),
    /// A frontend builtin.
    Builtin(Builtin),
    /// An indirect call through a function-pointer value.
    Indirect(Box<Expr>),
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression's type (post-conversion).
    pub ty: Ty,
    /// Node kind.
    pub kind: ExprKind,
    /// Source position.
    pub pos: Pos,
}

/// Typed expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer constant (value already wrapped to `ty`).
    Int(i64),
    /// Pointer to an interned string literal (`ty` = `char*`).
    Str(StrId),
    /// Null pointer constant.
    NullPtr,
    /// Read from an lvalue.
    Load(Box<Place>),
    /// Address of an lvalue (`&x`, array decay, `&s.f`…).
    AddrOf(Box<Place>),
    /// Address of a function (function designator / `&f`).
    FuncAddr(String),
    /// Integer unary op.
    Unary(UnaryOp, Box<Expr>),
    /// Integer binary op in kind `k` (operands already converted).
    Binary {
        op: ArithOp,
        k: IntKind,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `ptr ± index` scaled by `elem_size`; bounds are inherited (§3.1).
    PtrAdd {
        ptr: Box<Expr>,
        index: Box<Expr>,
        elem_size: u64,
    },
    /// `(p - q) / elem_size`, type `long`.
    PtrDiff {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        elem_size: u64,
    },
    /// Comparison yielding `int` 0/1; `signed` applies to the operand kind.
    Cmp {
        op: CmpOp,
        signed: bool,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Short-circuit `&&`/`||` yielding `int` 0/1.
    Logical {
        and: bool,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `c ? t : e`
    Cond {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// Assignment expression; value is the stored value.
    Assign { place: Box<Place>, value: Box<Expr> },
    /// `++`/`--` in all four forms. For pointers, steps by `elem_size`.
    IncDec {
        place: Box<Place>,
        inc: bool,
        post: bool,
        elem_size: u64,
    },
    /// Function call.
    Call { target: CallTarget, args: Vec<Expr> },
    /// Conversion.
    Cast { kind: CastKind, arg: Box<Expr> },
}

/// Initializer for a local declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalInit {
    /// Single scalar store.
    Scalar(Expr),
    /// Flattened element stores `(byte offset, value)`; remaining bytes are
    /// zeroed first.
    List(Vec<(u64, Expr)>),
    /// `char buf[] = "text"` — bytes incl. NUL, zero-padded to array size.
    Str(Vec<u8>),
}

/// A typed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression evaluated for effect.
    Expr(Expr),
    /// Local declaration (slot exists from function entry; this runs the
    /// initializer at the declaration point).
    DeclInit {
        id: LocalId,
        init: Option<LocalInit>,
    },
    /// Two-armed conditional.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `while`
    While { cond: Expr, body: Vec<Stmt> },
    /// `do … while`
    DoWhile { cond: Expr, body: Vec<Stmt> },
    /// `for`, with `continue` targeting `step`.
    For {
        init: Vec<Stmt>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    /// Return.
    Return(Option<Expr>),
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// Scoped block.
    Block(Vec<Stmt>),
}

/// A local variable (or parameter) of a function.
#[derive(Debug, Clone, PartialEq)]
pub struct Local {
    /// Source name (for diagnostics and IR dumps).
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// True if `&local` occurs anywhere (forces a stack slot; otherwise the
    /// optimizer may promote it to a register, mirroring the paper's note
    /// that register promotion happens before instrumentation).
    pub addr_taken: bool,
}

/// A type-checked function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Source name.
    pub name: String,
    /// Signature.
    pub sig: FuncSig,
    /// Locals; the first `sig.params.len()` entries are the parameters.
    pub locals: Vec<Local>,
    /// Body (empty for prototypes).
    pub body: Vec<Stmt>,
    /// False for prototypes whose definition lives in another unit.
    pub defined: bool,
}

/// One item of a constant global initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstItem {
    /// Little-endian integer of `size` bytes.
    Int { value: i64, size: u8 },
    /// Pointer to string literal.
    Str(StrId),
    /// Address of (an offset into) another global.
    GlobalAddr { name: String, offset: u64 },
    /// Address of a function.
    FuncAddr(String),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Source name.
    pub name: String,
    /// Type (size known).
    pub ty: Ty,
    /// Sparse constant initializer: `(offset, item)`, zero elsewhere.
    pub init: Vec<(u64, ConstItem)>,
}

/// A fully type-checked translation unit.
#[derive(Debug, Clone)]
pub struct Program {
    /// Struct/union registry and layout engine.
    pub types: TypeTable,
    /// Globals in declaration order (layout order in the VM's data segment).
    pub globals: Vec<GlobalDef>,
    /// Functions (defined and prototypes).
    pub funcs: Vec<FuncDef>,
    /// Interned string literals (NUL **not** included; the VM appends one).
    pub strings: Vec<Vec<u8>>,
}

impl Program {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::from_name("malloc"), Some(Builtin::Malloc));
        assert_eq!(Builtin::from_name("setbound"), Some(Builtin::Setbound));
        assert_eq!(Builtin::from_name("frobnicate"), None);
    }

    #[test]
    fn builtin_sigs() {
        let m = Builtin::Malloc.sig();
        assert_eq!(m.ret, Ty::void_ptr());
        assert_eq!(m.params, vec![Ty::long()]);
        assert!(!m.vararg);
        assert!(Builtin::Printf.sig().vararg);
    }

    #[test]
    fn place_ty() {
        let p = Place::Var {
            id: LocalId(0),
            ty: Ty::int(),
        };
        assert_eq!(*p.ty(), Ty::int());
    }
}
