//! Token definitions for the CIR-C lexer.

use crate::error::Pos;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (variable, function, struct tag…).
    Ident(String),
    /// Integer literal (value already parsed; suffixes `u`/`l` are consumed).
    IntLit(i64),
    /// Character literal, as its byte value.
    CharLit(u8),
    /// String literal with escapes resolved (no trailing NUL; one is added
    /// when the literal is materialized in memory).
    StrLit(Vec<u8>),

    // Keywords.
    KwInt,
    KwChar,
    KwLong,
    KwShort,
    KwVoid,
    KwUnsigned,
    KwSigned,
    KwStruct,
    KwUnion,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    KwStatic,
    KwConst,
    KwExtern,
    KwSwitch,
    KwCase,
    KwDefault,
    KwGoto,
    KwNull,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,
    Ellipsis,

    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    PlusPlus,
    MinusMinus,

    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,

    /// End of input.
    Eof,
}

impl Tok {
    /// True if this token can begin a type name (used to disambiguate casts
    /// from parenthesized expressions).
    pub fn starts_type(&self) -> bool {
        matches!(
            self,
            Tok::KwInt
                | Tok::KwChar
                | Tok::KwLong
                | Tok::KwShort
                | Tok::KwVoid
                | Tok::KwUnsigned
                | Tok::KwSigned
                | Tok::KwStruct
                | Tok::KwUnion
                | Tok::KwConst
        )
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::IntLit(v) => write!(f, "integer literal `{v}`"),
            Tok::CharLit(c) => write!(f, "char literal `{}`", *c as char),
            Tok::StrLit(_) => write!(f, "string literal"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", other.spelling()),
        }
    }
}

impl Tok {
    /// Canonical source spelling for fixed tokens (empty for literals).
    pub fn spelling(&self) -> &'static str {
        match self {
            Tok::KwInt => "int",
            Tok::KwChar => "char",
            Tok::KwLong => "long",
            Tok::KwShort => "short",
            Tok::KwVoid => "void",
            Tok::KwUnsigned => "unsigned",
            Tok::KwSigned => "signed",
            Tok::KwStruct => "struct",
            Tok::KwUnion => "union",
            Tok::KwIf => "if",
            Tok::KwElse => "else",
            Tok::KwWhile => "while",
            Tok::KwFor => "for",
            Tok::KwDo => "do",
            Tok::KwReturn => "return",
            Tok::KwBreak => "break",
            Tok::KwContinue => "continue",
            Tok::KwSizeof => "sizeof",
            Tok::KwStatic => "static",
            Tok::KwConst => "const",
            Tok::KwExtern => "extern",
            Tok::KwSwitch => "switch",
            Tok::KwCase => "case",
            Tok::KwDefault => "default",
            Tok::KwGoto => "goto",
            Tok::KwNull => "NULL",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Question => "?",
            Tok::Dot => ".",
            Tok::Arrow => "->",
            Tok::Ellipsis => "...",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Tilde => "~",
            Tok::Bang => "!",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::BangEq => "!=",
            Tok::AmpAmp => "&&",
            Tok::PipePipe => "||",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::AmpAssign => "&=",
            Tok::PipeAssign => "|=",
            Tok::CaretAssign => "^=",
            Tok::ShlAssign => "<<=",
            Tok::ShrAssign => ">>=",
            Tok::Ident(_) | Tok::IntLit(_) | Tok::CharLit(_) | Tok::StrLit(_) | Tok::Eof => "",
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Where it begins in the source.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_starters() {
        assert!(Tok::KwInt.starts_type());
        assert!(Tok::KwStruct.starts_type());
        assert!(Tok::KwUnsigned.starts_type());
        assert!(!Tok::KwIf.starts_type());
        assert!(!Tok::Ident("x".into()).starts_type());
    }

    #[test]
    fn display_fixed_tokens() {
        assert_eq!(Tok::Arrow.to_string(), "`->`");
        assert_eq!(Tok::KwReturn.to_string(), "`return`");
    }
}
