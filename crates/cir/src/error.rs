//! Compile-time diagnostics for the CIR-C frontend.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pos {
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
    /// 1-based column number; 0 means "unknown".
    pub col: u32,
}

impl Pos {
    /// Creates a position from a line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }

    /// A sentinel position used for synthesized nodes.
    pub fn none() -> Self {
        Pos { line: 0, col: 0 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// An error produced while lexing, parsing or type checking a CIR-C
/// translation unit.
///
/// The message is lowercase without trailing punctuation, per Rust error
/// conventions; the position points at the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    msg: String,
    pos: Pos,
}

impl CompileError {
    /// Creates an error at a given position.
    pub fn new(msg: impl Into<String>, pos: Pos) -> Self {
        CompileError {
            msg: msg.into(),
            pos,
        }
    }

    /// The human-readable message (no position prefix).
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Position of the offending token.
    pub fn pos(&self) -> Pos {
        self.pos
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.msg)
    }
}

impl Error for CompileError {}

/// Convenience alias for frontend results.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = CompileError::new("unexpected token", Pos::new(3, 7));
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }

    #[test]
    fn unknown_position_displays_placeholder() {
        let e = CompileError::new("oops", Pos::none());
        assert_eq!(e.to_string(), "<unknown>: oops");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(CompileError::new("x", Pos::new(1, 1)));
        assert!(e.to_string().contains('x'));
    }
}
