//! The CIR-C type system and memory layout engine.
//!
//! Sizes follow the LP64 model the paper evaluates on (64-bit x86):
//! `char` = 1, `short` = 2, `int` = 4, `long` = 8, pointers = 8 bytes.
//! Struct layout uses natural alignment with tail padding; unions overlay
//! all fields at offset 0.
//!
//! The layout engine is parameterized by [`PtrLayout`] so the fat-pointer
//! baseline (SafeC/CCured-style, §2.2 of the paper) can be built from the
//! same frontend: fat pointers occupy 24 bytes (value, base, bound) and
//! visibly change program memory layout — exactly the incompatibility the
//! paper calls out.

use std::collections::HashMap;
use std::fmt;

/// Integer kinds (width plus signedness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntKind {
    /// Signed 8-bit (`char`).
    I8,
    /// Unsigned 8-bit (`unsigned char`).
    U8,
    /// Signed 16-bit (`short`).
    I16,
    /// Unsigned 16-bit (`unsigned short`).
    U16,
    /// Signed 32-bit (`int`).
    I32,
    /// Unsigned 32-bit (`unsigned int`).
    U32,
    /// Signed 64-bit (`long`).
    I64,
    /// Unsigned 64-bit (`unsigned long`).
    U64,
}

impl IntKind {
    /// Width in bytes.
    pub fn size(self) -> u64 {
        match self {
            IntKind::I8 | IntKind::U8 => 1,
            IntKind::I16 | IntKind::U16 => 2,
            IntKind::I32 | IntKind::U32 => 4,
            IntKind::I64 | IntKind::U64 => 8,
        }
    }

    /// True for the signed kinds.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            IntKind::I8 | IntKind::I16 | IntKind::I32 | IntKind::I64
        )
    }

    /// The result kind of the usual arithmetic conversions between two
    /// integer kinds: operands are promoted to at least `int`, the wider
    /// width wins, and unsignedness is contagious at equal width.
    pub fn usual_arith(self, other: IntKind) -> IntKind {
        let a = self.promoted();
        let b = other.promoted();
        let size = a.size().max(b.size());
        let unsigned = (!a.is_signed() && a.size() == size) || (!b.is_signed() && b.size() == size);
        match (size, unsigned) {
            (4, false) => IntKind::I32,
            (4, true) => IntKind::U32,
            (8, false) => IntKind::I64,
            (8, true) => IntKind::U64,
            _ => unreachable!("promotion yields at least 4 bytes"),
        }
    }

    /// Integer promotion: anything smaller than `int` becomes `int`.
    pub fn promoted(self) -> IntKind {
        if self.size() < 4 {
            IntKind::I32
        } else {
            self
        }
    }

    /// Truncate-and-extend an `i64` register value to this kind's range.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            IntKind::I8 => v as i8 as i64,
            IntKind::U8 => v as u8 as i64,
            IntKind::I16 => v as i16 as i64,
            IntKind::U16 => v as u16 as i64,
            IntKind::I32 => v as i32 as i64,
            IntKind::U32 => v as u32 as i64,
            IntKind::I64 => v,
            IntKind::U64 => v,
        }
    }
}

impl fmt::Display for IntKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IntKind::I8 => "char",
            IntKind::U8 => "unsigned char",
            IntKind::I16 => "short",
            IntKind::U16 => "unsigned short",
            IntKind::I32 => "int",
            IntKind::U32 => "unsigned int",
            IntKind::I64 => "long",
            IntKind::U64 => "unsigned long",
        };
        f.write_str(s)
    }
}

/// Identifier of a struct or union definition inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// A CIR-C type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `void` — only meaningful as a return type or behind a pointer.
    Void,
    /// Integer types.
    Int(IntKind),
    /// Pointer to a pointee type (`void*` is `Ptr(Void)`).
    Ptr(Box<Ty>),
    /// Fixed-size array.
    Array(Box<Ty>, u64),
    /// Struct or union, by id.
    Struct(StructId),
    /// Function type; appears only behind a pointer.
    Func(Box<FuncSig>),
}

impl Ty {
    /// `char`
    pub fn char() -> Ty {
        Ty::Int(IntKind::I8)
    }

    /// `int`
    pub fn int() -> Ty {
        Ty::Int(IntKind::I32)
    }

    /// `long`
    pub fn long() -> Ty {
        Ty::Int(IntKind::I64)
    }

    /// `void*`
    pub fn void_ptr() -> Ty {
        Ty::Ptr(Box::new(Ty::Void))
    }

    /// Wraps `self` in a pointer.
    pub fn ptr_to(self) -> Ty {
        Ty::Ptr(Box::new(self))
    }

    /// True for any pointer type (including function pointers).
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// True for integer types.
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::Int(_))
    }

    /// True for types usable in arithmetic or conditions.
    pub fn is_scalar(&self) -> bool {
        self.is_int() || self.is_ptr()
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Integer kind, if integer.
    pub fn int_kind(&self) -> Option<IntKind> {
        match self {
            Ty::Int(k) => Some(*k),
            _ => None,
        }
    }

    /// True if values of this type are (or contain) pointers that SoftBound
    /// must track: pointers themselves, arrays of such, structs with such
    /// fields. Used by the metadata-clearing and memcpy heuristics (§5.2).
    pub fn contains_ptr(&self, table: &TypeTable) -> bool {
        match self {
            Ty::Ptr(_) => true,
            Ty::Array(e, _) => e.contains_ptr(table),
            Ty::Struct(id) => table.fields(*id).iter().any(|f| f.ty.contains_ptr(table)),
            _ => false,
        }
    }
}

/// A function signature (return type, parameters, variadic flag).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Return type (`Ty::Void` for none).
    pub ret: Ty,
    /// Parameter types, in order.
    pub params: Vec<Ty>,
    /// True for `...` variadic functions.
    pub vararg: bool,
}

/// A struct/union field with its resolved byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
    /// Byte offset from the start of the aggregate (0 for all union fields).
    pub offset: u64,
}

/// A struct or union definition with computed layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Source tag name (synthesized for anonymous aggregates).
    pub name: String,
    /// Fields with resolved offsets.
    pub fields: Vec<Field>,
    /// Total size in bytes (with tail padding).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// True for unions.
    pub is_union: bool,
}

/// How pointers are represented in program-visible memory.
///
/// [`PtrLayout::Thin`] is normal C (8 bytes) and what SoftBound preserves;
/// [`PtrLayout::Fat`] is the SafeC/CCured-SEQ fat-pointer representation
/// (24 bytes: value, base, bound), which changes struct layout and `sizeof`
/// results — the source-compatibility problem of §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PtrLayout {
    /// 8-byte machine pointers (the default).
    #[default]
    Thin,
    /// 24-byte `{value, base, bound}` fat pointers.
    Fat,
}

impl PtrLayout {
    /// Bytes a pointer occupies in memory under this layout.
    pub fn ptr_size(self) -> u64 {
        match self {
            PtrLayout::Thin => 8,
            PtrLayout::Fat => 24,
        }
    }

    /// Alignment of a pointer under this layout.
    pub fn ptr_align(self) -> u64 {
        8
    }
}

/// Registry of struct/union definitions plus the layout engine.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    defs: Vec<StructDef>,
    by_name: HashMap<String, StructId>,
    layout: PtrLayout,
}

impl TypeTable {
    /// Creates an empty table with thin (8-byte) pointers.
    pub fn new() -> Self {
        Self::with_layout(PtrLayout::Thin)
    }

    /// Creates an empty table with the given pointer layout.
    pub fn with_layout(layout: PtrLayout) -> Self {
        TypeTable {
            defs: Vec::new(),
            by_name: HashMap::new(),
            layout,
        }
    }

    /// The pointer layout in effect.
    pub fn ptr_layout(&self) -> PtrLayout {
        self.layout
    }

    /// Reserves an id for a named struct before its fields are known,
    /// enabling recursive types (`struct list { struct list* next; }`).
    pub fn declare(&mut self, name: &str, is_union: bool) -> StructId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = StructId(self.defs.len() as u32);
        self.defs.push(StructDef {
            name: name.to_owned(),
            fields: Vec::new(),
            size: 0,
            align: 1,
            is_union,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Installs the fields of a previously declared aggregate and computes
    /// its layout.
    ///
    /// # Panics
    ///
    /// Panics if a field has unknown size (e.g. an incomplete struct by
    /// value); the type checker rejects such programs first.
    pub fn define(&mut self, id: StructId, raw_fields: Vec<(String, Ty)>) {
        let is_union = self.defs[id.0 as usize].is_union;
        let mut fields = Vec::with_capacity(raw_fields.len());
        let mut size: u64 = 0;
        let mut align: u64 = 1;
        for (name, ty) in raw_fields {
            let fa = self.align_of(&ty);
            let fs = self.size_of(&ty);
            align = align.max(fa);
            let offset = if is_union {
                size = size.max(fs);
                0
            } else {
                let off = round_up(size, fa);
                size = off + fs;
                off
            };
            fields.push(Field { name, ty, offset });
        }
        let size = round_up(size.max(if fields.is_empty() { 0 } else { 1 }), align);
        let def = &mut self.defs[id.0 as usize];
        def.fields = fields;
        def.size = size;
        def.align = align;
    }

    /// Looks up a struct id by tag name.
    pub fn lookup(&self, name: &str) -> Option<StructId> {
        self.by_name.get(name).copied()
    }

    /// The definition for an id.
    pub fn def(&self, id: StructId) -> &StructDef {
        &self.defs[id.0 as usize]
    }

    /// Fields of an aggregate.
    pub fn fields(&self, id: StructId) -> &[Field] {
        &self.defs[id.0 as usize].fields
    }

    /// Finds a field by name.
    pub fn field(&self, id: StructId, name: &str) -> Option<&Field> {
        self.fields(id).iter().find(|f| f.name == name)
    }

    /// Number of registered aggregates.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when no aggregates are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Size of a type in bytes under the table's pointer layout.
    ///
    /// # Panics
    ///
    /// Panics for `void` and function types, which have no size.
    pub fn size_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Void => panic!("void has no size"),
            Ty::Int(k) => k.size(),
            Ty::Ptr(_) => self.layout.ptr_size(),
            Ty::Array(e, n) => self.size_of(e) * n,
            Ty::Struct(id) => self.def(*id).size,
            Ty::Func(_) => panic!("function types have no size"),
        }
    }

    /// Alignment of a type in bytes.
    pub fn align_of(&self, ty: &Ty) -> u64 {
        match ty {
            Ty::Void => 1,
            Ty::Int(k) => k.size(),
            Ty::Ptr(_) => self.layout.ptr_align(),
            Ty::Array(e, _) => self.align_of(e),
            Ty::Struct(id) => self.def(*id).align,
            Ty::Func(_) => 1,
        }
    }

    /// Renders a type for diagnostics.
    pub fn display(&self, ty: &Ty) -> String {
        match ty {
            Ty::Void => "void".into(),
            Ty::Int(k) => k.to_string(),
            Ty::Ptr(p) => format!("{}*", self.display(p)),
            Ty::Array(e, n) => format!("{}[{n}]", self.display(e)),
            Ty::Struct(id) => {
                let d = self.def(*id);
                format!("{} {}", if d.is_union { "union" } else { "struct" }, d.name)
            }
            Ty::Func(sig) => {
                let params: Vec<String> = sig.params.iter().map(|p| self.display(p)).collect();
                format!("{}({})", self.display(&sig.ret), params.join(", "))
            }
        }
    }
}

/// Rounds `v` up to the next multiple of `align` (which must be a power of
/// two or any positive integer; simple arithmetic is used).
pub fn round_up(v: u64, align: u64) -> u64 {
    if align <= 1 {
        v
    } else {
        v.div_ceil(align) * align
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_kind_sizes() {
        assert_eq!(IntKind::I8.size(), 1);
        assert_eq!(IntKind::U16.size(), 2);
        assert_eq!(IntKind::I32.size(), 4);
        assert_eq!(IntKind::U64.size(), 8);
    }

    #[test]
    fn usual_arith_promotes_char_to_int() {
        assert_eq!(IntKind::I8.usual_arith(IntKind::I8), IntKind::I32);
    }

    #[test]
    fn usual_arith_unsigned_wins_at_same_width() {
        assert_eq!(IntKind::U32.usual_arith(IntKind::I32), IntKind::U32);
        assert_eq!(IntKind::I64.usual_arith(IntKind::U64), IntKind::U64);
    }

    #[test]
    fn usual_arith_wider_signed_beats_narrow_unsigned() {
        assert_eq!(IntKind::U32.usual_arith(IntKind::I64), IntKind::I64);
    }

    #[test]
    fn wrap_truncates() {
        assert_eq!(IntKind::I8.wrap(300), 44);
        assert_eq!(IntKind::U8.wrap(-1), 255);
        assert_eq!(IntKind::I32.wrap(1 << 40), 0);
        assert_eq!(IntKind::U32.wrap(-1), 0xffff_ffff);
    }

    #[test]
    fn struct_layout_natural_alignment() {
        let mut t = TypeTable::new();
        let id = t.declare("node", false);
        t.define(
            id,
            vec![
                ("c".into(), Ty::char()),
                ("i".into(), Ty::int()),
                ("p".into(), Ty::char().ptr_to()),
            ],
        );
        let d = t.def(id);
        assert_eq!(d.fields[0].offset, 0);
        assert_eq!(d.fields[1].offset, 4);
        assert_eq!(d.fields[2].offset, 8);
        assert_eq!(d.size, 16);
        assert_eq!(d.align, 8);
    }

    #[test]
    fn struct_tail_padding() {
        let mut t = TypeTable::new();
        let id = t.declare("s", false);
        t.define(
            id,
            vec![("p".into(), Ty::int().ptr_to()), ("c".into(), Ty::char())],
        );
        assert_eq!(t.def(id).size, 16);
    }

    #[test]
    fn union_overlays_fields() {
        let mut t = TypeTable::new();
        let id = t.declare("u", true);
        t.define(
            id,
            vec![
                ("i".into(), Ty::long()),
                ("c".into(), Ty::Array(Box::new(Ty::char()), 3)),
            ],
        );
        let d = t.def(id);
        assert_eq!(d.fields[0].offset, 0);
        assert_eq!(d.fields[1].offset, 0);
        assert_eq!(d.size, 8);
    }

    #[test]
    fn recursive_struct_via_declare() {
        let mut t = TypeTable::new();
        let id = t.declare("list", false);
        t.define(
            id,
            vec![
                ("v".into(), Ty::int()),
                ("next".into(), Ty::Struct(id).ptr_to()),
            ],
        );
        assert_eq!(t.def(id).size, 16);
    }

    #[test]
    fn fat_pointers_change_layout() {
        let mut thin = TypeTable::new();
        let a = thin.declare("s", false);
        thin.define(
            a,
            vec![("p".into(), Ty::char().ptr_to()), ("v".into(), Ty::long())],
        );

        let mut fat = TypeTable::with_layout(PtrLayout::Fat);
        let b = fat.declare("s", false);
        fat.define(
            b,
            vec![("p".into(), Ty::char().ptr_to()), ("v".into(), Ty::long())],
        );

        assert_eq!(thin.def(a).size, 16);
        assert_eq!(
            fat.def(b).size,
            32,
            "fat pointers visibly change memory layout"
        );
    }

    #[test]
    fn contains_ptr_walks_aggregates() {
        let mut t = TypeTable::new();
        let inner = t.declare("inner", false);
        t.define(inner, vec![("p".into(), Ty::void_ptr())]);
        let outer = t.declare("outer", false);
        t.define(
            outer,
            vec![("arr".into(), Ty::Array(Box::new(Ty::Struct(inner)), 4))],
        );
        assert!(Ty::Struct(outer).contains_ptr(&t));
        assert!(!Ty::long().contains_ptr(&t));
    }

    #[test]
    fn display_types() {
        let mut t = TypeTable::new();
        let id = t.declare("n", false);
        t.define(id, vec![]);
        assert_eq!(t.display(&Ty::char().ptr_to().ptr_to()), "char**");
        assert_eq!(t.display(&Ty::Array(Box::new(Ty::int()), 4)), "int[4]");
        assert_eq!(t.display(&Ty::Struct(id)), "struct n");
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
        assert_eq!(round_up(5, 1), 5);
    }
}
