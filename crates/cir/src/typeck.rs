//! Type checker: resolves the untyped AST into the typed [`hir`](crate::hir).
//!
//! Responsibilities: struct registration and layout, name resolution
//! (locals/globals/functions/builtins), implicit conversion insertion, C's
//! usual arithmetic conversions, array-to-pointer decay, pointer arithmetic
//! scaling, constant evaluation for array sizes and global initializers,
//! and structural checks (lvalues, call arity, loop context for
//! `break`/`continue`).

use crate::ast::{
    self, BinOp, Decl, Expr as AExpr, ExprKind as AK, Init, Stmt as AStmt, StmtKind, TypeExpr, UnOp,
};
use crate::error::{CompileError, Pos, Result};
use crate::hir::*;
use crate::types::{FuncSig, IntKind, PtrLayout, Ty, TypeTable};
use std::collections::HashMap;

/// Type-checks a parsed unit with the default thin-pointer layout.
///
/// # Errors
///
/// Returns the first type error encountered.
pub fn check(unit: &ast::Unit) -> Result<Program> {
    check_with_layout(unit, PtrLayout::Thin)
}

/// Type-checks with an explicit pointer layout (the fat-pointer baseline
/// passes [`PtrLayout::Fat`]).
///
/// # Errors
///
/// Returns the first type error encountered.
pub fn check_with_layout(unit: &ast::Unit, layout: PtrLayout) -> Result<Program> {
    let mut cx = Checker::new(layout);
    cx.register_structs(unit)?;
    cx.register_signatures(unit)?;
    cx.check_globals(unit)?;
    cx.check_functions(unit)?;
    Ok(Program {
        types: cx.types,
        globals: cx.globals,
        funcs: cx.funcs,
        strings: cx.strings,
    })
}

/// Result of checking an expression: a value, an lvalue, or a function
/// designator.
enum Checked {
    Val(Expr),
    Place(Place),
    Func(String),
}

struct Checker {
    types: TypeTable,
    defined_structs: Vec<bool>,
    globals: Vec<GlobalDef>,
    global_tys: HashMap<String, Ty>,
    func_sigs: HashMap<String, FuncSig>,
    funcs: Vec<FuncDef>,
    strings: Vec<Vec<u8>>,
    // Per-function state.
    locals: Vec<Local>,
    scopes: Vec<HashMap<String, LocalId>>,
    ret_ty: Ty,
    loop_depth: u32,
    current_vararg: bool,
}

impl Checker {
    fn new(layout: PtrLayout) -> Self {
        Checker {
            types: TypeTable::with_layout(layout),
            defined_structs: Vec::new(),
            globals: Vec::new(),
            global_tys: HashMap::new(),
            func_sigs: HashMap::new(),
            funcs: Vec::new(),
            strings: Vec::new(),
            locals: Vec::new(),
            scopes: Vec::new(),
            ret_ty: Ty::Void,
            loop_depth: 0,
            current_vararg: false,
        }
    }

    fn err<T>(&self, msg: impl Into<String>, pos: Pos) -> Result<T> {
        Err(CompileError::new(msg, pos))
    }

    // ------------------------------------------------------------ structs

    fn register_structs(&mut self, unit: &ast::Unit) -> Result<()> {
        // Pass 1: declare every tag so pointer fields can be recursive.
        for d in &unit.decls {
            if let Decl::Struct { tag, is_union, .. } = d {
                let id = self.types.declare(tag, *is_union);
                if self.defined_structs.len() <= id.0 as usize {
                    self.defined_structs.resize(id.0 as usize + 1, false);
                }
            }
        }
        // Pass 2: define in source order; by-value fields must already be
        // defined (C completeness rule).
        for d in &unit.decls {
            if let Decl::Struct {
                tag, fields, pos, ..
            } = d
            {
                let id = self.types.lookup(tag).expect("declared in pass 1");
                if self.defined_structs[id.0 as usize] {
                    return self.err(format!("duplicate definition of struct `{tag}`"), *pos);
                }
                let mut resolved = Vec::with_capacity(fields.len());
                for (fname, fty) in fields {
                    let ty = self.resolve_ty(fty, *pos)?;
                    self.require_complete(&ty, *pos)?;
                    resolved.push((fname.clone(), ty));
                }
                self.types.define(id, resolved);
                self.defined_structs[id.0 as usize] = true;
            }
        }
        Ok(())
    }

    fn require_complete(&self, ty: &Ty, pos: Pos) -> Result<()> {
        match ty {
            Ty::Void => self.err("`void` is not a value type", pos),
            Ty::Struct(id) => {
                if self
                    .defined_structs
                    .get(id.0 as usize)
                    .copied()
                    .unwrap_or(false)
                {
                    Ok(())
                } else {
                    self.err(
                        format!(
                            "struct `{}` used by value before definition",
                            self.types.def(*id).name
                        ),
                        pos,
                    )
                }
            }
            Ty::Array(e, n) => {
                if *n == 0 {
                    self.err("array size must be positive", pos)
                } else {
                    self.require_complete(e, pos)
                }
            }
            Ty::Func(_) => self.err("function type is not a value type", pos),
            _ => Ok(()),
        }
    }

    fn resolve_ty(&mut self, t: &TypeExpr, pos: Pos) -> Result<Ty> {
        Ok(match t {
            TypeExpr::Void => Ty::Void,
            TypeExpr::Char { unsigned } => {
                Ty::Int(if *unsigned { IntKind::U8 } else { IntKind::I8 })
            }
            TypeExpr::Short { unsigned } => Ty::Int(if *unsigned {
                IntKind::U16
            } else {
                IntKind::I16
            }),
            TypeExpr::Int { unsigned } => Ty::Int(if *unsigned {
                IntKind::U32
            } else {
                IntKind::I32
            }),
            TypeExpr::Long { unsigned } => Ty::Int(if *unsigned {
                IntKind::U64
            } else {
                IntKind::I64
            }),
            TypeExpr::Named { tag, is_union } => {
                let id = self.types.declare(tag, *is_union);
                if self.defined_structs.len() <= id.0 as usize {
                    self.defined_structs.resize(id.0 as usize + 1, false);
                }
                Ty::Struct(id)
            }
            TypeExpr::Ptr(inner) => self.resolve_ty(inner, pos)?.ptr_to(),
            TypeExpr::Array(inner, size) => {
                let elem = self.resolve_ty(inner, pos)?;
                let n = self.const_eval(size)?;
                if n < 0 {
                    return self.err("array size must be non-negative", pos);
                }
                Ty::Array(Box::new(elem), n as u64)
            }
            TypeExpr::Func {
                ret,
                params,
                vararg,
            } => {
                let r = self.resolve_ty(ret, pos)?;
                let mut ps = Vec::with_capacity(params.len());
                for p in params {
                    ps.push(self.resolve_ty(p, pos)?);
                }
                Ty::Func(Box::new(FuncSig {
                    ret: r,
                    params: ps,
                    vararg: *vararg,
                }))
            }
        })
    }

    // --------------------------------------------------------- signatures

    fn register_signatures(&mut self, unit: &ast::Unit) -> Result<()> {
        for d in &unit.decls {
            if let Decl::Func {
                name,
                ret,
                params,
                vararg,
                pos,
                ..
            } = d
            {
                let r = self.resolve_ty(ret, *pos)?;
                let mut ps = Vec::with_capacity(params.len());
                for p in params {
                    let ty = self.resolve_ty(&p.ty, *pos)?;
                    if matches!(ty, Ty::Struct(_)) {
                        return self.err(
                            "passing structs by value is not supported; pass a pointer",
                            *pos,
                        );
                    }
                    ps.push(ty);
                }
                if matches!(r, Ty::Struct(_)) {
                    return self.err("returning structs by value is not supported", *pos);
                }
                let sig = FuncSig {
                    ret: r,
                    params: ps,
                    vararg: *vararg,
                };
                if let Some(prev) = self.func_sigs.get(name) {
                    if *prev != sig {
                        return self.err(
                            format!("conflicting declarations for function `{name}`"),
                            *pos,
                        );
                    }
                } else {
                    self.func_sigs.insert(name.clone(), sig);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------ globals

    fn check_globals(&mut self, unit: &ast::Unit) -> Result<()> {
        for d in &unit.decls {
            if let Decl::Global {
                name,
                ty,
                init,
                pos,
            } = d
            {
                let mut rty = self.resolve_ty(ty, *pos)?;
                // `T x[] = {...}` / `char s[] = "..."`: infer the dimension.
                if let Ty::Array(elem, 0) = &rty {
                    let n = match init {
                        Some(Init::List(items)) => items.len() as u64,
                        Some(Init::Expr(AExpr {
                            kind: AK::StrLit(s),
                            ..
                        })) if **elem == Ty::char() => s.len() as u64 + 1,
                        _ => {
                            return self.err("unsized array needs an initializer", *pos);
                        }
                    };
                    rty = Ty::Array(elem.clone(), n);
                }
                self.require_complete(&rty, *pos)?;
                if self.global_tys.contains_key(name) {
                    return self.err(format!("duplicate global `{name}`"), *pos);
                }
                let mut items = Vec::new();
                if let Some(init) = init {
                    self.const_init(&rty, init, 0, &mut items, *pos)?;
                }
                self.global_tys.insert(name.clone(), rty.clone());
                self.globals.push(GlobalDef {
                    name: name.clone(),
                    ty: rty,
                    init: items,
                });
            }
        }
        Ok(())
    }

    fn intern_str(&mut self, s: &[u8]) -> StrId {
        if let Some(i) = self.strings.iter().position(|x| x == s) {
            return StrId(i as u32);
        }
        self.strings.push(s.to_vec());
        StrId(self.strings.len() as u32 - 1)
    }

    /// Flattens a constant initializer for type `ty` at byte offset `off`.
    fn const_init(
        &mut self,
        ty: &Ty,
        init: &Init,
        off: u64,
        out: &mut Vec<(u64, ConstItem)>,
        pos: Pos,
    ) -> Result<()> {
        match (ty, init) {
            (Ty::Int(k), Init::Expr(e)) => {
                let v = self.const_eval(e)?;
                out.push((
                    off,
                    ConstItem::Int {
                        value: k.wrap(v),
                        size: k.size() as u8,
                    },
                ));
                Ok(())
            }
            (Ty::Ptr(_), Init::Expr(e)) => {
                let item = self.const_ptr(e)?;
                out.push((off, item));
                Ok(())
            }
            (
                Ty::Array(elem, n),
                Init::Expr(AExpr {
                    kind: AK::StrLit(s),
                    ..
                }),
            ) if **elem == Ty::char() || **elem == Ty::Int(IntKind::U8) => {
                if s.len() as u64 + 1 > *n {
                    return self.err("string literal longer than array", pos);
                }
                for (i, b) in s.iter().enumerate() {
                    out.push((
                        off + i as u64,
                        ConstItem::Int {
                            value: *b as i64,
                            size: 1,
                        },
                    ));
                }
                Ok(())
            }
            (Ty::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return self.err("too many initializers for array", pos);
                }
                let esz = self.types.size_of(elem);
                for (i, item) in items.iter().enumerate() {
                    self.const_init(elem, item, off + i as u64 * esz, out, pos)?;
                }
                Ok(())
            }
            (Ty::Struct(id), Init::List(items)) => {
                let fields: Vec<_> = self.types.fields(*id).to_vec();
                if items.len() > fields.len() {
                    return self.err("too many initializers for struct", pos);
                }
                for (f, item) in fields.iter().zip(items) {
                    self.const_init(&f.ty, item, off + f.offset, out, pos)?;
                }
                Ok(())
            }
            _ => self.err("initializer shape does not match type", pos),
        }
    }

    /// A constant pointer initializer: NULL, 0, a string literal, `&global`,
    /// `&global[k]`, `global` (array decay), or a function name.
    fn const_ptr(&mut self, e: &AExpr) -> Result<ConstItem> {
        match &e.kind {
            AK::Null => Ok(ConstItem::Int { value: 0, size: 8 }),
            AK::IntLit(0) => Ok(ConstItem::Int { value: 0, size: 8 }),
            AK::StrLit(s) => Ok(ConstItem::Str(self.intern_str(s))),
            AK::Ident(name) => {
                if let Some(ty) = self.global_tys.get(name) {
                    if matches!(ty, Ty::Array(..)) {
                        return Ok(ConstItem::GlobalAddr {
                            name: name.clone(),
                            offset: 0,
                        });
                    }
                }
                if self.func_sigs.contains_key(name) {
                    return Ok(ConstItem::FuncAddr(name.clone()));
                }
                self.err(format!("`{name}` is not a constant address"), e.pos)
            }
            AK::Unary(UnOp::AddrOf, inner) => match &inner.kind {
                AK::Ident(name) if self.global_tys.contains_key(name) => {
                    Ok(ConstItem::GlobalAddr {
                        name: name.clone(),
                        offset: 0,
                    })
                }
                AK::Index(base, idx) => {
                    if let AK::Ident(name) = &base.kind {
                        if let Some(Ty::Array(elem, _)) = self.global_tys.get(name).cloned() {
                            let i = self.const_eval(idx)?;
                            let esz = self.types.size_of(&elem);
                            return Ok(ConstItem::GlobalAddr {
                                name: name.clone(),
                                offset: i as u64 * esz,
                            });
                        }
                    }
                    self.err("unsupported constant address expression", e.pos)
                }
                _ => self.err("unsupported constant address expression", e.pos),
            },
            AK::Cast(_, inner) => self.const_ptr(inner),
            _ => self.err("pointer initializer must be a constant address", e.pos),
        }
    }

    /// Evaluates an integer constant expression.
    fn const_eval(&mut self, e: &AExpr) -> Result<i64> {
        Ok(match &e.kind {
            AK::IntLit(v) => *v,
            AK::CharLit(c) => *c as i64,
            AK::Null => 0,
            AK::Unary(UnOp::Neg, x) => self.const_eval(x)?.wrapping_neg(),
            AK::Unary(UnOp::BitNot, x) => !self.const_eval(x)?,
            AK::Unary(UnOp::Not, x) => (self.const_eval(x)? == 0) as i64,
            AK::Binary(op, l, r) => {
                let a = self.const_eval(l)?;
                let b = self.const_eval(r)?;
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return self.err("division by zero in constant", e.pos);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return self.err("division by zero in constant", e.pos);
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32),
                    BinOp::Shr => a.wrapping_shr(b as u32),
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                }
            }
            AK::SizeofTy(t) => {
                let ty = self.resolve_ty(t, e.pos)?;
                self.types.size_of(&ty) as i64
            }
            AK::Cast(t, inner) => {
                let v = self.const_eval(inner)?;
                match self.resolve_ty(t, e.pos)? {
                    Ty::Int(k) => k.wrap(v),
                    _ => v,
                }
            }
            _ => return self.err("expected a constant expression", e.pos),
        })
    }

    // ---------------------------------------------------------- functions

    fn check_functions(&mut self, unit: &ast::Unit) -> Result<()> {
        let mut seen_defs: HashMap<String, bool> = HashMap::new();
        for d in &unit.decls {
            if let Decl::Func {
                name,
                params,
                body,
                vararg,
                pos,
                ..
            } = d
            {
                let sig = self.func_sigs[name].clone();
                let defined = body.is_some();
                if defined && seen_defs.get(name).copied().unwrap_or(false) {
                    return self.err(format!("duplicate definition of function `{name}`"), *pos);
                }
                if defined {
                    seen_defs.insert(name.clone(), true);
                }
                let Some(body) = body else {
                    // Prototype: record only if no definition seen/coming.
                    if !unit.decls.iter().any(
                        |d2| matches!(d2, Decl::Func { name: n2, body: Some(_), .. } if n2 == name),
                    ) && !self.funcs.iter().any(|f| f.name == *name)
                    {
                        self.funcs.push(FuncDef {
                            name: name.clone(),
                            sig: sig.clone(),
                            locals: Vec::new(),
                            body: Vec::new(),
                            defined: false,
                        });
                    }
                    continue;
                };

                self.locals = Vec::new();
                self.scopes = vec![HashMap::new()];
                self.ret_ty = sig.ret.clone();
                self.loop_depth = 0;
                self.current_vararg = *vararg;
                for (p, ty) in params.iter().zip(&sig.params) {
                    let id = LocalId(self.locals.len() as u32);
                    self.locals.push(Local {
                        name: p.name.clone(),
                        ty: ty.clone(),
                        addr_taken: false,
                    });
                    if !p.name.is_empty() {
                        self.scopes[0].insert(p.name.clone(), id);
                    }
                }
                let hbody = self.check_block(body)?;
                self.funcs.push(FuncDef {
                    name: name.clone(),
                    sig,
                    locals: std::mem::take(&mut self.locals),
                    body: hbody,
                    defined: true,
                });
            }
        }
        Ok(())
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        for scope in self.scopes.iter().rev() {
            if let Some(&id) = scope.get(name) {
                return Some(id);
            }
        }
        None
    }

    fn check_block(&mut self, stmts: &[AStmt]) -> Result<Vec<Stmt>> {
        self.push_scope();
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.check_stmt(s)?);
        }
        self.pop_scope();
        Ok(out)
    }

    fn check_stmt(&mut self, s: &AStmt) -> Result<Stmt> {
        let pos = s.pos;
        Ok(match &s.kind {
            StmtKind::Empty => Stmt::Block(Vec::new()),
            StmtKind::Block(b) => Stmt::Block(self.check_block(b)?),
            StmtKind::Expr(e) => {
                // Struct assignment `a = b;` desugars to memcpy.
                if let AK::Assign { op: None, lhs, rhs } = &e.kind {
                    if let Some(st) = self.try_struct_assign(lhs, rhs, pos)? {
                        return Ok(st);
                    }
                }
                Stmt::Expr(self.rvalue_or_void(e)?)
            }
            StmtKind::Decl { name, ty, init } => {
                let mut rty = self.resolve_ty(ty, pos)?;
                if let Ty::Array(elem, 0) = &rty {
                    let n = match init {
                        Some(Init::List(items)) => items.len() as u64,
                        Some(Init::Expr(AExpr {
                            kind: AK::StrLit(s),
                            ..
                        })) => s.len() as u64 + 1,
                        _ => return self.err("unsized array needs an initializer", pos),
                    };
                    rty = Ty::Array(elem.clone(), n);
                }
                self.require_complete(&rty, pos)?;
                let id = LocalId(self.locals.len() as u32);
                self.locals.push(Local {
                    name: name.clone(),
                    ty: rty.clone(),
                    addr_taken: false,
                });
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), id);
                let hinit = match init {
                    None => None,
                    Some(Init::Expr(AExpr {
                        kind: AK::StrLit(bytes),
                        ..
                    })) if matches!(rty, Ty::Array(..)) => {
                        let Ty::Array(_, n) = &rty else {
                            unreachable!()
                        };
                        if bytes.len() as u64 + 1 > *n {
                            return self.err("string literal longer than array", pos);
                        }
                        let mut b = bytes.clone();
                        b.push(0);
                        Some(LocalInit::Str(b))
                    }
                    Some(Init::Expr(e)) => {
                        let v = self.rvalue(e)?;
                        let v = self.convert(v, &rty, pos)?;
                        Some(LocalInit::Scalar(v))
                    }
                    Some(Init::List(_)) => {
                        let mut items = Vec::new();
                        self.flatten_local_init(
                            &rty,
                            init.as_ref().expect("checked above"),
                            0,
                            &mut items,
                            pos,
                        )?;
                        Some(LocalInit::List(items))
                    }
                };
                Stmt::DeclInit { id, init: hinit }
            }
            StmtKind::If { cond, then, els } => {
                let c = self.cond_value(cond)?;
                let t = self.check_block(std::slice::from_ref(then))?;
                let e = match els {
                    Some(e) => self.check_block(std::slice::from_ref(e))?,
                    None => Vec::new(),
                };
                Stmt::If {
                    cond: c,
                    then: t,
                    els: e,
                }
            }
            StmtKind::While { cond, body } => {
                let c = self.cond_value(cond)?;
                self.loop_depth += 1;
                let b = self.check_block(std::slice::from_ref(body))?;
                self.loop_depth -= 1;
                Stmt::While { cond: c, body: b }
            }
            StmtKind::DoWhile { cond, body } => {
                self.loop_depth += 1;
                let b = self.check_block(std::slice::from_ref(body))?;
                self.loop_depth -= 1;
                let c = self.cond_value(cond)?;
                Stmt::DoWhile { cond: c, body: b }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                let i = match init {
                    Some(st) => vec![self.check_stmt(st)?],
                    None => Vec::new(),
                };
                let c = match cond {
                    Some(e) => Some(self.cond_value(e)?),
                    None => None,
                };
                let st = match step {
                    Some(e) => Some(self.rvalue_or_void(e)?),
                    None => None,
                };
                self.loop_depth += 1;
                let b = self.check_block(std::slice::from_ref(body))?;
                self.loop_depth -= 1;
                self.pop_scope();
                Stmt::For {
                    init: i,
                    cond: c,
                    step: st,
                    body: b,
                }
            }
            StmtKind::Return(None) => {
                if self.ret_ty != Ty::Void {
                    return self.err("non-void function must return a value", pos);
                }
                Stmt::Return(None)
            }
            StmtKind::Return(Some(e)) => {
                if self.ret_ty == Ty::Void {
                    return self.err("void function cannot return a value", pos);
                }
                let v = self.rvalue(e)?;
                let ret_ty = self.ret_ty.clone();
                let v = self.convert(v, &ret_ty, pos)?;
                Stmt::Return(Some(v))
            }
            StmtKind::Break => {
                if self.loop_depth == 0 {
                    return self.err("`break` outside a loop", pos);
                }
                Stmt::Break
            }
            StmtKind::Continue => {
                if self.loop_depth == 0 {
                    return self.err("`continue` outside a loop", pos);
                }
                Stmt::Continue
            }
        })
    }

    fn try_struct_assign(&mut self, lhs: &AExpr, rhs: &AExpr, pos: Pos) -> Result<Option<Stmt>> {
        // Probe the LHS type without committing to errors for non-struct
        // cases (those fall through to ordinary assignment checking).
        let Ok(Checked::Place(dst)) = self.check_expr(lhs) else {
            return Ok(None);
        };
        let Ty::Struct(_) = dst.ty() else {
            return Ok(None);
        };
        let Checked::Place(src) = self.check_expr(rhs)? else {
            return self.err("struct assignment requires an lvalue source", pos);
        };
        if dst.ty() != src.ty() {
            return self.err("struct assignment with mismatched types", pos);
        }
        let size = self.types.size_of(dst.ty());
        let dptr = Expr {
            ty: dst.ty().clone().ptr_to(),
            kind: ExprKind::AddrOf(Box::new(dst)),
            pos,
        };
        let sptr = Expr {
            ty: src.ty().clone().ptr_to(),
            kind: ExprKind::AddrOf(Box::new(src)),
            pos,
        };
        Ok(Some(Stmt::Expr(Expr {
            ty: Ty::void_ptr(),
            kind: ExprKind::Call {
                target: CallTarget::Builtin(Builtin::Memcpy),
                args: vec![
                    dptr,
                    sptr,
                    Expr {
                        ty: Ty::long(),
                        kind: ExprKind::Int(size as i64),
                        pos,
                    },
                ],
            },
            pos,
        })))
    }

    fn flatten_local_init(
        &mut self,
        ty: &Ty,
        init: &Init,
        off: u64,
        out: &mut Vec<(u64, Expr)>,
        pos: Pos,
    ) -> Result<()> {
        match (ty, init) {
            (Ty::Array(elem, n), Init::List(items)) => {
                if items.len() as u64 > *n {
                    return self.err("too many initializers for array", pos);
                }
                let esz = self.types.size_of(elem);
                for (i, item) in items.iter().enumerate() {
                    self.flatten_local_init(elem, item, off + i as u64 * esz, out, pos)?;
                }
                Ok(())
            }
            (Ty::Struct(id), Init::List(items)) => {
                let fields: Vec<_> = self.types.fields(*id).to_vec();
                if items.len() > fields.len() {
                    return self.err("too many initializers for struct", pos);
                }
                for (f, item) in fields.iter().zip(items) {
                    self.flatten_local_init(&f.ty, item, off + f.offset, out, pos)?;
                }
                Ok(())
            }
            (
                Ty::Array(elem, n),
                Init::Expr(AExpr {
                    kind: AK::StrLit(s),
                    pos: spos,
                }),
            ) if **elem == Ty::char() || **elem == Ty::Int(IntKind::U8) => {
                if s.len() as u64 + 1 > *n {
                    return self.err("string literal longer than array", *spos);
                }
                for (i, b) in s.iter().enumerate() {
                    out.push((
                        off + i as u64,
                        Expr {
                            ty: Ty::char(),
                            kind: ExprKind::Int(*b as i64),
                            pos: *spos,
                        },
                    ));
                }
                out.push((
                    off + s.len() as u64,
                    Expr {
                        ty: Ty::char(),
                        kind: ExprKind::Int(0),
                        pos: *spos,
                    },
                ));
                Ok(())
            }
            (_, Init::Expr(e)) => {
                let v = self.rvalue(e)?;
                let v = self.convert(v, ty, pos)?;
                out.push((off, v));
                Ok(())
            }
            _ => self.err("initializer shape does not match type", pos),
        }
    }

    // -------------------------------------------------------- expressions

    /// Checks an expression and produces an rvalue (loading lvalues,
    /// decaying arrays, converting function designators to pointers).
    fn rvalue(&mut self, e: &AExpr) -> Result<Expr> {
        let c = self.check_expr(e)?;
        self.to_rvalue(c, e.pos)
    }

    /// Like [`rvalue`], but tolerates `void`-typed calls (for statements).
    fn rvalue_or_void(&mut self, e: &AExpr) -> Result<Expr> {
        let c = self.check_expr(e)?;
        match c {
            Checked::Val(v) => Ok(v),
            other => self.to_rvalue(other, e.pos),
        }
    }

    // Not a conversion of `self` (clippy's `to_*` heuristic): it lowers a
    // checked expression, and needs the checker for diagnostics.
    #[allow(clippy::wrong_self_convention)]
    fn to_rvalue(&mut self, c: Checked, pos: Pos) -> Result<Expr> {
        match c {
            Checked::Val(v) => Ok(v),
            Checked::Func(name) => {
                let sig = self.func_sigs[&name].clone();
                Ok(Expr {
                    ty: Ty::Func(Box::new(sig)).ptr_to(),
                    kind: ExprKind::FuncAddr(name),
                    pos,
                })
            }
            Checked::Place(p) => match p.ty().clone() {
                Ty::Array(elem, n) => {
                    // Array-to-pointer decay: &p[0], typed elem*.
                    let idx0 = Expr {
                        ty: Ty::long(),
                        kind: ExprKind::Int(0),
                        pos,
                    };
                    let first = Place::Index {
                        base: Box::new(p),
                        index: Box::new(idx0),
                        elem: (*elem).clone(),
                    };
                    let _ = n;
                    Ok(Expr {
                        ty: (*elem).clone().ptr_to(),
                        kind: ExprKind::AddrOf(Box::new(first)),
                        pos,
                    })
                }
                ty => {
                    self.note_addr_taken_for_load(&p);
                    Ok(Expr {
                        ty,
                        kind: ExprKind::Load(Box::new(p)),
                        pos,
                    })
                }
            },
        }
    }

    /// Loading a *part* of an aggregate local (field/index) requires the
    /// local to live in memory, so mark it address-taken. Whole scalar
    /// locals can stay in registers.
    fn note_addr_taken_for_load(&mut self, p: &Place) {
        if let Place::Index { .. } | Place::Field { .. } = p {
            self.mark_addr_taken(p);
        }
    }

    fn mark_addr_taken(&mut self, p: &Place) {
        match p {
            Place::Var { id, .. } => self.locals[id.0 as usize].addr_taken = true,
            Place::Index { base, .. } | Place::Field { base, .. } => self.mark_addr_taken(base),
            Place::Global { .. } | Place::Deref { .. } => {}
        }
    }

    fn place(&mut self, e: &AExpr) -> Result<Place> {
        match self.check_expr(e)? {
            Checked::Place(p) => Ok(p),
            _ => self.err("expression is not an lvalue", e.pos),
        }
    }

    /// A scalar value for use in a condition.
    fn cond_value(&mut self, e: &AExpr) -> Result<Expr> {
        let v = self.rvalue(e)?;
        if !v.ty.is_scalar() {
            return self.err("condition must be a scalar", e.pos);
        }
        Ok(v)
    }

    fn check_expr(&mut self, e: &AExpr) -> Result<Checked> {
        let pos = e.pos;
        Ok(match &e.kind {
            AK::IntLit(v) => {
                // Literals that do not fit in `int` get type `long`, like C.
                let ty = if *v >= i32::MIN as i64 && *v <= i32::MAX as i64 {
                    Ty::int()
                } else {
                    Ty::long()
                };
                Checked::Val(Expr {
                    ty,
                    kind: ExprKind::Int(*v),
                    pos,
                })
            }
            AK::CharLit(c) => Checked::Val(Expr {
                ty: Ty::int(),
                kind: ExprKind::Int(*c as i64),
                pos,
            }),
            AK::StrLit(s) => {
                let id = self.intern_str(s);
                Checked::Val(Expr {
                    ty: Ty::char().ptr_to(),
                    kind: ExprKind::Str(id),
                    pos,
                })
            }
            AK::Null => Checked::Val(Expr {
                ty: Ty::void_ptr(),
                kind: ExprKind::NullPtr,
                pos,
            }),
            AK::Ident(name) => {
                if let Some(id) = self.lookup_local(name) {
                    let ty = self.locals[id.0 as usize].ty.clone();
                    Checked::Place(Place::Var { id, ty })
                } else if let Some(ty) = self.global_tys.get(name) {
                    Checked::Place(Place::Global {
                        name: name.clone(),
                        ty: ty.clone(),
                    })
                } else if self.func_sigs.contains_key(name) || Builtin::from_name(name).is_some() {
                    Checked::Func(name.clone())
                } else {
                    return self.err(format!("unknown identifier `{name}`"), pos);
                }
            }
            AK::Unary(UnOp::Deref, inner) => {
                let v = self.rvalue(inner)?;
                match v.ty.clone() {
                    Ty::Ptr(pointee) => match *pointee {
                        Ty::Func(_) => Checked::Val(v), // *fnptr == fnptr
                        Ty::Void => {
                            return self.err("cannot dereference `void*`; cast it first", pos)
                        }
                        t => Checked::Place(Place::Deref {
                            ptr: Box::new(v),
                            ty: t,
                        }),
                    },
                    _ => return self.err("cannot dereference a non-pointer", pos),
                }
            }
            AK::Unary(UnOp::AddrOf, inner) => match self.check_expr(inner)? {
                Checked::Place(p) => {
                    self.mark_addr_taken(&p);
                    let ty = p.ty().clone().ptr_to();
                    Checked::Val(Expr {
                        ty,
                        kind: ExprKind::AddrOf(Box::new(p)),
                        pos,
                    })
                }
                Checked::Func(name) => {
                    let sig = self.func_sigs[&name].clone();
                    Checked::Val(Expr {
                        ty: Ty::Func(Box::new(sig)).ptr_to(),
                        kind: ExprKind::FuncAddr(name),
                        pos,
                    })
                }
                Checked::Val(_) => return self.err("cannot take the address of an rvalue", pos),
            },
            AK::Unary(op @ (UnOp::Neg | UnOp::BitNot), inner) => {
                let v = self.rvalue(inner)?;
                let Some(k) = v.ty.int_kind() else {
                    return self.err("operand must be an integer", pos);
                };
                let k = k.promoted();
                let v = self.convert(v, &Ty::Int(k), pos)?;
                let hop = if matches!(op, UnOp::Neg) {
                    UnaryOp::Neg
                } else {
                    UnaryOp::BitNot
                };
                Checked::Val(Expr {
                    ty: Ty::Int(k),
                    kind: ExprKind::Unary(hop, Box::new(v)),
                    pos,
                })
            }
            AK::Unary(UnOp::Not, inner) => {
                let v = self.rvalue(inner)?;
                if !v.ty.is_scalar() {
                    return self.err("operand of `!` must be scalar", pos);
                }
                let kind = if v.ty.is_ptr() {
                    ExprKind::Cmp {
                        op: CmpOp::Eq,
                        signed: false,
                        lhs: Box::new(v),
                        rhs: Box::new(Expr {
                            ty: Ty::void_ptr(),
                            kind: ExprKind::NullPtr,
                            pos,
                        }),
                    }
                } else {
                    ExprKind::Unary(UnaryOp::Not, Box::new(v))
                };
                Checked::Val(Expr {
                    ty: Ty::int(),
                    kind,
                    pos,
                })
            }
            AK::IncDec { target, inc, post } => {
                let p = self.place(target)?;
                let (elem_size, ty) = match p.ty() {
                    Ty::Int(_) => (0u64, p.ty().clone()),
                    Ty::Ptr(pointee) => {
                        let sz = match &**pointee {
                            Ty::Void => 1,
                            t @ (Ty::Int(_) | Ty::Ptr(_) | Ty::Array(..) | Ty::Struct(_)) => {
                                self.types.size_of(t)
                            }
                            Ty::Func(_) => {
                                return self.err("cannot increment a function pointer", pos)
                            }
                        };
                        (sz, p.ty().clone())
                    }
                    _ => return self.err("cannot increment this type", pos),
                };
                Checked::Val(Expr {
                    ty,
                    kind: ExprKind::IncDec {
                        place: Box::new(p),
                        inc: *inc,
                        post: *post,
                        elem_size,
                    },
                    pos,
                })
            }
            AK::Binary(op, l, r) => return self.check_binary(*op, l, r, pos),
            AK::Logical { and, lhs, rhs } => {
                let l = self.cond_value(lhs)?;
                let r = self.cond_value(rhs)?;
                Checked::Val(Expr {
                    ty: Ty::int(),
                    kind: ExprKind::Logical {
                        and: *and,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                    pos,
                })
            }
            AK::Cond(c, t, f) => {
                let cv = self.cond_value(c)?;
                let tv = self.rvalue(t)?;
                let fv = self.rvalue(f)?;
                let ty = self.unify(&tv.ty, &fv.ty, pos)?;
                let tv = self.convert(tv, &ty, pos)?;
                let fv = self.convert(fv, &ty, pos)?;
                Checked::Val(Expr {
                    ty,
                    kind: ExprKind::Cond {
                        cond: Box::new(cv),
                        then: Box::new(tv),
                        els: Box::new(fv),
                    },
                    pos,
                })
            }
            AK::Assign { op: None, lhs, rhs } => {
                let p = self.place(lhs)?;
                if matches!(p.ty(), Ty::Struct(_) | Ty::Array(..)) {
                    return self.err("aggregate assignment only supported as a statement", pos);
                }
                let v = self.rvalue(rhs)?;
                let pty = p.ty().clone();
                let v = self.convert(v, &pty, pos)?;
                Checked::Val(Expr {
                    ty: pty,
                    kind: ExprKind::Assign {
                        place: Box::new(p),
                        value: Box::new(v),
                    },
                    pos,
                })
            }
            AK::Assign {
                op: Some(op),
                lhs,
                rhs,
            } => {
                // `a op= b` desugars to `a = a op b` (single evaluation of
                // `a`'s address is guaranteed by HIR Assign semantics only
                // for side-effect-free places; CIR-C programs keep compound
                // assignment targets simple, and the checker re-checks the
                // place twice which is safe for all supported place forms).
                let p = self.place(lhs)?;
                let pty = p.ty().clone();
                let cur = {
                    self.note_addr_taken_for_load(&p);
                    Expr {
                        ty: pty.clone(),
                        kind: ExprKind::Load(Box::new(p.clone())),
                        pos,
                    }
                };
                let rv = self.rvalue(rhs)?;
                let combined = self.binary_values(*op, cur, rv, pos)?;
                let combined = self.convert(combined, &pty, pos)?;
                Checked::Val(Expr {
                    ty: pty,
                    kind: ExprKind::Assign {
                        place: Box::new(p),
                        value: Box::new(combined),
                    },
                    pos,
                })
            }
            AK::Call { callee, args } => return self.check_call(callee, args, pos),
            AK::Index(base, idx) => {
                let b = self.check_expr(base)?;
                let i = self.rvalue(idx)?;
                if !i.ty.is_int() {
                    return self.err("array index must be an integer", pos);
                }
                let i = self.convert(i, &Ty::long(), pos)?;
                match b {
                    Checked::Place(p) if matches!(p.ty(), Ty::Array(..)) => {
                        let Ty::Array(elem, _) = p.ty().clone() else {
                            unreachable!()
                        };
                        Checked::Place(Place::Index {
                            base: Box::new(p),
                            index: Box::new(i),
                            elem: *elem,
                        })
                    }
                    other => {
                        let ptr = self.to_rvalue(other, pos)?;
                        let Ty::Ptr(pointee) = ptr.ty.clone() else {
                            return self.err("indexing requires an array or pointer", pos);
                        };
                        if matches!(*pointee, Ty::Void | Ty::Func(_)) {
                            return self.err("cannot index `void*` or function pointers", pos);
                        }
                        let esz = self.types.size_of(&pointee);
                        let addr = Expr {
                            ty: ptr.ty.clone(),
                            kind: ExprKind::PtrAdd {
                                ptr: Box::new(ptr),
                                index: Box::new(i),
                                elem_size: esz,
                            },
                            pos,
                        };
                        Checked::Place(Place::Deref {
                            ptr: Box::new(addr),
                            ty: *pointee,
                        })
                    }
                }
            }
            AK::Member(base, fname) => {
                let p = self.place(base)?;
                let Ty::Struct(sid) = p.ty().clone() else {
                    return self.err("`.` requires a struct", pos);
                };
                let Some(f) = self.types.field(sid, fname).cloned() else {
                    return self.err(format!("no field `{fname}`"), pos);
                };
                Checked::Place(Place::Field {
                    base: Box::new(p),
                    sid,
                    offset: f.offset,
                    ty: f.ty,
                })
            }
            AK::Arrow(base, fname) => {
                let ptr = self.rvalue(base)?;
                let Ty::Ptr(pointee) = ptr.ty.clone() else {
                    return self.err("`->` requires a struct pointer", pos);
                };
                let Ty::Struct(sid) = *pointee else {
                    return self.err("`->` requires a struct pointer", pos);
                };
                let Some(f) = self.types.field(sid, fname).cloned() else {
                    return self.err(format!("no field `{fname}`"), pos);
                };
                let base_place = Place::Deref {
                    ptr: Box::new(ptr),
                    ty: Ty::Struct(sid),
                };
                Checked::Place(Place::Field {
                    base: Box::new(base_place),
                    sid,
                    offset: f.offset,
                    ty: f.ty,
                })
            }
            AK::Cast(t, inner) => {
                let target = self.resolve_ty(t, pos)?;
                let v = self.rvalue(inner)?;
                if target == Ty::Void {
                    return Ok(Checked::Val(v));
                }
                Checked::Val(self.explicit_cast(v, &target, pos)?)
            }
            AK::SizeofTy(t) => {
                let ty = self.resolve_ty(t, pos)?;
                let sz = self.types.size_of(&ty);
                Checked::Val(Expr {
                    ty: Ty::long(),
                    kind: ExprKind::Int(sz as i64),
                    pos,
                })
            }
            AK::SizeofExpr(inner) => {
                let c = self.check_expr(inner)?;
                let ty = match &c {
                    Checked::Place(p) => p.ty().clone(),
                    Checked::Val(v) => v.ty.clone(),
                    Checked::Func(_) => return self.err("sizeof a function", pos),
                };
                let sz = self.types.size_of(&ty);
                Checked::Val(Expr {
                    ty: Ty::long(),
                    kind: ExprKind::Int(sz as i64),
                    pos,
                })
            }
        })
    }

    fn check_binary(&mut self, op: BinOp, l: &AExpr, r: &AExpr, pos: Pos) -> Result<Checked> {
        let lv = self.rvalue(l)?;
        let rv = self.rvalue(r)?;
        Ok(Checked::Val(self.binary_values(op, lv, rv, pos)?))
    }

    fn binary_values(&mut self, op: BinOp, lv: Expr, rv: Expr, pos: Pos) -> Result<Expr> {
        use BinOp::*;
        // Pointer arithmetic and comparisons.
        match (lv.ty.is_ptr(), rv.ty.is_ptr(), op) {
            (true, false, Add) | (true, false, Sub) => {
                let pointee = lv.ty.pointee().expect("checked is_ptr").clone();
                let esz = match &pointee {
                    Ty::Void => 1,
                    Ty::Func(_) => return self.err("arithmetic on function pointer", pos),
                    t => self.types.size_of(t),
                };
                let idx = self.convert(rv, &Ty::long(), pos)?;
                let idx = if op == Sub {
                    Expr {
                        ty: Ty::long(),
                        kind: ExprKind::Unary(UnaryOp::Neg, Box::new(idx)),
                        pos,
                    }
                } else {
                    idx
                };
                return Ok(Expr {
                    ty: lv.ty.clone(),
                    kind: ExprKind::PtrAdd {
                        ptr: Box::new(lv),
                        index: Box::new(idx),
                        elem_size: esz,
                    },
                    pos,
                });
            }
            (false, true, Add) => {
                return self.binary_values(Add, rv, lv, pos);
            }
            (true, true, Sub) => {
                let pointee = lv.ty.pointee().expect("checked is_ptr").clone();
                let esz = match &pointee {
                    Ty::Void => 1,
                    t => self.types.size_of(t),
                };
                return Ok(Expr {
                    ty: Ty::long(),
                    kind: ExprKind::PtrDiff {
                        lhs: Box::new(lv),
                        rhs: Box::new(rv),
                        elem_size: esz,
                    },
                    pos,
                });
            }
            (true, _, Lt | Le | Gt | Ge | Eq | Ne) | (_, true, Lt | Le | Gt | Ge | Eq | Ne) => {
                let cmp = cmp_of(op);
                let (lv, rv) = self.unify_cmp_operands(lv, rv, pos)?;
                return Ok(Expr {
                    ty: Ty::int(),
                    kind: ExprKind::Cmp {
                        op: cmp,
                        signed: false,
                        lhs: Box::new(lv),
                        rhs: Box::new(rv),
                    },
                    pos,
                });
            }
            _ => {}
        }

        let (Some(lk), Some(rk)) = (lv.ty.int_kind(), rv.ty.int_kind()) else {
            return self.err("invalid operand types for binary operator", pos);
        };

        if op.is_cmp() {
            let k = lk.usual_arith(rk);
            let lv = self.convert(lv, &Ty::Int(k), pos)?;
            let rv = self.convert(rv, &Ty::Int(k), pos)?;
            return Ok(Expr {
                ty: Ty::int(),
                kind: ExprKind::Cmp {
                    op: cmp_of(op),
                    signed: k.is_signed(),
                    lhs: Box::new(lv),
                    rhs: Box::new(rv),
                },
                pos,
            });
        }

        // Shifts use the promoted left operand's kind; everything else uses
        // the usual arithmetic conversions.
        let k = if matches!(op, Shl | Shr) {
            lk.promoted()
        } else {
            lk.usual_arith(rk)
        };
        let lv = self.convert(lv, &Ty::Int(k), pos)?;
        let rv = self.convert(rv, &Ty::Int(k), pos)?;
        let aop = match op {
            Add => ArithOp::Add,
            Sub => ArithOp::Sub,
            Mul => ArithOp::Mul,
            Div => ArithOp::Div,
            Rem => ArithOp::Rem,
            And => ArithOp::And,
            Or => ArithOp::Or,
            Xor => ArithOp::Xor,
            Shl => ArithOp::Shl,
            Shr => ArithOp::Shr,
            _ => unreachable!("comparisons handled above"),
        };
        Ok(Expr {
            ty: Ty::Int(k),
            kind: ExprKind::Binary {
                op: aop,
                k,
                lhs: Box::new(lv),
                rhs: Box::new(rv),
            },
            pos,
        })
    }

    fn unify_cmp_operands(&mut self, lv: Expr, rv: Expr, pos: Pos) -> Result<(Expr, Expr)> {
        match (lv.ty.is_ptr(), rv.ty.is_ptr()) {
            (true, true) => Ok((lv, rv)),
            (true, false) => {
                if is_zero_const(&rv) {
                    let null = Expr {
                        ty: lv.ty.clone(),
                        kind: ExprKind::NullPtr,
                        pos,
                    };
                    Ok((lv, null))
                } else {
                    self.err("comparison of pointer with non-zero integer", pos)
                }
            }
            (false, true) => {
                let (r2, l2) = self.unify_cmp_operands(rv, lv, pos)?;
                Ok((l2, r2))
            }
            _ => unreachable!("at least one pointer"),
        }
    }

    fn unify(&mut self, a: &Ty, b: &Ty, pos: Pos) -> Result<Ty> {
        if a == b {
            return Ok(a.clone());
        }
        match (a, b) {
            (Ty::Int(x), Ty::Int(y)) => Ok(Ty::Int(x.usual_arith(*y))),
            (Ty::Ptr(_), Ty::Ptr(_)) => Ok(a.clone()),
            (Ty::Ptr(_), Ty::Int(_)) | (Ty::Int(_), Ty::Ptr(_)) => {
                // Permits `cond ? p : 0`.
                if a.is_ptr() {
                    Ok(a.clone())
                } else {
                    Ok(b.clone())
                }
            }
            _ => self.err("incompatible branch types", pos),
        }
    }

    fn check_call(&mut self, callee: &AExpr, args: &[AExpr], pos: Pos) -> Result<Checked> {
        let (target, sig) = match self.check_expr(callee)? {
            Checked::Func(name) => {
                if self.func_sigs.contains_key(&name) {
                    let sig = self.func_sigs[&name].clone();
                    (CallTarget::Direct(name), sig)
                } else {
                    let b = Builtin::from_name(&name).expect("checked in Ident");
                    (CallTarget::Builtin(b), b.sig())
                }
            }
            other => {
                let v = self.to_rvalue(other, pos)?;
                let Ty::Ptr(inner) = &v.ty else {
                    return self.err("called object is not a function", pos);
                };
                let Ty::Func(sig) = &**inner else {
                    return self.err("called object is not a function", pos);
                };
                let sig = (**sig).clone();
                (CallTarget::Indirect(Box::new(v)), sig)
            }
        };
        if args.len() < sig.params.len() || (!sig.vararg && args.len() > sig.params.len()) {
            return self.err(
                format!(
                    "expected {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
                pos,
            );
        }
        let mut hargs = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let v = self.rvalue(a)?;
            let v = if i < sig.params.len() {
                self.convert(v, &sig.params[i].clone(), pos)?
            } else {
                // Variadic arguments: default promotions.
                match v.ty.clone() {
                    Ty::Int(k) if k.size() < 8 => {
                        let target = if k.is_signed() {
                            IntKind::I64
                        } else {
                            IntKind::U64
                        };
                        self.convert(v, &Ty::Int(target), pos)?
                    }
                    _ => v,
                }
            };
            hargs.push(v);
        }
        Ok(Checked::Val(Expr {
            ty: sig.ret.clone(),
            kind: ExprKind::Call {
                target,
                args: hargs,
            },
            pos,
        }))
    }

    fn explicit_cast(&mut self, v: Expr, target: &Ty, pos: Pos) -> Result<Expr> {
        if v.ty == *target {
            return Ok(v);
        }
        let kind = match (&v.ty, target) {
            (Ty::Int(_), Ty::Int(k)) => CastKind::IntToInt(*k),
            (Ty::Int(_), Ty::Ptr(_)) => {
                if is_zero_const(&v) {
                    return Ok(Expr {
                        ty: target.clone(),
                        kind: ExprKind::NullPtr,
                        pos,
                    });
                }
                CastKind::IntToPtr
            }
            (Ty::Ptr(_), Ty::Int(k)) => CastKind::PtrToInt(*k),
            (Ty::Ptr(_), Ty::Ptr(_)) => CastKind::PtrToPtr,
            _ => return self.err("unsupported cast", pos),
        };
        Ok(Expr {
            ty: target.clone(),
            kind: ExprKind::Cast {
                kind,
                arg: Box::new(v),
            },
            pos,
        })
    }

    /// Implicit conversion of `v` to `target`.
    fn convert(&mut self, v: Expr, target: &Ty, pos: Pos) -> Result<Expr> {
        if v.ty == *target {
            return Ok(v);
        }
        match (&v.ty, target) {
            (Ty::Int(_), Ty::Int(k)) => Ok(Expr {
                ty: target.clone(),
                kind: ExprKind::Cast {
                    kind: CastKind::IntToInt(*k),
                    arg: Box::new(v),
                },
                pos,
            }),
            // All pointer-to-pointer conversions are allowed implicitly;
            // SoftBound's disjoint metadata makes even wild casts safe
            // (paper §3.4/§5.2).
            (Ty::Ptr(_), Ty::Ptr(_)) => Ok(Expr {
                ty: target.clone(),
                kind: ExprKind::Cast {
                    kind: CastKind::PtrToPtr,
                    arg: Box::new(v),
                },
                pos,
            }),
            (Ty::Int(_), Ty::Ptr(_)) if is_zero_const(&v) => Ok(Expr {
                ty: target.clone(),
                kind: ExprKind::NullPtr,
                pos,
            }),
            _ => self.err(
                format!(
                    "cannot implicitly convert `{}` to `{}`",
                    self.types.display(&v.ty),
                    self.types.display(target)
                ),
                pos,
            ),
        }
    }
}

fn cmp_of(op: BinOp) -> CmpOp {
    match op {
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        BinOp::Eq => CmpOp::Eq,
        BinOp::Ne => CmpOp::Ne,
        _ => unreachable!("not a comparison"),
    }
}

fn is_zero_const(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Int(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ck(src: &str) -> Program {
        let unit = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
        check(&unit).unwrap_or_else(|e| panic!("typeck: {e}\nsource: {src}"))
    }

    fn ck_err(src: &str) -> CompileError {
        let unit = parse(src).expect("should parse");
        check(&unit).expect_err("should fail type checking")
    }

    #[test]
    fn simple_function() {
        let p = ck("int add(int a, int b) { return a + b; }");
        let f = p.func("add").expect("function exists");
        assert_eq!(f.sig.params.len(), 2);
        assert!(f.defined);
    }

    #[test]
    fn pointer_arith_scales() {
        let p = ck("int f(int* p) { return *(p + 2); }");
        let f = p.func("f").expect("exists");
        // Body: Return(Load(Deref(PtrAdd{elem_size: 4})))
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!("expected return")
        };
        let ExprKind::Load(place) = &e.kind else {
            panic!("expected load, got {:?}", e.kind)
        };
        let Place::Deref { ptr, .. } = &**place else {
            panic!("expected deref")
        };
        let ExprKind::PtrAdd { elem_size, .. } = &ptr.kind else {
            panic!("expected ptradd")
        };
        assert_eq!(*elem_size, 4);
    }

    #[test]
    fn array_decay_in_call() {
        ck(r#"
            long strlen(char* s);
            int main() { char buf[8]; buf[0] = 0; return (int)strlen(buf); }
        "#);
    }

    #[test]
    fn struct_field_resolution() {
        let p = ck(r#"
            struct point { int x; int y; };
            int get_y(struct point* p) { return p->y; }
        "#);
        let f = p.func("get_y").expect("exists");
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        let ExprKind::Load(place) = &e.kind else {
            panic!()
        };
        let Place::Field { offset, .. } = &**place else {
            panic!("expected field")
        };
        assert_eq!(*offset, 4);
    }

    #[test]
    fn sub_object_place_for_inner_array() {
        // The §2.1 motivating example: &node.str[2] must resolve to a
        // Field place (so SoftBound can shrink bounds to the field).
        let p = ck(r#"
            struct node { char str[8]; void (*func)(void); };
            char* f(struct node* n) { return &n->str[2]; }
        "#);
        let f = p.func("f").expect("exists");
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        let ExprKind::AddrOf(place) = &e.kind else {
            panic!("expected addrof")
        };
        let Place::Index { base, .. } = &**place else {
            panic!("expected index")
        };
        assert!(matches!(**base, Place::Field { .. }));
    }

    #[test]
    fn wild_casts_allowed() {
        ck(r#"
            int main() {
                long x = 7;
                char* p = (char*)&x;
                int* q = (int*)p;
                long r = (long)q;
                int** w = (int**)r;
                return (int)(w == (int**)0);
            }
        "#);
    }

    #[test]
    fn implicit_ptr_conversions() {
        ck(r#"
            void* malloc(long n);
            int main() { int* p = malloc(40); char* c = p; return c == 0; }
        "#);
    }

    #[test]
    fn null_constant() {
        ck("int main() { char* p = NULL; int* q = 0; return p == NULL && q == 0; }");
    }

    #[test]
    fn builtins_resolve() {
        ck(r#"
            int main() {
                char* p = (char*)malloc(16);
                strcpy(p, "hi");
                long n = strlen(p);
                free(p);
                return (int)n;
            }
        "#);
    }

    #[test]
    fn function_pointers() {
        let p = ck(r#"
            int inc(int x) { return x + 1; }
            int apply(int (*f)(int), int v) { return f(v); }
            int main() { return apply(inc, 41); }
        "#);
        assert!(p.func("apply").is_some());
    }

    #[test]
    fn global_initializers() {
        let p = ck(r#"
            int table[4] = {1, 2, 3, 4};
            char* msg = "hello";
            int x = 10;
            int* px = &x;
            struct pt { int x; int y; };
            struct pt origin = {3, 4};
        "#);
        let t = p.global("table").expect("exists");
        assert_eq!(t.init.len(), 4);
        let m = p.global("msg").expect("exists");
        assert!(matches!(m.init[0].1, ConstItem::Str(_)));
        let px = p.global("px").expect("exists");
        assert!(matches!(px.init[0].1, ConstItem::GlobalAddr { .. }));
        let o = p.global("origin").expect("exists");
        assert_eq!(o.init[1].0, 4);
    }

    #[test]
    fn global_function_pointer() {
        let p = ck(r#"
            void handler(void) { }
            void (*current)(void) = handler;
        "#);
        let g = p.global("current").expect("exists");
        assert!(matches!(g.init[0].1, ConstItem::FuncAddr(_)));
    }

    #[test]
    fn unsized_arrays() {
        let p = ck("int t[] = {1,2,3}; char s[] = \"abcd\";");
        assert_eq!(
            p.global("t").map(|g| g.ty.clone()),
            Some(Ty::Array(Box::new(Ty::int()), 3))
        );
        assert_eq!(
            p.global("s").map(|g| g.ty.clone()),
            Some(Ty::Array(Box::new(Ty::char()), 5))
        );
    }

    #[test]
    fn string_array_local_init() {
        ck("int main() { char buf[8] = \"hi\"; return buf[0]; }");
    }

    #[test]
    fn recursive_struct() {
        ck(r#"
            struct list { int v; struct list* next; };
            int sum(struct list* l) {
                int s = 0;
                while (l != NULL) { s += l->v; l = l->next; }
                return s;
            }
        "#);
    }

    #[test]
    fn ptr_diff_type() {
        let p = ck("long f(char* a, char* b) { return a - b; }");
        let f = p.func("f").expect("exists");
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::PtrDiff { .. }));
    }

    #[test]
    fn unsigned_arithmetic() {
        let p = ck("unsigned int h(unsigned int x) { return x / 3u + (x >> 2); }");
        assert!(p.func("h").is_some());
    }

    #[test]
    fn vararg_user_function() {
        ck(r#"
            int sum_all(int n, ...) {
                int s = 0;
                int i;
                for (i = 0; i < n; i++) s += (int)va_arg_long(i);
                return s;
            }
            int main() { return sum_all(3, 1, 2, 3); }
        "#);
    }

    #[test]
    fn err_unknown_identifier() {
        let e = ck_err("int main() { return zork; }");
        assert!(e.message().contains("unknown identifier"));
    }

    #[test]
    fn err_call_arity() {
        let e = ck_err("int f(int a) { return a; } int main() { return f(1, 2); }");
        assert!(e.message().contains("argument"));
    }

    #[test]
    fn err_deref_non_pointer() {
        let e = ck_err("int main() { int x = 1; return *x; }");
        assert!(e.message().contains("dereference"));
    }

    #[test]
    fn err_break_outside_loop() {
        let e = ck_err("int main() { break; return 0; }");
        assert!(e.message().contains("break"));
    }

    #[test]
    fn err_struct_by_value_param() {
        let e = ck_err("struct s { int v; }; int f(struct s x) { return x.v; }");
        assert!(e.message().contains("structs by value"));
    }

    #[test]
    fn err_implicit_int_to_ptr() {
        let e = ck_err("int main() { char* p = 42; return 0; }");
        assert!(e.message().contains("convert"));
    }

    #[test]
    fn err_duplicate_global() {
        let e = ck_err("int x; int x;");
        assert!(e.message().contains("duplicate"));
    }

    #[test]
    fn err_conflicting_prototypes() {
        let e = ck_err("int f(int a); char f(int a);");
        assert!(e.message().contains("conflicting"));
    }

    #[test]
    fn err_incomplete_struct_by_value() {
        let e = ck_err("struct later; int main() { struct later x; return 0; }");
        assert!(e.message().contains("before definition"));
    }

    #[test]
    fn addr_taken_marking() {
        let p = ck("int main() { int x = 1; int* p = &x; int y = 2; return *p + y; }");
        let f = p.func("main").expect("exists");
        let x = f.locals.iter().find(|l| l.name == "x").expect("x exists");
        let y = f.locals.iter().find(|l| l.name == "y").expect("y exists");
        assert!(x.addr_taken);
        assert!(!y.addr_taken);
    }

    #[test]
    fn setjmp_longjmp_types() {
        ck(r#"
            long jb[8];
            int main() {
                if (setjmp(jb) == 0) { longjmp(jb, 1); }
                return 0;
            }
        "#);
    }

    #[test]
    fn setbound_builtin() {
        ck(r#"
            int main() {
                long raw = 4096;
                char* p = (char*)setbound((void*)raw, 64);
                return p != NULL;
            }
        "#);
    }

    #[test]
    fn struct_assignment_desugars_to_memcpy() {
        let p = ck(r#"
            struct s { int a; int b; };
            int main() { struct s x; struct s y; x.a = 1; x.b = 2; y = x; return y.a; }
        "#);
        let f = p.func("main").expect("exists");
        let has_memcpy = f.body.iter().any(|st| {
            matches!(
                st,
                Stmt::Expr(Expr {
                    kind: ExprKind::Call {
                        target: CallTarget::Builtin(Builtin::Memcpy),
                        ..
                    },
                    ..
                })
            )
        });
        assert!(has_memcpy);
    }

    #[test]
    fn cond_expr_with_pointers() {
        ck("char* pick(int c, char* a, char* b) { return c ? a : b; }");
    }

    #[test]
    fn multidim_arrays() {
        ck(r#"
            int grid[4][8];
            int main() {
                int i; int j;
                for (i = 0; i < 4; i++)
                    for (j = 0; j < 8; j++)
                        grid[i][j] = i * 8 + j;
                return grid[3][7];
            }
        "#);
    }

    #[test]
    fn unions_overlay() {
        ck(r#"
            union conv { long l; char bytes[8]; };
            int main() {
                union conv c;
                c.l = 0x41;
                return c.bytes[0];
            }
        "#);
    }
}
