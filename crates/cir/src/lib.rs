//! # sb-cir — C-subset frontend for the SoftBound reproduction
//!
//! This crate implements "CIR-C": a pragmatic subset of C rich enough to
//! express every program the SoftBound paper evaluates — pointer-chasing
//! Olden-style kernels, array-heavy SPEC-style kernels, the Wilander &
//! Kamkar attack suite, BugBench-style buggy programs, and small network
//! daemons. It provides:
//!
//! * a [lexer](mod@lexer) and [recursive-descent parser](parser) producing an
//!   untyped [AST](ast);
//! * a [type system](types) with an LP64 layout engine (parameterizable
//!   pointer layout so the fat-pointer baseline can reuse the frontend);
//! * a [type checker](typeck) producing a fully typed, desugared
//!   [HIR](hir) consumed by `sb-ir`'s lowering.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), sb_cir::CompileError> {
//! let program = sb_cir::compile(r#"
//!     int sum(int* xs, int n) {
//!         int s = 0;
//!         for (int i = 0; i < n; i++) s += xs[i];
//!         return s;
//!     }
//! "#)?;
//! assert!(program.func("sum").is_some());
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod typeck;
pub mod types;

pub use error::{CompileError, Pos};
pub use parser::parse;
pub use typeck::{check, check_with_layout};
pub use types::{IntKind, PtrLayout, Ty, TypeTable};

/// Parses and type-checks a CIR-C source string in one call.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), sb_cir::CompileError> {
/// let p = sb_cir::compile("int main() { return 0; }")?;
/// assert_eq!(p.funcs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn compile(src: &str) -> Result<hir::Program, CompileError> {
    let unit = parse(src)?;
    check(&unit)
}

/// Like [`compile`], but with an explicit pointer layout (used by the
/// fat-pointer baseline to demonstrate the paper's §2.2 layout
/// incompatibility).
///
/// # Errors
///
/// Returns the first lexical, syntactic or type error.
pub fn compile_with_layout(src: &str, layout: PtrLayout) -> Result<hir::Program, CompileError> {
    let unit = parse(src)?;
    check_with_layout(&unit, layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let p = compile(
            r#"
            struct node { int v; struct node* next; };
            struct node* cons(int v, struct node* rest) {
                struct node* n = (struct node*)malloc(sizeof(struct node));
                n->v = v;
                n->next = rest;
                return n;
            }
            int main() {
                struct node* l = cons(1, cons(2, NULL));
                return l->v + l->next->v;
            }
        "#,
        )
        .expect("compiles");
        assert_eq!(p.funcs.iter().filter(|f| f.defined).count(), 2);
    }

    #[test]
    fn layout_affects_sizeof() {
        let src = "struct s { char* p; }; long size_probe() { return sizeof(struct s); }";
        let thin = compile(src).expect("thin compiles");
        let fat = compile_with_layout(src, PtrLayout::Fat).expect("fat compiles");
        let sid_thin = thin.types.lookup("s").expect("s exists");
        let sid_fat = fat.types.lookup("s").expect("s exists");
        assert_eq!(thin.types.def(sid_thin).size, 8);
        assert_eq!(fat.types.def(sid_fat).size, 24);
    }
}
