//! Untyped abstract syntax tree produced by the parser.
//!
//! Types in the AST are *syntactic* ([`TypeExpr`]); they are resolved against
//! the struct registry during type checking.

use crate::error::Pos;

/// A syntactic type as written in the source.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `void`
    Void,
    /// `char` / `unsigned char`
    Char { unsigned: bool },
    /// `short` / `unsigned short`
    Short { unsigned: bool },
    /// `int` / `unsigned int`
    Int { unsigned: bool },
    /// `long` / `unsigned long`
    Long { unsigned: bool },
    /// `struct TAG` or `union TAG`
    Named { tag: String, is_union: bool },
    /// `T*`
    Ptr(Box<TypeExpr>),
    /// `T[N]` (size must be a constant expression)
    Array(Box<TypeExpr>, Box<Expr>),
    /// Function type: used for function-pointer declarators
    /// `ret (*name)(params)`.
    Func {
        ret: Box<TypeExpr>,
        params: Vec<TypeExpr>,
        vararg: bool,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
}

/// Binary operators (excluding assignment and short-circuit forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression node.
    pub kind: ExprKind,
    /// Source position for diagnostics.
    pub pos: Pos,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Character literal (type `char`).
    CharLit(u8),
    /// String literal (type `char*`, points at static storage).
    StrLit(Vec<u8>),
    /// `NULL` (type `void*`, value 0).
    Null,
    /// Variable or function reference.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `e++` / `e--` / `++e` / `--e`; `post` selects the returned value.
    IncDec {
        target: Box<Expr>,
        inc: bool,
        post: bool,
    },
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&` / `||`.
    Logical {
        and: bool,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `cond ? then : else`
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment; `op` is `None` for `=`, or the compound operator.
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Function call; the callee is an arbitrary expression (identifier or
    /// function pointer value).
    Call { callee: Box<Expr>, args: Vec<Expr> },
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base.field`
    Member(Box<Expr>, String),
    /// `base->field`
    Arrow(Box<Expr>, String),
    /// `(T)e`
    Cast(TypeExpr, Box<Expr>),
    /// `sizeof(T)`
    SizeofTy(TypeExpr),
    /// `sizeof e`
    SizeofExpr(Box<Expr>),
}

/// Initializers for declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// Scalar initializer expression.
    Expr(Expr),
    /// Brace-enclosed list (arrays and structs), possibly nested.
    List(Vec<Init>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Statement node.
    pub kind: StmtKind,
    /// Source position.
    pub pos: Pos,
}

/// Statement node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Local declaration.
    Decl {
        name: String,
        ty: TypeExpr,
        init: Option<Init>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else els`
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While { cond: Expr, body: Box<Stmt> },
    /// `do body while (cond);`
    DoWhile { cond: Expr, body: Box<Stmt> },
    /// `for (init; cond; step) body` (each part optional)
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Empty statement `;`
    Empty,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (may be empty in prototypes).
    pub name: String,
    /// Syntactic type.
    pub ty: TypeExpr,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// Struct or union definition.
    Struct {
        tag: String,
        is_union: bool,
        fields: Vec<(String, TypeExpr)>,
        pos: Pos,
    },
    /// Global variable.
    Global {
        name: String,
        ty: TypeExpr,
        init: Option<Init>,
        pos: Pos,
    },
    /// Function definition (with body) or prototype (body `None`).
    Func {
        name: String,
        ret: TypeExpr,
        params: Vec<Param>,
        vararg: bool,
        body: Option<Vec<Stmt>>,
        pos: Pos,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_is_cmp() {
        assert!(BinOp::Lt.is_cmp());
        assert!(BinOp::Ne.is_cmp());
        assert!(!BinOp::Add.is_cmp());
        assert!(!BinOp::Shl.is_cmp());
    }
}
