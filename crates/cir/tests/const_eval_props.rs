//! Property tests for the frontend: integer-kind semantics and the
//! constant-expression evaluator against native Rust arithmetic.

use proptest::prelude::*;
use sb_cir::IntKind;

fn kinds() -> impl Strategy<Value = IntKind> {
    prop::sample::select(vec![
        IntKind::I8,
        IntKind::U8,
        IntKind::I16,
        IntKind::U16,
        IntKind::I32,
        IntKind::U32,
        IntKind::I64,
        IntKind::U64,
    ])
}

proptest! {
    /// `wrap` is idempotent and lands in the kind's value range.
    #[test]
    fn wrap_idempotent_and_in_range(k in kinds(), v in any::<i64>()) {
        let w = k.wrap(v);
        prop_assert_eq!(k.wrap(w), w, "wrap must be idempotent");
        match k {
            IntKind::I8 => prop_assert!((i8::MIN as i64..=i8::MAX as i64).contains(&w)),
            IntKind::U8 => prop_assert!((0..=u8::MAX as i64).contains(&w)),
            IntKind::I16 => prop_assert!((i16::MIN as i64..=i16::MAX as i64).contains(&w)),
            IntKind::U16 => prop_assert!((0..=u16::MAX as i64).contains(&w)),
            IntKind::I32 => prop_assert!((i32::MIN as i64..=i32::MAX as i64).contains(&w)),
            IntKind::U32 => prop_assert!((0..=u32::MAX as i64).contains(&w)),
            _ => {}
        }
    }

    /// Usual arithmetic conversions are commutative and at least as wide
    /// as both operands (after promotion).
    #[test]
    fn usual_arith_commutative_and_widening(a in kinds(), b in kinds()) {
        let ab = a.usual_arith(b);
        let ba = b.usual_arith(a);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab.size() >= a.promoted().size().min(b.promoted().size()));
        prop_assert!(ab.size() >= 4, "promotion yields at least int");
    }

    /// The constant evaluator agrees with wrapped native arithmetic for
    /// random binary expressions over int literals.
    #[test]
    fn const_eval_matches_native(a in -2000i64..2000, b in -2000i64..2000, op in 0u8..8) {
        let (sym, native): (&str, Option<i64>) = match op {
            0 => ("+", Some(a.wrapping_add(b))),
            1 => ("-", Some(a.wrapping_sub(b))),
            2 => ("*", Some(a.wrapping_mul(b))),
            3 => ("/", (b != 0).then(|| a.wrapping_div(b))),
            4 => ("%", (b != 0).then(|| a.wrapping_rem(b))),
            5 => ("&", Some(a & b)),
            6 => ("|", Some(a | b)),
            _ => ("^", Some(a ^ b)),
        };
        let Some(expected) = native else { return Ok(()); };
        // Array sizes must be positive: bias via an outer max trick by
        // embedding the expression in a global initializer instead.
        let src = format!("long result = ({a}l) {sym} ({b}l);");
        let prog = sb_cir::compile(&src).expect("compiles");
        let g = prog.global("result").expect("exists");
        let sb_cir::hir::ConstItem::Int { value, .. } = g.init[0].1 else {
            panic!("expected int initializer");
        };
        prop_assert_eq!(value, expected, "{}", src);
    }

    /// Lexer → parser → typecheck never panics on arbitrary ASCII input
    /// (errors are fine; crashes are not).
    #[test]
    fn frontend_total_on_garbage(s in "[ -~\n\t]{0,200}") {
        let _ = sb_cir::compile(&s);
    }
}
