//! The unified error type of the SoftBound pipeline.
//!
//! Before the session API, failures escaped the pipeline three ways:
//! frontend problems as [`sb_cir::CompileError`], verifier failures as a
//! panic (`sb_ir::verify(...).expect(...)`), and everything downstream as
//! ad-hoc `expect`s at the call sites. [`SoftBoundError`] folds the
//! fallible stages into one `Result` surface so embedders — servers
//! keeping an [`Engine`](crate::Engine) alive across requests — can
//! route every failure through ordinary error handling.

use std::error::Error;
use std::fmt;

/// Any failure of the SoftBound compile pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoftBoundError {
    /// The CIR-C frontend rejected the source (lexing, parsing, type
    /// checking).
    Compile(sb_cir::CompileError),
    /// The instrumented module failed structural verification. This
    /// indicates a bug in a transformation pass, not in the user's
    /// source — but a server must be able to log it and keep serving
    /// rather than abort the process, so it is an error, not a panic.
    Verify(sb_ir::VerifyError),
}

impl fmt::Display for SoftBoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoftBoundError::Compile(e) => write!(f, "compile error: {e}"),
            SoftBoundError::Verify(e) => write!(f, "instrumented module failed to verify: {e}"),
        }
    }
}

impl Error for SoftBoundError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SoftBoundError::Compile(e) => Some(e),
            SoftBoundError::Verify(e) => Some(e),
        }
    }
}

impl From<sb_cir::CompileError> for SoftBoundError {
    fn from(e: sb_cir::CompileError) -> Self {
        SoftBoundError::Compile(e)
    }
}

impl From<sb_ir::VerifyError> for SoftBoundError {
    fn from(e: sb_ir::VerifyError) -> Self {
        SoftBoundError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_errors_carry_position_and_message() {
        let e = sb_cir::compile("int main() { return $; }").expect_err("bad source");
        let wrapped = SoftBoundError::from(e.clone());
        assert_eq!(wrapped, SoftBoundError::Compile(e));
        let msg = wrapped.to_string();
        assert!(msg.starts_with("compile error: "), "{msg}");
        assert!(
            std::error::Error::source(&wrapped).is_some(),
            "source chain preserved"
        );
    }

    #[test]
    fn verify_errors_carry_the_verifier_message() {
        let e = sb_ir::VerifyError {
            func: "main".into(),
            msg: "branch target out of range".into(),
        };
        let wrapped: SoftBoundError = e.into();
        let msg = wrapped.to_string();
        assert!(msg.contains("failed to verify"), "{msg}");
        assert!(msg.contains("main"), "{msg}");
        assert!(msg.contains("branch target out of range"), "{msg}");
    }
}
