//! # softbound — the paper's primary contribution
//!
//! A reproduction of *SoftBound: Highly Compatible and Complete Spatial
//! Memory Safety for C* (Nagarakatte, Zhao, Martin, Zdancewic; PLDI 2009).
//!
//! SoftBound associates `(base, bound)` metadata with every pointer, kept
//! in a **disjoint metadata space** keyed by the *location* of each
//! pointer in memory. Because the metadata is disjoint, program stores —
//! even through wildly cast pointers — cannot corrupt it, which yields
//! complete spatial safety with **no source changes and no memory-layout
//! changes**. This crate provides:
//!
//! * the session-oriented [`Engine`] → [`Program`] → [`Instance`] API
//!   (module [`engine`]): compile once, instantiate a persistent
//!   monomorphized machine, and serve back-to-back runs that reuse the
//!   shadow reservation instead of re-mapping it;
//! * [`instrument`] — the compile-time [transformation](transform) over
//!   `sb-ir` modules (checks, metadata propagation, `_sb_` function
//!   renaming, bound shrinking, wrappers, lifecycle clearing);
//! * the [metadata facilities](metadata) of §5.1 (open-hash table and
//!   tag-less shadow space, with whole-page reclamation) with the
//!   paper's instruction costs;
//! * the [runtime](mod@runtime) that plugs into the `sb-vm` machine;
//! * a unified [`SoftBoundError`] covering every fallible pipeline
//!   stage, including verifier failures that used to panic.
//!
//! # Examples
//!
//! Catching the paper's §2.1 motivating sub-object overflow, then
//! serving a second request on the same instance:
//!
//! ```
//! use softbound::Engine;
//!
//! let src = r#"
//!     struct node { char str[8]; void (*func)(void); };
//!     void noop(void) { }
//!     int main() {
//!         struct node n;
//!         n.func = noop;
//!         char* ptr = n.str;
//!         strcpy(ptr, "overflow...");  // silently clobbers n.func in plain C
//!         return 0;
//!     }
//! "#;
//! let engine = Engine::new();
//! let program = engine.compile(src)?;
//! let mut instance = engine.instantiate(&program);
//!
//! let result = instance.run("main", &[]);
//! assert!(result.outcome.is_spatial_violation());
//!
//! // The instance resets itself between runs: the verdict (and every
//! // observable) is identical on the next request, and an explicit
//! // reset leaves zero metadata behind.
//! let again = instance.run("main", &[]);
//! assert!(again.outcome.is_spatial_violation());
//! instance.reset();
//! assert_eq!(instance.live_entries(), 0);
//! # Ok::<(), softbound::SoftBoundError>(())
//! ```
//!
//! The free functions [`protect`] and [`run_instrumented`] from the
//! pre-session API remain as thin shims over an ad-hoc [`Engine`] for
//! one-shot callers; new code should hold an engine (and an instance,
//! when serving more than one run) instead.

pub mod config;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod metadata;
pub mod policy;
pub mod runtime;
pub mod transform;

pub use config::{CheckMode, Facility, Lane, SoftBoundConfig};
pub use engine::{Engine, Instance, Program};
pub use error::SoftBoundError;
pub use metadata::{
    AccessSink, HashTableFacility, Meta, MetadataFacility, NoopSink, ScratchSink,
    ShadowHashMapFacility, ShadowPages, SharedShadowPages, SharedShadowReservation,
};
pub use policy::{EvidenceRecord, EvidenceRing, PolicyAction, ViolationPolicy};
pub use runtime::{DynRuntime, SoftBoundRuntime};
pub use transform::{instrument, instrument_flavored, Flavor, GLOBALS_INIT_PREFIX, SB_PREFIX};

use sb_ir::Module;
use sb_vm::{MachineConfig, RunResult};

/// Builds the type-erased runtime described by `cfg` — the wrapper for
/// call sites that pick the facility at run time (CLI/report boundary).
/// Hot paths should dispatch statically instead: construct a concrete
/// `SoftBoundRuntime<F>` (or an [`Instance`] via [`Engine`], which does)
/// so the check path monomorphizes.
pub fn runtime_for(cfg: &SoftBoundConfig) -> DynRuntime {
    DynRuntime::new(cfg)
}

/// Compiles CIR-C source through the full paper pipeline (§6.1): lower,
/// optimize, instrument, re-run the optimizer, verify.
///
/// Deprecated shim: prefer [`Engine::compile`], which returns a
/// [`Program`] carrying the pass statistics alongside the module.
///
/// # Errors
///
/// Any [`SoftBoundError`] from the pipeline.
pub fn compile_protected(src: &str, cfg: &SoftBoundConfig) -> Result<Module, SoftBoundError> {
    compile_protected_with_stats(src, cfg).map(|(m, _)| m)
}

/// Like [`compile_protected`], additionally reporting the post-instrument
/// optimizer's statistics (instructions removed, redundant checks
/// eliminated) for the experiment harness.
///
/// Deprecated shim: prefer [`Engine::compile`]. Verifier failures are
/// reported as [`SoftBoundError::Verify`] (they used to panic here).
///
/// # Errors
///
/// Any [`SoftBoundError`] from the pipeline.
pub fn compile_protected_with_stats(
    src: &str,
    cfg: &SoftBoundConfig,
) -> Result<(Module, sb_ir::PassStats), SoftBoundError> {
    let program = Engine::new().softbound_config(cfg.clone()).compile(src)?;
    let stats = program.stats();
    Ok((program.into_parts().0, stats))
}

/// Compiles and runs a program under SoftBound protection.
///
/// Deprecated shim: prefer [`Engine::run_once`] — or keep an
/// [`Instance`] alive when more than one run is coming.
///
/// # Errors
///
/// Any [`SoftBoundError`] from the pipeline.
pub fn protect(
    src: &str,
    cfg: &SoftBoundConfig,
    entry: &str,
    args: &[i64],
) -> Result<RunResult, SoftBoundError> {
    Engine::new()
        .softbound_config(cfg.clone())
        .run_once(src, entry, args)
}

/// Runs an already instrumented module under the matching runtime,
/// dispatching statically on the configured facility (the `Box<dyn>`
/// wrappers never enter the check path here).
///
/// Deprecated shim: prefer [`Engine::instantiate_module`] and reuse the
/// returned [`Instance`] across runs.
pub fn run_instrumented(
    module: &Module,
    cfg: &SoftBoundConfig,
    machine_cfg: MachineConfig,
    entry: &str,
    args: &[i64],
) -> RunResult {
    Engine::new()
        .softbound_config(cfg.clone())
        .machine_config(machine_cfg)
        .instantiate_module(module)
        .run(entry, args)
}
