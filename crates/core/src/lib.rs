//! # softbound — the paper's primary contribution
//!
//! A reproduction of *SoftBound: Highly Compatible and Complete Spatial
//! Memory Safety for C* (Nagarakatte, Zhao, Martin, Zdancewic; PLDI 2009).
//!
//! SoftBound associates `(base, bound)` metadata with every pointer, kept
//! in a **disjoint metadata space** keyed by the *location* of each
//! pointer in memory. Because the metadata is disjoint, program stores —
//! even through wildly cast pointers — cannot corrupt it, which yields
//! complete spatial safety with **no source changes and no memory-layout
//! changes**. This crate provides:
//!
//! * [`instrument`] — the compile-time [transformation](transform) over
//!   `sb-ir` modules (checks, metadata propagation, `_sb_` function
//!   renaming, bound shrinking, wrappers, lifecycle clearing);
//! * the two [metadata facilities](metadata) of §5.1 (open-hash table and
//!   tag-less shadow space) with the paper's instruction costs;
//! * the [runtime](runtime) that plugs into the `sb-vm` machine;
//! * a one-call [pipeline](fn@protect) for compile → lower → optimize →
//!   instrument → re-optimize → run.
//!
//! # Examples
//!
//! Catching the paper's §2.1 motivating sub-object overflow:
//!
//! ```
//! use softbound::{protect, SoftBoundConfig};
//! use sb_vm::Outcome;
//!
//! let src = r#"
//!     struct node { char str[8]; void (*func)(void); };
//!     void noop(void) { }
//!     int main() {
//!         struct node n;
//!         n.func = noop;
//!         char* ptr = n.str;
//!         strcpy(ptr, "overflow...");  // silently clobbers n.func in plain C
//!         return 0;
//!     }
//! "#;
//! let result = protect(src, &SoftBoundConfig::default(), "main", &[]).unwrap();
//! assert!(result.outcome.is_spatial_violation());
//! ```

pub mod config;
pub mod metadata;
pub mod runtime;
pub mod transform;

pub use config::{CheckMode, Facility, SoftBoundConfig};
pub use metadata::{
    AccessSink, HashTableFacility, Meta, MetadataFacility, NoopSink, ScratchSink,
    ShadowHashMapFacility, ShadowPages,
};
pub use runtime::{DynRuntime, SoftBoundRuntime};
pub use transform::{instrument, instrument_flavored, Flavor, GLOBALS_INIT_PREFIX, SB_PREFIX};

use sb_ir::Module;
use sb_vm::{Machine, MachineConfig, RunResult};

/// Builds the type-erased runtime described by `cfg` — the wrapper for
/// call sites that pick the facility at run time (CLI/report boundary).
/// Hot paths should dispatch statically instead: construct a concrete
/// `SoftBoundRuntime<F>` (or call [`run_instrumented`], which does) so
/// the check path monomorphizes.
pub fn runtime_for(cfg: &SoftBoundConfig) -> DynRuntime {
    DynRuntime::new(cfg)
}

/// Runs `module` on a machine monomorphized over `rt`'s facility: the
/// statically-dispatched execution path every harness funnels into.
pub fn run_static<F: metadata::MetadataFacility>(
    module: &Module,
    rt: SoftBoundRuntime<F>,
    machine_cfg: MachineConfig,
    entry: &str,
    args: &[i64],
) -> RunResult {
    let mut machine = Machine::new(module, machine_cfg, rt);
    machine.run(entry, args)
}

/// Compiles CIR-C source through the full paper pipeline (§6.1): lower,
/// optimize, instrument, re-run the optimizer, verify.
///
/// # Errors
///
/// Returns frontend errors as boxed errors; verifier failures panic (they
/// indicate a pass bug, not a user error).
pub fn compile_protected(src: &str, cfg: &SoftBoundConfig) -> Result<Module, sb_cir::CompileError> {
    compile_protected_with_stats(src, cfg).map(|(m, _)| m)
}

/// Like [`compile_protected`], additionally reporting the post-instrument
/// optimizer's statistics (instructions removed, redundant checks
/// eliminated) for the experiment harness.
///
/// # Errors
///
/// Returns frontend compile errors.
pub fn compile_protected_with_stats(
    src: &str,
    cfg: &SoftBoundConfig,
) -> Result<(Module, sb_ir::PassStats), sb_cir::CompileError> {
    let prog = sb_cir::compile(src)?;
    let mut module = sb_ir::lower(&prog, "program");
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
    let mut module = instrument(&module, cfg);
    let stats = sb_ir::optimize_with_stats(&mut module, sb_ir::OptLevel::PostInstrument);
    sb_ir::verify(&module).expect("instrumented module must verify");
    Ok((module, stats))
}

/// Compiles and runs a program under SoftBound protection.
///
/// # Errors
///
/// Returns frontend compile errors.
pub fn protect(
    src: &str,
    cfg: &SoftBoundConfig,
    entry: &str,
    args: &[i64],
) -> Result<RunResult, sb_cir::CompileError> {
    let module = compile_protected(src, cfg)?;
    Ok(run_instrumented(
        &module,
        cfg,
        MachineConfig::default(),
        entry,
        args,
    ))
}

/// Runs an already instrumented module under the matching runtime,
/// dispatching statically on the configured facility (the `Box<dyn>`
/// wrappers never enter the check path here).
pub fn run_instrumented(
    module: &Module,
    cfg: &SoftBoundConfig,
    machine_cfg: MachineConfig,
    entry: &str,
    args: &[i64],
) -> RunResult {
    match cfg.facility {
        Facility::ShadowPaged => run_static(
            module,
            SoftBoundRuntime::new_paged(cfg),
            machine_cfg,
            entry,
            args,
        ),
        Facility::ShadowHashMap => run_static(
            module,
            SoftBoundRuntime::new_shadow_hashmap(cfg),
            machine_cfg,
            entry,
            args,
        ),
        Facility::HashTable => run_static(
            module,
            SoftBoundRuntime::new_hash(cfg),
            machine_cfg,
            entry,
            args,
        ),
    }
}
