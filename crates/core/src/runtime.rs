//! The SoftBound runtime: dereference checks, metadata propagation
//! helpers, and the §5.2 lifecycle behaviours (metadata clearing on free
//! and frame exit), implemented over a pluggable [`MetadataFacility`] and
//! exposed to the VM as [`RuntimeHooks`].
//!
//! The runtime is *generic* over its facility, so a machine built with a
//! concrete instantiation (`SoftBoundRuntime<ShadowPages>`) statically
//! dispatches — and typically inlines — every metadata access. The
//! [`DynRuntime`] alias (`SoftBoundRuntime<Box<dyn MetadataFacility>>`)
//! is the type-erased wrapper for the CLI/report boundary where the
//! facility is chosen at run time.

use crate::config::{Facility, SoftBoundConfig};
use crate::metadata::{
    HashTableFacility, Meta, MetadataFacility, ShadowHashMapFacility, ShadowPages,
};
use sb_ir::RtFn;
use sb_vm::{AccessSink, Mem, RtCtx, RtVals, RuntimeHooks, Trap};

/// Cost of the bounds check itself (two compares + branch, §3.1).
pub const CHECK_COST: u64 = 3;

/// The SoftBound runtime, specialized on its metadata facility `F`.
pub struct SoftBoundRuntime<F: MetadataFacility = Box<dyn MetadataFacility>> {
    facility: F,
    clear_on_free: bool,
    /// Checks executed.
    pub check_count: u64,
    /// Violations would-have-fired (always 0 on safe programs).
    pub violation_count: u64,
}

/// The type-erased runtime: facility chosen at run time, every metadata
/// access through a vtable. Kept for the CLI/report boundary; hot paths
/// use a concrete `SoftBoundRuntime<F>` instead.
pub type DynRuntime = SoftBoundRuntime<Box<dyn MetadataFacility>>;

impl DynRuntime {
    /// Builds the type-erased runtime described by a config, boxing the
    /// facility the config names.
    pub fn new(cfg: &SoftBoundConfig) -> Self {
        let facility: Box<dyn MetadataFacility> = match cfg.facility {
            Facility::ShadowPaged => Box::new(ShadowPages::new()),
            Facility::ShadowHashMap => Box::new(ShadowHashMapFacility::new()),
            Facility::HashTable => Box::new(HashTableFacility::new(cfg.hash_log2_buckets)),
        };
        SoftBoundRuntime::with_facility(facility, cfg)
    }
}

impl SoftBoundRuntime<ShadowPages> {
    /// Statically-dispatched runtime over the paged shadow space (the
    /// default production facility).
    pub fn new_paged(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(ShadowPages::new(), cfg)
    }
}

impl SoftBoundRuntime<ShadowHashMapFacility> {
    /// Statically-dispatched runtime over the HashMap shadow oracle.
    pub fn new_shadow_hashmap(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(ShadowHashMapFacility::new(), cfg)
    }
}

impl SoftBoundRuntime<HashTableFacility> {
    /// Statically-dispatched runtime over the open-hashing table.
    pub fn new_hash(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(HashTableFacility::new(cfg.hash_log2_buckets), cfg)
    }
}

impl<F: MetadataFacility> SoftBoundRuntime<F> {
    /// Builds the runtime around an explicit facility instance.
    pub fn with_facility(facility: F, cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime {
            facility,
            clear_on_free: cfg.clear_on_free,
            check_count: 0,
            violation_count: 0,
        }
    }

    /// The installed facility (for facility-specific statistics).
    pub fn facility(&self) -> &F {
        &self.facility
    }

    /// Live metadata entries (memory-overhead statistics).
    pub fn live_entries(&self) -> usize {
        self.facility.live_entries()
    }

    /// Standing host-memory reservation of the facility (what a fleet
    /// pays per worker between requests).
    pub fn reservation_bytes(&self) -> usize {
        self.facility.reservation_bytes()
    }

    #[inline]
    fn check(
        &mut self,
        ptr: u64,
        base: u64,
        bound: u64,
        size: u64,
        write: bool,
    ) -> Result<(), Trap> {
        self.check_count += 1;
        // `ptr + size` must not wrap: a huge pointer or size whose sum
        // wraps past zero would otherwise compare below `bound` and pass.
        let end_in_bounds = ptr.checked_add(size).is_some_and(|end| end <= bound);
        if ptr < base || !end_in_bounds || base == 0 {
            self.violation_count += 1;
            Err(Trap::SpatialViolation {
                scheme: "softbound",
                addr: ptr,
                write,
            })
        } else {
            Ok(())
        }
    }
}

impl<F: MetadataFacility> RuntimeHooks for SoftBoundRuntime<F> {
    fn name(&self) -> &'static str {
        "softbound"
    }

    #[inline]
    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::SbCheck { is_store } => {
                ctx.add_cost(CHECK_COST);
                self.check(
                    args[0] as u64,
                    args[1] as u64,
                    args[2] as u64,
                    args[3] as u64,
                    is_store,
                )?;
                Ok([0, 0])
            }
            RtFn::SbMetaLoad => {
                let m = self.facility.load(args[0] as u64, ctx);
                Ok([m.base as i64, m.bound as i64])
            }
            RtFn::SbMetaStore => {
                let m = Meta {
                    base: args[1] as u64,
                    bound: args[2] as u64,
                };
                self.facility.store(args[0] as u64, m, ctx);
                Ok([0, 0])
            }
            RtFn::SbFnCheck => {
                ctx.add_cost(CHECK_COST);
                self.check_count += 1;
                let (ptr, base, bound) = (args[0] as u64, args[1] as u64, args[2] as u64);
                // Function pointers are encoded base == bound == ptr (§5.2):
                // a zero-sized "object" no data pointer can carry.
                if ptr != 0 && base == ptr && bound == ptr {
                    Ok([0, 0])
                } else {
                    self.violation_count += 1;
                    Err(Trap::SpatialViolation {
                        scheme: "softbound",
                        addr: ptr,
                        write: false,
                    })
                }
            }
            RtFn::SbMetaClear => {
                self.facility
                    .clear_range(args[0] as u64, args[1] as u64, ctx);
                Ok([0, 0])
            }
            RtFn::SbMemcpyMeta => {
                self.facility
                    .copy_range(args[0] as u64, args[1] as u64, args[2] as u64, ctx);
                Ok([0, 0])
            }
            RtFn::SbVaCheck => {
                ctx.add_cost(2);
                let idx = args[0];
                if idx < 0 || idx as u64 >= ctx.vararg_count {
                    Err(Trap::SpatialViolation {
                        scheme: "softbound",
                        addr: idx as u64,
                        write: false,
                    })
                } else {
                    Ok([0, 0])
                }
            }
            other => panic!("softbound runtime received foreign rt call {other:?}"),
        }
    }

    fn on_free(&mut self, addr: u64, size: u64, ptr_hint: bool, ctx: &mut RtCtx) {
        // §5.2 "memory reuse and stale metadata": clear metadata for freed
        // blocks whose static type suggests they held pointers.
        if self.clear_on_free && ptr_hint {
            self.facility.clear_range(addr, size, ctx);
        }
    }

    /// Clears all metadata and counters while keeping the facility's
    /// expensive allocations (shadow directory, hash buckets) alive —
    /// what lets an [`Instance`](crate::Instance) serve back-to-back
    /// runs without re-mapping the shadow reservation.
    fn reset(&mut self) {
        self.facility.reset();
        self.check_count = 0;
        self.violation_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckMode;

    fn runtime(facility: Facility) -> SoftBoundRuntime {
        SoftBoundRuntime::new(&SoftBoundConfig {
            facility,
            mode: CheckMode::Full,
            ..SoftBoundConfig::default()
        })
    }

    fn call(rt: &mut SoftBoundRuntime, f: RtFn, args: &[i64]) -> Result<RtVals, Trap> {
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        rt.rt_call(f, args, &mut mem, &mut ctx)
    }

    #[test]
    fn in_bounds_check_passes() {
        let mut rt = runtime(Facility::ShadowPaged);
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x1000, 0x1000, 0x1040, 8]
        )
        .is_ok());
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1038, 0x1000, 0x1040, 8]
        )
        .is_ok());
    }

    #[test]
    fn out_of_bounds_check_aborts() {
        let mut rt = runtime(Facility::ShadowPaged);
        // One byte past the end.
        let e = call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1039, 0x1000, 0x1040, 8],
        );
        assert!(matches!(
            e,
            Err(Trap::SpatialViolation {
                scheme: "softbound",
                ..
            })
        ));
        // Below base.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0xfff, 0x1000, 0x1040, 1]
        )
        .is_err());
        // NULL bounds (int-to-pointer cast, §5.2).
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x1000, 0, 0, 1]
        )
        .is_err());
        assert_eq!(rt.violation_count, 3);
    }

    #[test]
    fn check_rejects_wraparound_past_zero() {
        // Regression: `ptr.wrapping_add(size) > bound` wraps past zero
        // for u64::MAX-adjacent pointers and used to pass the check.
        let mut rt = runtime(Facility::ShadowPaged);
        // ptr near u64::MAX with a size that wraps the sum to a tiny
        // value below any plausible bound.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[u64::MAX.wrapping_sub(4) as i64, 0x1000, 0x1040, 8]
        )
        .is_err());
        // ptr exactly u64::MAX.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[u64::MAX as i64, 0x1000, 0x1040, 1]
        )
        .is_err());
        // Huge size on a legitimate pointer: base <= ptr but ptr + size
        // wraps to below bound.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1000, 0x1000, 0x1040, u64::MAX as i64]
        )
        .is_err());
        assert_eq!(rt.violation_count, 3);
        // A maximal object reaching the top of the address space still
        // accepts its last byte (no false positive from the fix).
        let top = u64::MAX;
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[(top - 8) as i64, (top - 64) as i64, top as i64, 8]
        )
        .is_ok());
    }

    #[test]
    fn static_runtime_matches_dyn_wrapper() {
        // The generic instantiation and the type-erased wrapper are the
        // same runtime: identical verdicts and counters on a mixed
        // check/metadata sequence.
        let cfg = SoftBoundConfig::default();
        let mut st = SoftBoundRuntime::new_paged(&cfg);
        let mut dy = DynRuntime::new(&cfg);
        let seq: &[(RtFn, &[i64])] = &[
            (RtFn::SbMetaStore, &[0x7000, 0x5000, 0x5100]),
            (RtFn::SbMetaLoad, &[0x7000]),
            (
                RtFn::SbCheck { is_store: false },
                &[0x5000, 0x5000, 0x5100, 8],
            ),
            (
                RtFn::SbCheck { is_store: true },
                &[0x50ff, 0x5000, 0x5100, 8],
            ),
            (RtFn::SbMetaClear, &[0x7000, 8]),
            (RtFn::SbMetaLoad, &[0x7000]),
        ];
        for &(f, args) in seq {
            let mut mem = Mem::new();
            let mut ctx = RtCtx::default();
            let a = st.rt_call(f, args, &mut mem, &mut ctx);
            let mut mem2 = Mem::new();
            let mut ctx2 = RtCtx::default();
            let b = dy.rt_call(f, args, &mut mem2, &mut ctx2);
            assert_eq!(a, b, "diverged on {f:?}");
            assert_eq!(ctx.cost, ctx2.cost, "cost diverged on {f:?}");
        }
        assert_eq!(st.check_count, dy.check_count);
        assert_eq!(st.violation_count, dy.violation_count);
        assert_eq!(st.live_entries(), dy.live_entries());
    }

    #[test]
    fn access_size_matters() {
        // The paper's example: char* cast to int* at the last byte.
        let mut rt = runtime(Facility::ShadowPaged);
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x103f, 0x1000, 0x1040, 1]
        )
        .is_ok());
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x103f, 0x1000, 0x1040, 4]
        )
        .is_err());
    }

    #[test]
    fn metadata_roundtrip_through_rt() {
        for fac in [
            Facility::ShadowPaged,
            Facility::ShadowHashMap,
            Facility::HashTable,
        ] {
            let mut rt = runtime(fac);
            call(&mut rt, RtFn::SbMetaStore, &[0x7000, 0x5000, 0x5100]).expect("store ok");
            let v = call(&mut rt, RtFn::SbMetaLoad, &[0x7000]).expect("load ok");
            assert_eq!(v, [0x5000, 0x5100]);
            let missing = call(&mut rt, RtFn::SbMetaLoad, &[0x7008]).expect("load ok");
            assert_eq!(missing, [0, 0], "unknown slots have NULL bounds");
        }
    }

    #[test]
    fn fn_check_accepts_only_zero_sized_encoding() {
        let mut rt = runtime(Facility::ShadowPaged);
        let f = 0x4000_0000_0000i64;
        assert!(call(&mut rt, RtFn::SbFnCheck, &[f, f, f]).is_ok());
        // Data pointer flowing into an indirect call: bound != ptr.
        assert!(call(&mut rt, RtFn::SbFnCheck, &[0x1000, 0x1000, 0x1040]).is_err());
        // Forged integer: NULL bounds.
        assert!(call(&mut rt, RtFn::SbFnCheck, &[f, 0, 0]).is_err());
    }

    #[test]
    fn free_clears_metadata_with_hint() {
        let mut rt = runtime(Facility::ShadowPaged);
        call(&mut rt, RtFn::SbMetaStore, &[0x9000, 1, 2]).expect("store");
        call(&mut rt, RtFn::SbMetaStore, &[0x9008, 3, 4]).expect("store");
        let mut ctx = RtCtx::default();
        rt.on_free(0x9000, 16, true, &mut ctx);
        assert_eq!(rt.live_entries(), 0);
        // Without the hint, metadata stays (heuristic skips scalar blocks).
        call(&mut rt, RtFn::SbMetaStore, &[0x9000, 1, 2]).expect("store");
        rt.on_free(0x9000, 16, false, &mut ctx);
        assert_eq!(rt.live_entries(), 1);
    }

    #[test]
    fn va_check_respects_count() {
        let mut rt = runtime(Facility::ShadowPaged);
        let mut mem = Mem::new();
        let mut ctx = RtCtx {
            vararg_count: 3,
            ..RtCtx::default()
        };
        assert!(rt
            .rt_call(RtFn::SbVaCheck, &[2], &mut mem, &mut ctx)
            .is_ok());
        assert!(rt
            .rt_call(RtFn::SbVaCheck, &[3], &mut mem, &mut ctx)
            .is_err());
    }

    #[test]
    fn memcpy_meta_copies() {
        let mut rt = runtime(Facility::HashTable);
        call(&mut rt, RtFn::SbMetaStore, &[0x2000, 0x10, 0x20]).expect("store");
        call(&mut rt, RtFn::SbMemcpyMeta, &[0x3000, 0x2000, 8]).expect("copy");
        assert_eq!(
            call(&mut rt, RtFn::SbMetaLoad, &[0x3000]).expect("load"),
            [0x10, 0x20]
        );
    }
}
