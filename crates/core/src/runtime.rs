//! The SoftBound runtime: dereference checks, metadata propagation
//! helpers, and the §5.2 lifecycle behaviours (metadata clearing on free
//! and frame exit), implemented over a pluggable [`MetadataFacility`] and
//! exposed to the VM as [`RuntimeHooks`].

use crate::config::{Facility, SoftBoundConfig};
use crate::metadata::{
    HashTableFacility, Meta, MetadataFacility, ShadowHashMapFacility, ShadowPages,
};
use sb_ir::RtFn;
use sb_vm::{AccessSink, Mem, RtCtx, RtVals, RuntimeHooks, Trap};

/// Cost of the bounds check itself (two compares + branch, §3.1).
pub const CHECK_COST: u64 = 3;

/// The SoftBound runtime.
pub struct SoftBoundRuntime {
    facility: Box<dyn MetadataFacility>,
    clear_on_free: bool,
    /// Checks executed.
    pub check_count: u64,
    /// Violations would-have-fired (always 0 on safe programs).
    pub violation_count: u64,
}

impl SoftBoundRuntime {
    /// Builds the runtime described by a config.
    pub fn new(cfg: &SoftBoundConfig) -> Self {
        let facility: Box<dyn MetadataFacility> = match cfg.facility {
            Facility::ShadowPaged => Box::new(ShadowPages::new()),
            Facility::ShadowHashMap => Box::new(ShadowHashMapFacility::new()),
            Facility::HashTable => Box::new(HashTableFacility::new(cfg.hash_log2_buckets)),
        };
        SoftBoundRuntime {
            facility,
            clear_on_free: cfg.clear_on_free,
            check_count: 0,
            violation_count: 0,
        }
    }

    /// Live metadata entries (memory-overhead statistics).
    pub fn live_entries(&self) -> usize {
        self.facility.live_entries()
    }

    fn check(
        &mut self,
        ptr: u64,
        base: u64,
        bound: u64,
        size: u64,
        write: bool,
    ) -> Result<(), Trap> {
        self.check_count += 1;
        if ptr < base || ptr.wrapping_add(size) > bound || base == 0 {
            self.violation_count += 1;
            Err(Trap::SpatialViolation {
                scheme: "softbound",
                addr: ptr,
                write,
            })
        } else {
            Ok(())
        }
    }
}

impl RuntimeHooks for SoftBoundRuntime {
    fn name(&self) -> &'static str {
        "softbound"
    }

    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::SbCheck { is_store } => {
                ctx.add_cost(CHECK_COST);
                self.check(
                    args[0] as u64,
                    args[1] as u64,
                    args[2] as u64,
                    args[3] as u64,
                    is_store,
                )?;
                Ok([0, 0])
            }
            RtFn::SbMetaLoad => {
                let m = self.facility.load(args[0] as u64, ctx);
                Ok([m.base as i64, m.bound as i64])
            }
            RtFn::SbMetaStore => {
                let m = Meta {
                    base: args[1] as u64,
                    bound: args[2] as u64,
                };
                self.facility.store(args[0] as u64, m, ctx);
                Ok([0, 0])
            }
            RtFn::SbFnCheck => {
                ctx.add_cost(CHECK_COST);
                self.check_count += 1;
                let (ptr, base, bound) = (args[0] as u64, args[1] as u64, args[2] as u64);
                // Function pointers are encoded base == bound == ptr (§5.2):
                // a zero-sized "object" no data pointer can carry.
                if ptr != 0 && base == ptr && bound == ptr {
                    Ok([0, 0])
                } else {
                    self.violation_count += 1;
                    Err(Trap::SpatialViolation {
                        scheme: "softbound",
                        addr: ptr,
                        write: false,
                    })
                }
            }
            RtFn::SbMetaClear => {
                self.facility
                    .clear_range(args[0] as u64, args[1] as u64, ctx);
                Ok([0, 0])
            }
            RtFn::SbMemcpyMeta => {
                self.facility
                    .copy_range(args[0] as u64, args[1] as u64, args[2] as u64, ctx);
                Ok([0, 0])
            }
            RtFn::SbVaCheck => {
                ctx.add_cost(2);
                let idx = args[0];
                if idx < 0 || idx as u64 >= ctx.vararg_count {
                    Err(Trap::SpatialViolation {
                        scheme: "softbound",
                        addr: idx as u64,
                        write: false,
                    })
                } else {
                    Ok([0, 0])
                }
            }
            other => panic!("softbound runtime received foreign rt call {other:?}"),
        }
    }

    fn on_free(&mut self, addr: u64, size: u64, ptr_hint: bool, ctx: &mut RtCtx) {
        // §5.2 "memory reuse and stale metadata": clear metadata for freed
        // blocks whose static type suggests they held pointers.
        if self.clear_on_free && ptr_hint {
            self.facility.clear_range(addr, size, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckMode;

    fn runtime(facility: Facility) -> SoftBoundRuntime {
        SoftBoundRuntime::new(&SoftBoundConfig {
            facility,
            mode: CheckMode::Full,
            ..SoftBoundConfig::default()
        })
    }

    fn call(rt: &mut SoftBoundRuntime, f: RtFn, args: &[i64]) -> Result<RtVals, Trap> {
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        rt.rt_call(f, args, &mut mem, &mut ctx)
    }

    #[test]
    fn in_bounds_check_passes() {
        let mut rt = runtime(Facility::ShadowPaged);
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x1000, 0x1000, 0x1040, 8]
        )
        .is_ok());
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1038, 0x1000, 0x1040, 8]
        )
        .is_ok());
    }

    #[test]
    fn out_of_bounds_check_aborts() {
        let mut rt = runtime(Facility::ShadowPaged);
        // One byte past the end.
        let e = call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1039, 0x1000, 0x1040, 8],
        );
        assert!(matches!(
            e,
            Err(Trap::SpatialViolation {
                scheme: "softbound",
                ..
            })
        ));
        // Below base.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0xfff, 0x1000, 0x1040, 1]
        )
        .is_err());
        // NULL bounds (int-to-pointer cast, §5.2).
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x1000, 0, 0, 1]
        )
        .is_err());
        assert_eq!(rt.violation_count, 3);
    }

    #[test]
    fn access_size_matters() {
        // The paper's example: char* cast to int* at the last byte.
        let mut rt = runtime(Facility::ShadowPaged);
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x103f, 0x1000, 0x1040, 1]
        )
        .is_ok());
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x103f, 0x1000, 0x1040, 4]
        )
        .is_err());
    }

    #[test]
    fn metadata_roundtrip_through_rt() {
        for fac in [
            Facility::ShadowPaged,
            Facility::ShadowHashMap,
            Facility::HashTable,
        ] {
            let mut rt = runtime(fac);
            call(&mut rt, RtFn::SbMetaStore, &[0x7000, 0x5000, 0x5100]).expect("store ok");
            let v = call(&mut rt, RtFn::SbMetaLoad, &[0x7000]).expect("load ok");
            assert_eq!(v, [0x5000, 0x5100]);
            let missing = call(&mut rt, RtFn::SbMetaLoad, &[0x7008]).expect("load ok");
            assert_eq!(missing, [0, 0], "unknown slots have NULL bounds");
        }
    }

    #[test]
    fn fn_check_accepts_only_zero_sized_encoding() {
        let mut rt = runtime(Facility::ShadowPaged);
        let f = 0x4000_0000_0000i64;
        assert!(call(&mut rt, RtFn::SbFnCheck, &[f, f, f]).is_ok());
        // Data pointer flowing into an indirect call: bound != ptr.
        assert!(call(&mut rt, RtFn::SbFnCheck, &[0x1000, 0x1000, 0x1040]).is_err());
        // Forged integer: NULL bounds.
        assert!(call(&mut rt, RtFn::SbFnCheck, &[f, 0, 0]).is_err());
    }

    #[test]
    fn free_clears_metadata_with_hint() {
        let mut rt = runtime(Facility::ShadowPaged);
        call(&mut rt, RtFn::SbMetaStore, &[0x9000, 1, 2]).expect("store");
        call(&mut rt, RtFn::SbMetaStore, &[0x9008, 3, 4]).expect("store");
        let mut ctx = RtCtx::default();
        rt.on_free(0x9000, 16, true, &mut ctx);
        assert_eq!(rt.live_entries(), 0);
        // Without the hint, metadata stays (heuristic skips scalar blocks).
        call(&mut rt, RtFn::SbMetaStore, &[0x9000, 1, 2]).expect("store");
        rt.on_free(0x9000, 16, false, &mut ctx);
        assert_eq!(rt.live_entries(), 1);
    }

    #[test]
    fn va_check_respects_count() {
        let mut rt = runtime(Facility::ShadowPaged);
        let mut mem = Mem::new();
        let mut ctx = RtCtx {
            vararg_count: 3,
            ..RtCtx::default()
        };
        assert!(rt
            .rt_call(RtFn::SbVaCheck, &[2], &mut mem, &mut ctx)
            .is_ok());
        assert!(rt
            .rt_call(RtFn::SbVaCheck, &[3], &mut mem, &mut ctx)
            .is_err());
    }

    #[test]
    fn memcpy_meta_copies() {
        let mut rt = runtime(Facility::HashTable);
        call(&mut rt, RtFn::SbMetaStore, &[0x2000, 0x10, 0x20]).expect("store");
        call(&mut rt, RtFn::SbMemcpyMeta, &[0x3000, 0x2000, 8]).expect("copy");
        assert_eq!(
            call(&mut rt, RtFn::SbMetaLoad, &[0x3000]).expect("load"),
            [0x10, 0x20]
        );
    }
}
