//! The SoftBound runtime: dereference checks, metadata propagation
//! helpers, and the §5.2 lifecycle behaviours (metadata clearing on free
//! and frame exit), implemented over a pluggable [`MetadataFacility`] and
//! exposed to the VM as [`RuntimeHooks`].
//!
//! The runtime is *generic* over its facility, so a machine built with a
//! concrete instantiation (`SoftBoundRuntime<ShadowPages>`) statically
//! dispatches — and typically inlines — every metadata access. The
//! [`DynRuntime`] alias (`SoftBoundRuntime<Box<dyn MetadataFacility>>`)
//! is the type-erased wrapper for the CLI/report boundary where the
//! facility is chosen at run time.

use crate::config::{Facility, SoftBoundConfig};
use crate::metadata::{
    HashTableFacility, Meta, MetadataFacility, ShadowHashMapFacility, ShadowPages,
    SharedShadowPages,
};
use crate::policy::{first_oob_byte, EvidenceRecord, EvidenceRing, PolicyAction, ViolationPolicy};
use sb_ir::RtFn;
use sb_vm::{
    AccessSink, BuiltinViolation, Mem, RtCtx, RtVals, RuntimeHooks, Trap, ViolationDisposition,
};

/// Cost of the bounds check itself (two compares + branch, §3.1).
pub const CHECK_COST: u64 = 3;

/// The SoftBound runtime, specialized on its metadata facility `F`.
pub struct SoftBoundRuntime<F: MetadataFacility = Box<dyn MetadataFacility>> {
    facility: F,
    clear_on_free: bool,
    policy: ViolationPolicy,
    evidence: EvidenceRing,
    /// Checks executed.
    pub check_count: u64,
    /// Violations would-have-fired (always 0 on safe programs).
    pub violation_count: u64,
}

/// The type-erased runtime: facility chosen at run time, every metadata
/// access through a vtable. Kept for the CLI/report boundary; hot paths
/// use a concrete `SoftBoundRuntime<F>` instead.
pub type DynRuntime = SoftBoundRuntime<Box<dyn MetadataFacility>>;

impl DynRuntime {
    /// Builds the type-erased runtime described by a config, boxing the
    /// facility the config names.
    pub fn new(cfg: &SoftBoundConfig) -> Self {
        let facility: Box<dyn MetadataFacility> = match cfg.facility {
            Facility::ShadowPaged => Box::new(ShadowPages::new()),
            Facility::ShadowHashMap => Box::new(ShadowHashMapFacility::new()),
            Facility::HashTable => Box::new(HashTableFacility::new(cfg.hash_log2_buckets)),
            Facility::ShadowShared => Box::new(SharedShadowPages::new_shared()),
        };
        SoftBoundRuntime::with_facility(facility, cfg)
    }
}

impl SoftBoundRuntime<ShadowPages> {
    /// Statically-dispatched runtime over the paged shadow space (the
    /// default production facility).
    pub fn new_paged(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(ShadowPages::new(), cfg)
    }
}

impl SoftBoundRuntime<SharedShadowPages> {
    /// Statically-dispatched runtime over the process-wide shared
    /// shadow reservation — the fleet facility: one 256 MiB directory
    /// per process, copy-on-first-touch chunks per worker.
    pub fn new_shared(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(SharedShadowPages::new_shared(), cfg)
    }
}

impl SoftBoundRuntime<ShadowHashMapFacility> {
    /// Statically-dispatched runtime over the HashMap shadow oracle.
    pub fn new_shadow_hashmap(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(ShadowHashMapFacility::new(), cfg)
    }
}

impl SoftBoundRuntime<HashTableFacility> {
    /// Statically-dispatched runtime over the open-hashing table.
    pub fn new_hash(cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime::with_facility(HashTableFacility::new(cfg.hash_log2_buckets), cfg)
    }
}

impl<F: MetadataFacility> SoftBoundRuntime<F> {
    /// Builds the runtime around an explicit facility instance. The
    /// evidence ring is preallocated here (at `cfg.evidence_capacity`
    /// records), so recording on the warm path never allocates.
    pub fn with_facility(facility: F, cfg: &SoftBoundConfig) -> Self {
        SoftBoundRuntime {
            facility,
            clear_on_free: cfg.clear_on_free,
            policy: cfg.policy,
            evidence: EvidenceRing::new(if cfg.policy == ViolationPolicy::Strict {
                0
            } else {
                cfg.evidence_capacity
            }),
            check_count: 0,
            violation_count: 0,
        }
    }

    /// The installed facility (for facility-specific statistics).
    pub fn facility(&self) -> &F {
        &self.facility
    }

    /// The violation policy this runtime enforces.
    pub fn policy(&self) -> ViolationPolicy {
        self.policy
    }

    /// Evidence records currently held in the ring.
    pub fn evidence_len(&self) -> usize {
        self.evidence.len()
    }

    /// Evidence records lost to ring overflow since the last reset.
    pub fn evidence_overflow(&self) -> u64 {
        self.evidence.overflow()
    }

    /// Removes and returns all held evidence records, oldest first.
    pub fn drain_evidence(&mut self) -> Vec<EvidenceRecord> {
        self.evidence.drain()
    }

    /// Live metadata entries (memory-overhead statistics).
    pub fn live_entries(&self) -> usize {
        self.facility.live_entries()
    }

    /// Standing host-memory reservation of the facility (what a fleet
    /// pays per worker between requests).
    pub fn reservation_bytes(&self) -> usize {
        self.facility.reservation_bytes()
    }

    /// The portion of [`reservation_bytes`](Self::reservation_bytes)
    /// that is process-wide shared state — one copy serves every worker
    /// over the same reservation, so fleets count it once per pool. 0
    /// for the private facilities.
    pub fn shared_reservation_bytes(&self) -> usize {
        self.facility.shared_reservation_bytes()
    }

    /// Records one evidence record for a violation a non-Strict policy
    /// absorbed. Out of line: the safe-path check never reaches it.
    #[cold]
    fn record(
        &mut self,
        ptr: u64,
        size: u64,
        (base, bound): (u64, u64),
        write: bool,
        action: PolicyAction,
        pc: u64,
    ) {
        self.evidence.record(EvidenceRecord {
            pc,
            ptr,
            fault_addr: first_oob_byte(ptr, base, bound),
            size,
            base,
            bound,
            write,
            action,
        });
    }

    #[inline]
    fn check(
        &mut self,
        ptr: u64,
        base: u64,
        bound: u64,
        size: u64,
        write: bool,
        ctx: &mut RtCtx,
    ) -> Result<(), Trap> {
        self.check_count += 1;
        // `ptr + size` must not wrap: a huge pointer or size whose sum
        // wraps past zero would otherwise compare below `bound` and pass.
        let end_in_bounds = ptr.checked_add(size).is_some_and(|end| end <= bound);
        if ptr < base || !end_in_bounds || base == 0 {
            self.violation_count += 1;
            match self.policy {
                ViolationPolicy::Strict => Err(Trap::SpatialViolation {
                    scheme: "softbound",
                    addr: ptr,
                    write,
                }),
                ViolationPolicy::Hardened => {
                    let action = if write {
                        PolicyAction::ClampedWrite
                    } else {
                        PolicyAction::ZeroedRead
                    };
                    self.record(ptr, size, (base, bound), write, action, ctx.pc);
                    // The machine clamps the guarded access to these
                    // bounds (truncated write / zero-filled read).
                    ctx.repair = Some((base, bound));
                    Ok(())
                }
                ViolationPolicy::Monitor => {
                    self.record(
                        ptr,
                        size,
                        (base, bound),
                        write,
                        PolicyAction::Observed,
                        ctx.pc,
                    );
                    Ok(())
                }
            }
        } else {
            Ok(())
        }
    }
}

impl<F: MetadataFacility> RuntimeHooks for SoftBoundRuntime<F> {
    fn name(&self) -> &'static str {
        "softbound"
    }

    #[inline]
    fn rt_call(
        &mut self,
        rt: RtFn,
        args: &[i64],
        _mem: &mut Mem,
        ctx: &mut RtCtx,
    ) -> Result<RtVals, Trap> {
        match rt {
            RtFn::SbCheck { is_store } => {
                ctx.add_cost(CHECK_COST);
                self.check(
                    args[0] as u64,
                    args[1] as u64,
                    args[2] as u64,
                    args[3] as u64,
                    is_store,
                    ctx,
                )?;
                Ok([0, 0])
            }
            RtFn::SbMetaLoad => {
                let m = self.facility.load(args[0] as u64, ctx);
                Ok([m.base as i64, m.bound as i64])
            }
            RtFn::SbMetaStore => {
                let m = Meta {
                    base: args[1] as u64,
                    bound: args[2] as u64,
                };
                self.facility.store(args[0] as u64, m, ctx);
                Ok([0, 0])
            }
            RtFn::SbFnCheck => {
                ctx.add_cost(CHECK_COST);
                self.check_count += 1;
                let (ptr, base, bound) = (args[0] as u64, args[1] as u64, args[2] as u64);
                // Function pointers are encoded base == bound == ptr (§5.2):
                // a zero-sized "object" no data pointer can carry. This
                // check traps under *every* policy: there is no meaningful
                // "clamped" control transfer, and continuing past a failed
                // fn-ptr check would turn a detected hijack into UB.
                if ptr != 0 && base == ptr && bound == ptr {
                    Ok([0, 0])
                } else {
                    self.violation_count += 1;
                    Err(Trap::SpatialViolation {
                        scheme: "softbound",
                        addr: ptr,
                        write: false,
                    })
                }
            }
            RtFn::SbMetaClear => {
                self.facility
                    .clear_range(args[0] as u64, args[1] as u64, ctx);
                Ok([0, 0])
            }
            RtFn::SbMemcpyMeta => {
                self.facility
                    .copy_range(args[0] as u64, args[1] as u64, args[2] as u64, ctx);
                Ok([0, 0])
            }
            RtFn::SbVaCheck => {
                ctx.add_cost(2);
                let idx = args[0];
                // Like SbFnCheck, vararg-index checks trap under every
                // policy: there is no in-bounds vararg slot to clamp to.
                if idx < 0 || idx as u64 >= ctx.vararg_count {
                    Err(Trap::SpatialViolation {
                        scheme: "softbound",
                        addr: idx as u64,
                        write: false,
                    })
                } else {
                    Ok([0, 0])
                }
            }
            other => panic!("softbound runtime received foreign rt call {other:?}"),
        }
    }

    fn on_free(&mut self, addr: u64, size: u64, ptr_hint: bool, ctx: &mut RtCtx) {
        // §5.2 "memory reuse and stale metadata": clear metadata for freed
        // blocks whose static type suggests they held pointers.
        if self.clear_on_free && ptr_hint {
            self.facility.clear_range(addr, size, ctx);
        }
    }

    /// Decides what a libc-wrapper bounds failure does. Under Strict the
    /// builtin traps exactly as before — and, as before, without touching
    /// the runtime's violation counter (wrapper traps fire in the VM, not
    /// in an `SbCheck`; the differential suites pin that counter). Under
    /// Hardened/Monitor the violation is counted, evidence is recorded
    /// with the wrapper's whole intended range as the access size, and
    /// the builtin clamps or proceeds.
    fn on_builtin_violation(
        &mut self,
        v: &BuiltinViolation,
        ctx: &mut RtCtx,
    ) -> ViolationDisposition {
        match self.policy {
            ViolationPolicy::Strict => ViolationDisposition::Trap,
            ViolationPolicy::Hardened => {
                self.violation_count += 1;
                let action = if v.write {
                    PolicyAction::ClampedWrite
                } else {
                    PolicyAction::ZeroedRead
                };
                self.record(v.ptr, v.len, (v.base, v.bound), v.write, action, ctx.pc);
                ViolationDisposition::Clamp
            }
            ViolationPolicy::Monitor => {
                self.violation_count += 1;
                self.record(
                    v.ptr,
                    v.len,
                    (v.base, v.bound),
                    v.write,
                    PolicyAction::Observed,
                    ctx.pc,
                );
                ViolationDisposition::Observe
            }
        }
    }

    /// Clears all metadata and counters while keeping the facility's
    /// expensive allocations (shadow directory, hash buckets) alive —
    /// what lets an [`Instance`](crate::Instance) serve back-to-back
    /// runs without re-mapping the shadow reservation.
    fn reset(&mut self) {
        self.facility.reset();
        self.check_count = 0;
        self.violation_count = 0;
        self.evidence.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckMode;

    fn runtime(facility: Facility) -> SoftBoundRuntime {
        SoftBoundRuntime::new(&SoftBoundConfig {
            facility,
            mode: CheckMode::Full,
            ..SoftBoundConfig::default()
        })
    }

    fn call(rt: &mut SoftBoundRuntime, f: RtFn, args: &[i64]) -> Result<RtVals, Trap> {
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        rt.rt_call(f, args, &mut mem, &mut ctx)
    }

    #[test]
    fn in_bounds_check_passes() {
        let mut rt = runtime(Facility::ShadowPaged);
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x1000, 0x1000, 0x1040, 8]
        )
        .is_ok());
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1038, 0x1000, 0x1040, 8]
        )
        .is_ok());
    }

    #[test]
    fn out_of_bounds_check_aborts() {
        let mut rt = runtime(Facility::ShadowPaged);
        // One byte past the end.
        let e = call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1039, 0x1000, 0x1040, 8],
        );
        assert!(matches!(
            e,
            Err(Trap::SpatialViolation {
                scheme: "softbound",
                ..
            })
        ));
        // Below base.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0xfff, 0x1000, 0x1040, 1]
        )
        .is_err());
        // NULL bounds (int-to-pointer cast, §5.2).
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x1000, 0, 0, 1]
        )
        .is_err());
        assert_eq!(rt.violation_count, 3);
    }

    #[test]
    fn check_rejects_wraparound_past_zero() {
        // Regression: `ptr.wrapping_add(size) > bound` wraps past zero
        // for u64::MAX-adjacent pointers and used to pass the check.
        let mut rt = runtime(Facility::ShadowPaged);
        // ptr near u64::MAX with a size that wraps the sum to a tiny
        // value below any plausible bound.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[u64::MAX.wrapping_sub(4) as i64, 0x1000, 0x1040, 8]
        )
        .is_err());
        // ptr exactly u64::MAX.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[u64::MAX as i64, 0x1000, 0x1040, 1]
        )
        .is_err());
        // Huge size on a legitimate pointer: base <= ptr but ptr + size
        // wraps to below bound.
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: true },
            &[0x1000, 0x1000, 0x1040, u64::MAX as i64]
        )
        .is_err());
        assert_eq!(rt.violation_count, 3);
        // A maximal object reaching the top of the address space still
        // accepts its last byte (no false positive from the fix).
        let top = u64::MAX;
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[(top - 8) as i64, (top - 64) as i64, top as i64, 8]
        )
        .is_ok());
    }

    #[test]
    fn static_runtime_matches_dyn_wrapper() {
        // The generic instantiation and the type-erased wrapper are the
        // same runtime: identical verdicts and counters on a mixed
        // check/metadata sequence.
        let cfg = SoftBoundConfig::default();
        let mut st = SoftBoundRuntime::new_paged(&cfg);
        let mut dy = DynRuntime::new(&cfg);
        let seq: &[(RtFn, &[i64])] = &[
            (RtFn::SbMetaStore, &[0x7000, 0x5000, 0x5100]),
            (RtFn::SbMetaLoad, &[0x7000]),
            (
                RtFn::SbCheck { is_store: false },
                &[0x5000, 0x5000, 0x5100, 8],
            ),
            (
                RtFn::SbCheck { is_store: true },
                &[0x50ff, 0x5000, 0x5100, 8],
            ),
            (RtFn::SbMetaClear, &[0x7000, 8]),
            (RtFn::SbMetaLoad, &[0x7000]),
        ];
        for &(f, args) in seq {
            let mut mem = Mem::new();
            let mut ctx = RtCtx::default();
            let a = st.rt_call(f, args, &mut mem, &mut ctx);
            let mut mem2 = Mem::new();
            let mut ctx2 = RtCtx::default();
            let b = dy.rt_call(f, args, &mut mem2, &mut ctx2);
            assert_eq!(a, b, "diverged on {f:?}");
            assert_eq!(ctx.cost, ctx2.cost, "cost diverged on {f:?}");
        }
        assert_eq!(st.check_count, dy.check_count);
        assert_eq!(st.violation_count, dy.violation_count);
        assert_eq!(st.live_entries(), dy.live_entries());
    }

    #[test]
    fn access_size_matters() {
        // The paper's example: char* cast to int* at the last byte.
        let mut rt = runtime(Facility::ShadowPaged);
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x103f, 0x1000, 0x1040, 1]
        )
        .is_ok());
        assert!(call(
            &mut rt,
            RtFn::SbCheck { is_store: false },
            &[0x103f, 0x1000, 0x1040, 4]
        )
        .is_err());
    }

    #[test]
    fn metadata_roundtrip_through_rt() {
        for fac in [
            Facility::ShadowPaged,
            Facility::ShadowHashMap,
            Facility::HashTable,
            Facility::ShadowShared,
        ] {
            let mut rt = runtime(fac);
            call(&mut rt, RtFn::SbMetaStore, &[0x7000, 0x5000, 0x5100]).expect("store ok");
            let v = call(&mut rt, RtFn::SbMetaLoad, &[0x7000]).expect("load ok");
            assert_eq!(v, [0x5000, 0x5100]);
            let missing = call(&mut rt, RtFn::SbMetaLoad, &[0x7008]).expect("load ok");
            assert_eq!(missing, [0, 0], "unknown slots have NULL bounds");
        }
    }

    #[test]
    fn fn_check_accepts_only_zero_sized_encoding() {
        let mut rt = runtime(Facility::ShadowPaged);
        let f = 0x4000_0000_0000i64;
        assert!(call(&mut rt, RtFn::SbFnCheck, &[f, f, f]).is_ok());
        // Data pointer flowing into an indirect call: bound != ptr.
        assert!(call(&mut rt, RtFn::SbFnCheck, &[0x1000, 0x1000, 0x1040]).is_err());
        // Forged integer: NULL bounds.
        assert!(call(&mut rt, RtFn::SbFnCheck, &[f, 0, 0]).is_err());
    }

    #[test]
    fn free_clears_metadata_with_hint() {
        let mut rt = runtime(Facility::ShadowPaged);
        call(&mut rt, RtFn::SbMetaStore, &[0x9000, 1, 2]).expect("store");
        call(&mut rt, RtFn::SbMetaStore, &[0x9008, 3, 4]).expect("store");
        let mut ctx = RtCtx::default();
        rt.on_free(0x9000, 16, true, &mut ctx);
        assert_eq!(rt.live_entries(), 0);
        // Without the hint, metadata stays (heuristic skips scalar blocks).
        call(&mut rt, RtFn::SbMetaStore, &[0x9000, 1, 2]).expect("store");
        rt.on_free(0x9000, 16, false, &mut ctx);
        assert_eq!(rt.live_entries(), 1);
    }

    #[test]
    fn va_check_respects_count() {
        let mut rt = runtime(Facility::ShadowPaged);
        let mut mem = Mem::new();
        let mut ctx = RtCtx {
            vararg_count: 3,
            ..RtCtx::default()
        };
        assert!(rt
            .rt_call(RtFn::SbVaCheck, &[2], &mut mem, &mut ctx)
            .is_ok());
        assert!(rt
            .rt_call(RtFn::SbVaCheck, &[3], &mut mem, &mut ctx)
            .is_err());
    }

    #[test]
    fn hardened_check_absorbs_orders_repair_and_records_evidence() {
        let mut rt = SoftBoundRuntime::new_paged(&SoftBoundConfig::hardened());
        let mut mem = Mem::new();
        let mut ctx = RtCtx {
            pc: 42,
            ..RtCtx::default()
        };
        // An 8-byte store straddling the bound: absorbed, repair ordered.
        assert!(rt
            .rt_call(
                RtFn::SbCheck { is_store: true },
                &[0x1039, 0x1000, 0x1040, 8],
                &mut mem,
                &mut ctx
            )
            .is_ok());
        assert_eq!(ctx.repair, Some((0x1000, 0x1040)));
        assert_eq!(rt.violation_count, 1);
        let ev = rt.drain_evidence();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].pc, 42);
        assert_eq!(ev[0].ptr, 0x1039);
        assert_eq!(ev[0].fault_addr, 0x1040, "starts in bounds: fault at bound");
        assert_eq!(ev[0].size, 8);
        assert_eq!((ev[0].base, ev[0].bound), (0x1000, 0x1040));
        assert!(ev[0].write);
        assert_eq!(ev[0].action, PolicyAction::ClampedWrite);
        // A safe check afterwards: no repair, no evidence.
        ctx.repair = None;
        assert!(rt
            .rt_call(
                RtFn::SbCheck { is_store: false },
                &[0x1000, 0x1000, 0x1040, 8],
                &mut mem,
                &mut ctx
            )
            .is_ok());
        assert_eq!(ctx.repair, None);
        assert_eq!(rt.evidence_len(), 0);
    }

    #[test]
    fn monitor_check_observes_without_repair() {
        let mut rt = SoftBoundRuntime::new_paged(&SoftBoundConfig::monitor());
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        // Below-base load: absorbed, no repair (access proceeds as-is).
        assert!(rt
            .rt_call(
                RtFn::SbCheck { is_store: false },
                &[0xfff, 0x1000, 0x1040, 1],
                &mut mem,
                &mut ctx
            )
            .is_ok());
        assert_eq!(ctx.repair, None);
        let ev = rt.drain_evidence();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].fault_addr, 0xfff, "starts below base: fault at ptr");
        assert_eq!(ev[0].action, PolicyAction::Observed);
        assert!(!ev[0].write);
    }

    #[test]
    fn fn_and_va_checks_trap_under_every_policy() {
        for cfg in [SoftBoundConfig::hardened(), SoftBoundConfig::monitor()] {
            let mut rt = SoftBoundRuntime::new_paged(&cfg);
            let mut mem = Mem::new();
            let mut ctx = RtCtx {
                vararg_count: 1,
                ..RtCtx::default()
            };
            assert!(rt
                .rt_call(
                    RtFn::SbFnCheck,
                    &[0x1000, 0x1000, 0x1040],
                    &mut mem,
                    &mut ctx
                )
                .is_err());
            assert!(rt
                .rt_call(RtFn::SbVaCheck, &[3], &mut mem, &mut ctx)
                .is_err());
            assert_eq!(ctx.repair, None);
        }
    }

    #[test]
    fn builtin_violation_disposition_follows_policy() {
        let v = BuiltinViolation {
            ptr: 0x1030,
            len: 0x20,
            base: 0x1000,
            bound: 0x1040,
            write: true,
        };
        let mut ctx = RtCtx {
            pc: 7,
            ..RtCtx::default()
        };
        let mut strict = SoftBoundRuntime::new_paged(&SoftBoundConfig::default());
        assert_eq!(
            strict.on_builtin_violation(&v, &mut ctx),
            ViolationDisposition::Trap
        );
        assert_eq!(
            strict.violation_count, 0,
            "Strict wrapper counters unchanged"
        );

        let mut hardened = SoftBoundRuntime::new_paged(&SoftBoundConfig::hardened());
        assert_eq!(
            hardened.on_builtin_violation(&v, &mut ctx),
            ViolationDisposition::Clamp
        );
        let ev = hardened.drain_evidence();
        assert_eq!(ev[0].fault_addr, 0x1040, "in-bounds start clamps at bound");
        assert_eq!(ev[0].size, 0x20);
        assert_eq!(ev[0].pc, 7);
        assert_eq!(ev[0].action, PolicyAction::ClampedWrite);
        assert_eq!(hardened.violation_count, 1);

        let mut monitor = SoftBoundRuntime::new_paged(&SoftBoundConfig::monitor());
        assert_eq!(
            monitor.on_builtin_violation(&v, &mut ctx),
            ViolationDisposition::Observe
        );
        assert_eq!(monitor.drain_evidence()[0].action, PolicyAction::Observed);
    }

    #[test]
    fn reset_clears_the_evidence_ring() {
        let mut rt = SoftBoundRuntime::new_paged(&SoftBoundConfig::hardened());
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        rt.rt_call(
            RtFn::SbCheck { is_store: true },
            &[0x2000, 0, 0, 1],
            &mut mem,
            &mut ctx,
        )
        .expect("hardened absorbs");
        assert_eq!(rt.evidence_len(), 1);
        rt.reset();
        assert_eq!(rt.evidence_len(), 0);
        assert_eq!(rt.evidence_overflow(), 0);
        assert_eq!(rt.violation_count, 0);
    }

    #[test]
    fn memcpy_meta_copies() {
        let mut rt = runtime(Facility::HashTable);
        call(&mut rt, RtFn::SbMetaStore, &[0x2000, 0x10, 0x20]).expect("store");
        call(&mut rt, RtFn::SbMemcpyMeta, &[0x3000, 0x2000, 8]).expect("copy");
        assert_eq!(
            call(&mut rt, RtFn::SbMetaLoad, &[0x3000]).expect("load"),
            [0x10, 0x20]
        );
    }
}
