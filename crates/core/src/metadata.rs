//! The disjoint metadata facilities of §5.1.
//!
//! SoftBound maps the *address of a pointer in memory* to that pointer's
//! `(base, bound)` metadata. Two organizations are implemented, with the
//! paper's own instruction-count costs:
//!
//! * [`HashTableFacility`] — open hashing over (tag, base, bound) entries;
//!   ~9 x86 instructions per lookup in the no-collision case (shift, mask,
//!   multiply, add, three loads, compare, branch), +3 per extra probe.
//! * [`ShadowSpaceFacility`] — a tag-less direct map modelling a large
//!   reserved region of virtual address space; ~5 x86 instructions per
//!   lookup (shift, mask, add, two loads) and no collisions by
//!   construction.
//!
//! Both also expose their *simulated table addresses* so the VM's cache
//! model sees the extra memory pressure metadata accesses cause (the
//! effect the paper observes on treeadd/mst/health).

use std::collections::HashMap;

/// Synthetic base address of the simulated shadow-space region (the paper
/// reserves the middle of the virtual address space via `mmap`).
pub const SHADOW_BASE: u64 = 0x0000_1000_0000_0000;
/// Synthetic base address of the simulated hash table.
pub const HASHTABLE_BASE: u64 = 0x0000_1800_0000_0000;

/// Pointer metadata: `[base, bound)` addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Meta {
    /// Lower bound (inclusive). 0 encodes "no access" (NULL bounds).
    pub base: u64,
    /// Upper bound (exclusive).
    pub bound: u64,
}

impl Meta {
    /// The NULL metadata (any dereference traps).
    pub const NULL: Meta = Meta { base: 0, bound: 0 };

    /// True if this is the NULL metadata.
    pub fn is_null(self) -> bool {
        self.base == 0 && self.bound == 0
    }
}

/// A metadata organization: address-of-pointer → metadata, with explicit
/// costs and touched-table-address reporting.
pub trait MetadataFacility {
    /// Facility name for diagnostics.
    fn name(&self) -> &'static str;

    /// Looks up the metadata for the pointer stored at `addr`. Returns
    /// [`Meta::NULL`] when absent. Appends the cost in x86-equivalent
    /// instructions to `cost` and the touched table addresses to `touched`.
    fn load(&mut self, addr: u64, cost: &mut u64, touched: &mut Vec<u64>) -> Meta;

    /// Stores metadata for the pointer stored at `addr`.
    fn store(&mut self, addr: u64, meta: Meta, cost: &mut u64, touched: &mut Vec<u64>);

    /// Clears every pointer-slot entry in `[addr, addr+len)` (8-byte
    /// aligned slots).
    fn clear_range(&mut self, addr: u64, len: u64, cost: &mut u64, touched: &mut Vec<u64>) {
        let first = addr & !7;
        let mut a = first;
        while a < addr + len {
            self.store(a, Meta::NULL, cost, touched);
            a += 8;
        }
    }

    /// Copies metadata for every pointer slot from `[src, src+len)` to
    /// `[dst, dst+len)` (memcpy metadata handling, §5.2).
    fn copy_range(&mut self, dst: u64, src: u64, len: u64, cost: &mut u64, touched: &mut Vec<u64>) {
        let mut off = 0;
        while off + 8 <= len + 7 {
            let m = self.load(src + off, cost, touched);
            self.store(dst + off, m, cost, touched);
            off += 8;
            if off >= len {
                break;
            }
        }
    }

    /// Number of live (non-NULL) entries — memory-overhead statistics.
    fn live_entries(&self) -> usize;
}

/// The tag-less shadow-space organization (§5.1 "Shadow space").
///
/// A real implementation reserves a constant-offset region of virtual
/// memory; the simulation keeps a Rust map but *costs* and *cache
/// addresses* follow the constant-time direct-map design: 5 instructions,
/// one 16-byte entry at `SHADOW_BASE + slot*16`.
#[derive(Debug, Default)]
pub struct ShadowSpaceFacility {
    entries: HashMap<u64, Meta>,
}

impl ShadowSpaceFacility {
    /// Creates an empty shadow space.
    pub fn new() -> Self {
        Self::default()
    }

    fn table_addr(slot: u64) -> u64 {
        SHADOW_BASE + slot * 16
    }
}

impl MetadataFacility for ShadowSpaceFacility {
    fn name(&self) -> &'static str {
        "shadow-space"
    }

    fn load(&mut self, addr: u64, cost: &mut u64, touched: &mut Vec<u64>) -> Meta {
        let slot = addr >> 3;
        *cost += 5;
        touched.push(Self::table_addr(slot));
        self.entries.get(&slot).copied().unwrap_or(Meta::NULL)
    }

    fn store(&mut self, addr: u64, meta: Meta, cost: &mut u64, touched: &mut Vec<u64>) {
        let slot = addr >> 3;
        *cost += 5;
        touched.push(Self::table_addr(slot));
        if meta.is_null() {
            self.entries.remove(&slot);
        } else {
            self.entries.insert(slot, meta);
        }
    }

    fn live_entries(&self) -> usize {
        self.entries.len()
    }
}

/// The open-hashing organization (§5.1 "Hash table").
///
/// Entries are 24-byte (tag, base, bound) triples; the hash is the
/// double-word address modulo a power-of-two table size (shift + mask).
/// Collisions chain; each extra probe costs 3 instructions and touches
/// another table line, which is how this organization loses to the shadow
/// space on pointer-dense workloads.
#[derive(Debug)]
pub struct HashTableFacility {
    buckets: Vec<Vec<(u64, Meta)>>, // (slot-tag, meta)
    mask: u64,
    live: usize,
    /// Total probes beyond the first (collision statistics).
    pub extra_probes: u64,
}

impl HashTableFacility {
    /// Creates a table with `1 << log2_buckets` buckets (default 20 —
    /// "sizing the table large enough to keep average utilization low").
    pub fn new(log2_buckets: u32) -> Self {
        let n = 1usize << log2_buckets;
        HashTableFacility { buckets: vec![Vec::new(); n], mask: n as u64 - 1, live: 0, extra_probes: 0 }
    }

    fn bucket_addr(&self, b: u64, depth: u64) -> u64 {
        HASHTABLE_BASE + b * 24 + depth * (self.mask + 1) * 24
    }
}

impl Default for HashTableFacility {
    fn default() -> Self {
        Self::new(20)
    }
}

impl MetadataFacility for HashTableFacility {
    fn name(&self) -> &'static str {
        "hash-table"
    }

    fn load(&mut self, addr: u64, cost: &mut u64, touched: &mut Vec<u64>) -> Meta {
        let slot = addr >> 3;
        let b = slot & self.mask;
        *cost += 9;
        touched.push(self.bucket_addr(b, 0));
        let chain = &self.buckets[b as usize];
        for (depth, (tag, meta)) in chain.iter().enumerate() {
            if *tag == slot {
                if depth > 0 {
                    *cost += 3 * depth as u64;
                    self.extra_probes += depth as u64;
                    touched.push(self.bucket_addr(b, depth as u64));
                }
                return *meta;
            }
        }
        let extra = chain.len().saturating_sub(1) as u64;
        *cost += 3 * extra;
        self.extra_probes += extra;
        Meta::NULL
    }

    fn store(&mut self, addr: u64, meta: Meta, cost: &mut u64, touched: &mut Vec<u64>) {
        let slot = addr >> 3;
        let b = slot & self.mask;
        *cost += 9;
        touched.push(self.bucket_addr(b, 0));
        let chain = &mut self.buckets[b as usize];
        if let Some(pos) = chain.iter().position(|(tag, _)| *tag == slot) {
            if pos > 0 {
                *cost += 3 * pos as u64;
                self.extra_probes += pos as u64;
            }
            if meta.is_null() {
                chain.swap_remove(pos);
                self.live -= 1;
            } else {
                chain[pos].1 = meta;
            }
        } else if !meta.is_null() {
            let extra = chain.len() as u64;
            *cost += 3 * extra;
            self.extra_probes += extra;
            chain.push((slot, meta));
            self.live += 1;
        }
    }

    fn live_entries(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(fac: &mut dyn MetadataFacility) {
        let mut cost = 0;
        let mut touched = Vec::new();
        let m = Meta { base: 0x1000, bound: 0x1040 };
        assert_eq!(fac.load(0x2000, &mut cost, &mut touched), Meta::NULL);
        fac.store(0x2000, m, &mut cost, &mut touched);
        assert_eq!(fac.load(0x2000, &mut cost, &mut touched), m);
        assert_eq!(fac.load(0x2008, &mut cost, &mut touched), Meta::NULL, "adjacent slot distinct");
        fac.store(0x2000, Meta::NULL, &mut cost, &mut touched);
        assert_eq!(fac.load(0x2000, &mut cost, &mut touched), Meta::NULL);
        assert_eq!(fac.live_entries(), 0);
    }

    #[test]
    fn shadow_roundtrip() {
        roundtrip(&mut ShadowSpaceFacility::new());
    }

    #[test]
    fn hash_roundtrip() {
        roundtrip(&mut HashTableFacility::new(10));
    }

    #[test]
    fn shadow_costs_five() {
        let mut f = ShadowSpaceFacility::new();
        let mut cost = 0;
        let mut touched = Vec::new();
        f.load(0x4000, &mut cost, &mut touched);
        assert_eq!(cost, 5, "paper: shadow lookup ≈ 5 instructions");
        assert_eq!(touched.len(), 1);
    }

    #[test]
    fn hash_costs_nine_no_collision() {
        let mut f = HashTableFacility::new(16);
        let mut cost = 0;
        let mut touched = Vec::new();
        f.load(0x4000, &mut cost, &mut touched);
        assert_eq!(cost, 9, "paper: hash lookup ≈ 9 instructions");
    }

    #[test]
    fn hash_collisions_cost_extra() {
        // 4-bucket table: slots 0 and 16 collide (slot = addr>>3).
        let mut f = HashTableFacility::new(2);
        let mut cost = 0;
        let mut touched = Vec::new();
        let m = Meta { base: 1, bound: 2 };
        f.store(0x0, m, &mut cost, &mut touched); // slot 0, bucket 0
        f.store(0x80, m, &mut cost, &mut touched); // slot 16, bucket 0 → chained
        cost = 0;
        f.load(0x80, &mut cost, &mut touched);
        assert_eq!(cost, 9 + 3, "second chain position costs one extra probe");
        assert!(f.extra_probes > 0);
    }

    #[test]
    fn facilities_agree_randomized() {
        // Property: both organizations implement the same map.
        let mut sh = ShadowSpaceFacility::new();
        let mut ht = HashTableFacility::new(6); // tiny → lots of collisions
        let mut cost = 0;
        let mut touched = Vec::new();
        let mut state = 0x12345u64;
        let mut addrs = Vec::new();
        for i in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (state % 4096) & !7;
            let meta = Meta { base: i * 16, bound: i * 16 + 64 };
            sh.store(addr, meta, &mut cost, &mut touched);
            ht.store(addr, meta, &mut cost, &mut touched);
            addrs.push(addr);
        }
        for addr in addrs {
            assert_eq!(
                sh.load(addr, &mut cost, &mut touched),
                ht.load(addr, &mut cost, &mut touched),
                "facilities diverged at {addr:#x}"
            );
        }
        assert_eq!(sh.live_entries(), ht.live_entries());
    }

    #[test]
    fn clear_range_wipes_slots() {
        let mut f = ShadowSpaceFacility::new();
        let mut cost = 0;
        let mut touched = Vec::new();
        for i in 0..8 {
            f.store(0x3000 + i * 8, Meta { base: 1, bound: 2 }, &mut cost, &mut touched);
        }
        f.clear_range(0x3000, 32, &mut cost, &mut touched);
        assert_eq!(f.live_entries(), 4, "only the first 4 slots cleared");
    }

    #[test]
    fn copy_range_moves_metadata() {
        let mut f = ShadowSpaceFacility::new();
        let mut cost = 0;
        let mut touched = Vec::new();
        let m = Meta { base: 0x10, bound: 0x20 };
        f.store(0x5000, m, &mut cost, &mut touched);
        f.store(0x5008, Meta { base: 0x30, bound: 0x40 }, &mut cost, &mut touched);
        f.copy_range(0x6000, 0x5000, 16, &mut cost, &mut touched);
        assert_eq!(f.load(0x6000, &mut cost, &mut touched), m);
        assert_eq!(f.load(0x6008, &mut cost, &mut touched).base, 0x30);
    }
}
