//! The disjoint metadata facilities of §5.1.
//!
//! SoftBound maps the *address of a pointer in memory* to that pointer's
//! `(base, bound)` metadata. Three organizations are implemented, with the
//! paper's own instruction-count costs:
//!
//! * [`HashTableFacility`] — open hashing over (tag, base, bound) entries;
//!   ~9 x86 instructions per lookup in the no-collision case (shift, mask,
//!   multiply, add, three loads, compare, branch), +3 per extra probe.
//! * [`ShadowPages`] — the tag-less direct map of the paper's reserved
//!   virtual-address region, realized as a two-level paged table: the high
//!   bits of the slot index a flat directory, the low bits index a
//!   `Box<[Meta]>` page allocated on first touch. Lookups are O(1) and
//!   branch-light (shift, mask, add, two loads ≈ 5 instructions) with no
//!   collisions by construction.
//! * [`ShadowHashMapFacility`] — the previous HashMap-backed *simulation*
//!   of the shadow space, kept as a differential-testing oracle and as the
//!   slow comparison point for the `metadata` microbenchmark.
//! * [`SharedShadowPages`] — the same paged direct map, but reading
//!   through a process-wide [`SharedShadowReservation`]: the 256 MiB
//!   directory is allocated once per process and each worker overlays it
//!   with copy-on-first-touch chunks, so a fleet pays the reservation
//!   once instead of once per worker.
//!
//! All facilities report their *simulated table addresses* through an
//! [`AccessSink`] so the VM's cache model sees the extra memory pressure
//! metadata accesses cause (the effect the paper observes on
//! treeadd/mst/health). Callers that do not model caches pass a sink whose
//! `wants_addresses()` is false ([`NoopSink`], or an [`RtCtx`] without a
//! cache), making the hot path allocation- and buffer-free.
//!
//! [`RtCtx`]: sb_vm::RtCtx

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

pub use sb_vm::{AccessSink, NoopSink, ScratchSink};

/// Synthetic base address of the simulated shadow-space region (the paper
/// reserves the middle of the virtual address space via `mmap`).
pub const SHADOW_BASE: u64 = 0x0000_1000_0000_0000;
/// Synthetic base address of the simulated hash table.
pub const HASHTABLE_BASE: u64 = 0x0000_1800_0000_0000;

/// Pointer metadata: `[base, bound)` addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Meta {
    /// Lower bound (inclusive). 0 encodes "no access" (NULL bounds).
    pub base: u64,
    /// Upper bound (exclusive).
    pub bound: u64,
}

impl Meta {
    /// The NULL metadata (any dereference traps).
    pub const NULL: Meta = Meta { base: 0, bound: 0 };

    /// True if this is the NULL metadata.
    pub fn is_null(self) -> bool {
        self.base == 0 && self.bound == 0
    }
}

/// A metadata organization: address-of-pointer → metadata. Costs and
/// touched-table addresses are reported through the [`AccessSink`].
pub trait MetadataFacility {
    /// Facility name for diagnostics.
    fn name(&self) -> &'static str;

    /// Looks up the metadata for the pointer stored at `addr`. Returns
    /// [`Meta::NULL`] when absent.
    fn load(&mut self, addr: u64, sink: &mut dyn AccessSink) -> Meta;

    /// Stores metadata for the pointer stored at `addr`.
    fn store(&mut self, addr: u64, meta: Meta, sink: &mut dyn AccessSink);

    /// Clears every pointer-slot entry in `[addr, addr+len)` (8-byte
    /// aligned slots). Zero-length ranges touch nothing, even when
    /// `addr` is unaligned (the rounded-down slot lies outside an empty
    /// range).
    fn clear_range(&mut self, addr: u64, len: u64, sink: &mut dyn AccessSink) {
        if len == 0 {
            return;
        }
        let mut a = addr & !7;
        while a < addr + len {
            self.store(a, Meta::NULL, sink);
            a += 8;
        }
    }

    /// Copies metadata for every pointer slot from `[src, src+len)` to
    /// `[dst, dst+len)` (memcpy metadata handling, §5.2): each aligned
    /// 8-byte slot offset below `len` is copied exactly once, so an
    /// unaligned length (e.g. a 12-byte memcpy) still moves the slots at
    /// offsets 0 and 8 and nothing else.
    fn copy_range(&mut self, dst: u64, src: u64, len: u64, sink: &mut dyn AccessSink) {
        let mut off = 0;
        while off < len {
            let m = self.load(src + off, sink);
            self.store(dst + off, m, sink);
            off += 8;
        }
    }

    /// Number of live (non-NULL) entries — memory-overhead statistics.
    fn live_entries(&self) -> usize;

    /// Bytes of host memory this facility holds onto *between* runs —
    /// the standing reservation a fleet pays once per worker, not the
    /// transient per-run growth. For the paged shadow this is dominated
    /// by the flat directory (the analogue of the paper's `mmap`-reserved
    /// shadow region); for the hash table, by the bucket array. The
    /// ROADMAP's shared-reservation follow-on needs this number measured
    /// per worker to size the win of sharing one reservation across a
    /// pool.
    fn reservation_bytes(&self) -> usize;

    /// The portion of [`reservation_bytes`](Self::reservation_bytes)
    /// that is *process-wide shared* state: one copy serves every
    /// facility built over the same reservation, so a fleet counts it
    /// once per pool rather than once per worker. 0 for the private
    /// facilities; [`SharedShadowPages`] reports its shared directory
    /// here.
    fn shared_reservation_bytes(&self) -> usize {
        0
    }

    /// Forgets every entry, restoring the facility to its
    /// just-constructed state while keeping its expensive allocations
    /// (the paged shadow's directory reservation, the hash table's
    /// bucket array) alive for the next program run. This is the §5.1
    /// disjoint-metadata payoff a session-oriented embedding exploits:
    /// program state and metadata state reset independently, so
    /// back-to-back runs on one [`Instance`](crate::Instance) skip the
    /// per-machine setup cost entirely.
    fn reset(&mut self);
}

/// Boxed facilities forward to their contents, so
/// `Box<dyn MetadataFacility>` plugs into the generic
/// [`SoftBoundRuntime`](crate::SoftBoundRuntime) as its type-erased
/// configuration ([`DynRuntime`](crate::DynRuntime)) — the facility is
/// then chosen at run time and every access pays one virtual call, which
/// is exactly the cost the generic runtime exists to avoid on hot paths.
impl<F: MetadataFacility + ?Sized> MetadataFacility for Box<F> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    #[inline]
    fn load(&mut self, addr: u64, sink: &mut dyn AccessSink) -> Meta {
        (**self).load(addr, sink)
    }

    #[inline]
    fn store(&mut self, addr: u64, meta: Meta, sink: &mut dyn AccessSink) {
        (**self).store(addr, meta, sink);
    }

    fn clear_range(&mut self, addr: u64, len: u64, sink: &mut dyn AccessSink) {
        (**self).clear_range(addr, len, sink);
    }

    fn copy_range(&mut self, dst: u64, src: u64, len: u64, sink: &mut dyn AccessSink) {
        (**self).copy_range(dst, src, len, sink);
    }

    fn live_entries(&self) -> usize {
        (**self).live_entries()
    }

    fn reservation_bytes(&self) -> usize {
        (**self).reservation_bytes()
    }

    fn shared_reservation_bytes(&self) -> usize {
        (**self).shared_reservation_bytes()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

/// Approximates the standing host bytes of a `HashMap`'s *actual* bucket
/// layout. A `len()`-based estimate undercounts a standing reservation —
/// the table keeps its buckets when entries are removed — so facilities
/// size their maps from `capacity()`: hashbrown allocates the smallest
/// power-of-two bucket count whose 7/8 load ceiling covers that capacity,
/// with one `(K, V)` slot and one control byte per bucket.
fn hash_map_reservation_bytes<K, V>(map: &HashMap<K, V>) -> usize {
    let cap = map.capacity();
    if cap == 0 {
        return 0;
    }
    let buckets = (cap * 8).div_ceil(7).next_power_of_two();
    buckets * (std::mem::size_of::<(K, V)>() + 1)
}

// Paged shadow-space geometry: a slot is an 8-byte-aligned pointer
// location (`addr >> 3`). The low `SHADOW_PAGE_BITS` of the slot index a
// page; the next `SHADOW_DIR_BITS` index the directory. Together they
// cover the VM's entire 47-bit simulated address space
// (3 + 18 + 26 = 47); anything beyond spills to a cold overflow map so
// arbitrary u64 addresses remain correct.
const SHADOW_PAGE_BITS: u32 = 18;
const SHADOW_DIR_BITS: u32 = 26;
const SHADOW_PAGE_SLOTS: u64 = 1 << SHADOW_PAGE_BITS;
const SHADOW_DIRECT_SLOTS: u64 = 1 << (SHADOW_PAGE_BITS + SHADOW_DIR_BITS);

// The copy-on-first-touch shared organization splits the directory into
// 2^13 chunks of 2^13 u32 entries (32 KiB per chunk, 8192-entry root).
const DIR_CHUNK_BITS: u32 = 13;
const DIR_CHUNK_ENTRIES: usize = 1 << DIR_CHUNK_BITS;
const DIR_CHUNKS: usize = 1 << (SHADOW_DIR_BITS - DIR_CHUNK_BITS);

/// How a paged shadow map stores its directory (slot high bits → page
/// id). The two implementations trade standing reservation for one level
/// of indirection: [`FlatDirectory`] owns the whole 256 MiB span
/// privately (one indexed load per lookup); [`CowDirectory`] reads
/// through the process-wide [`SharedShadowReservation`] and materializes
/// private 32 KiB chunks only for directory spans it actually writes.
///
/// Directory choice is a *host-side* organization. The simulated cost
/// model (`sink.record(5, ..)`) and the observable metadata map are
/// identical for both, which is what lets the shared facility ride the
/// same differential suites as the private one, bit for bit.
pub trait ShadowDirectory {
    /// Facility name reported through [`MetadataFacility::name`].
    const NAME: &'static str;

    /// Whether [`MetadataFacility::reset`] hands page frames back to a
    /// process-wide pool (counted once, in
    /// [`shared_bytes`](Self::shared_bytes)) instead of parking them
    /// per worker. `false` keeps frames on the worker's own free list.
    const SHARES_FRAMES: bool = false;

    /// Reads the page id (+1) for directory entry `di`; 0 = no page.
    fn get(&self, di: usize) -> u32;

    /// Writes the page id (+1) for directory entry `di`.
    fn set(&mut self, di: usize, pid: u32);

    /// Host bytes this directory owns privately (paid per worker).
    fn private_bytes(&self) -> usize;

    /// Bytes of process-wide shared reservation this directory reads
    /// through to — paid once per process, not once per worker.
    fn shared_bytes(&self) -> usize {
        0
    }

    /// Offers a scrubbed (all-zero) frame to the shared pool; only
    /// meaningful when [`SHARES_FRAMES`](Self::SHARES_FRAMES) is true.
    fn stash_frame(&self, frame: Box<[u128]>) {
        drop(frame);
    }

    /// Takes a scrubbed frame back from the shared pool, if one is
    /// available.
    fn take_frame(&self) -> Option<Box<[u128]>> {
        None
    }
}

/// The private flat directory: this facility owns the entire
/// 2^26-entry span (256 MiB of zeroed virtual memory) itself — the
/// per-worker cost every fleet member paid before the shared
/// reservation existed.
#[derive(Debug)]
pub struct FlatDirectory {
    dir: Vec<u32>,
}

impl FlatDirectory {
    fn new() -> Self {
        FlatDirectory {
            dir: vec![0u32; 1 << SHADOW_DIR_BITS],
        }
    }
}

impl ShadowDirectory for FlatDirectory {
    const NAME: &'static str = "shadow-space";

    #[inline]
    fn get(&self, di: usize) -> u32 {
        self.dir[di]
    }

    #[inline]
    fn set(&mut self, di: usize, pid: u32) {
        self.dir[di] = pid;
    }

    fn private_bytes(&self) -> usize {
        self.dir.len() * std::mem::size_of::<u32>()
    }
}

/// The process-wide shared shadow reservation: one 256 MiB zeroed
/// directory that every [`SharedShadowPages`] worker reads through for
/// directory spans it has never written — the software analogue of the
/// kernel zero page backing the paper's `mmap`-reserved shadow region
/// (§5.1): reserve once per process, commit per toucher.
///
/// The prototype is written by *no one* (workers materialize private
/// copy-on-first-touch chunks before their first directory write), so
/// sharing it across a fleet is lock-free and race-free by construction;
/// the `Arc` only manages lifetime. A fleet therefore pays the directory
/// once, plus per-worker private bytes proportional to the address span
/// each worker actually touched.
#[derive(Debug)]
pub struct SharedShadowReservation {
    /// The zero prototype: one u32 per directory entry, never written.
    zero_dir: Box<[u32]>,
    /// Standing pool of scrubbed (all-zero) 4 MiB page frames, shared
    /// by every worker on this reservation: [`MetadataFacility::reset`]
    /// returns a worker's frames here and the next page commit —
    /// anyone's — reuses them without touching the host allocator.
    /// Bounded at [`Self::frame_pool_capacity_bytes`]; excess frames
    /// are released to the host, so a fleet's *standing* frame cost is
    /// the pool capacity once, not `workers × pages` forever. Touched
    /// only at commit/reset (the check hot path never takes the lock).
    frame_pool: Mutex<Vec<Box<[u128]>>>,
}

/// Frames the shared pool retains across resets (32 MiB of standing
/// frame reservation — enough to recycle a typical pool's churn
/// without growing with the worker count).
const FRAME_POOL_CAP: usize = 8;

impl SharedShadowReservation {
    /// Allocates a fresh reservation, for tests (or embedders) that want
    /// isolation from the process-wide one. The span is zeroed virtual
    /// memory; nothing is committed until readers fault pages in.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Self> {
        Arc::new(SharedShadowReservation {
            zero_dir: vec![0u32; 1 << SHADOW_DIR_BITS].into_boxed_slice(),
            frame_pool: Mutex::new(Vec::with_capacity(FRAME_POOL_CAP)),
        })
    }

    /// The process-wide reservation, allocated on first use and shared
    /// by every facility built through [`SharedShadowPages::new_shared`]
    /// thereafter.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<SharedShadowReservation>> = OnceLock::new();
        GLOBAL.get_or_init(Self::new).clone()
    }

    /// Bytes of the once-per-process reservation: the directory
    /// prototype plus the frame pool *at capacity*. The pool is counted
    /// at its bound, not its momentary occupancy, for the same reason
    /// the 256 MiB directory is counted at its span: `reservation`
    /// means address space this facility may hold, and a capacity
    /// figure keeps fleet accounting deterministic while frames move
    /// between workers and the pool.
    pub fn shared_bytes(&self) -> usize {
        self.zero_dir.len() * std::mem::size_of::<u32>() + Self::frame_pool_capacity_bytes()
    }

    /// Upper bound on host bytes the standing frame pool retains.
    pub fn frame_pool_capacity_bytes() -> usize {
        FRAME_POOL_CAP * (SHADOW_PAGE_SLOTS as usize) * std::mem::size_of::<u128>()
    }

    fn stash_frame(&self, frame: Box<[u128]>) {
        let mut pool = self
            .frame_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.len() < FRAME_POOL_CAP {
            pool.push(frame);
        }
    }

    fn take_frame(&self) -> Option<Box<[u128]>> {
        self.frame_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
    }
}

/// The copy-on-first-touch directory over the shared reservation: reads
/// fall through to the shared zero prototype until this worker's first
/// page commit in a 32 KiB span materializes a private chunk. The check
/// hot path stays lock-free (the overlay is worker-private and the
/// prototype read-only) and the warm path allocation-free: chunks
/// materialize on page commit — the moment the flat organization would
/// be allocating a 4 MiB page anyway — and, like the flat directory,
/// survive [`MetadataFacility::reset`].
#[derive(Debug)]
pub struct CowDirectory {
    shared: Arc<SharedShadowReservation>,
    /// Materialized private chunks; `DIR_CHUNKS` entries.
    root: Box<[Option<Box<[u32]>>]>,
}

impl CowDirectory {
    fn new(shared: Arc<SharedShadowReservation>) -> Self {
        CowDirectory {
            shared,
            root: vec![None; DIR_CHUNKS].into_boxed_slice(),
        }
    }
}

impl ShadowDirectory for CowDirectory {
    const NAME: &'static str = "shadow-space-shared";
    const SHARES_FRAMES: bool = true;

    #[inline]
    fn get(&self, di: usize) -> u32 {
        match &self.root[di >> DIR_CHUNK_BITS] {
            Some(chunk) => chunk[di & (DIR_CHUNK_ENTRIES - 1)],
            // Never-written span: read the shared zero prototype
            // (always "no page") instead of owning 256 MiB to say so.
            None => self.shared.zero_dir[di],
        }
    }

    fn set(&mut self, di: usize, pid: u32) {
        let slot = &mut self.root[di >> DIR_CHUNK_BITS];
        match slot {
            Some(chunk) => chunk[di & (DIR_CHUNK_ENTRIES - 1)] = pid,
            None => {
                // Writing "no page" into a never-written span changes
                // nothing; stay unmaterialized.
                if pid == 0 {
                    return;
                }
                let mut chunk = vec![0u32; DIR_CHUNK_ENTRIES].into_boxed_slice();
                chunk[di & (DIR_CHUNK_ENTRIES - 1)] = pid;
                *slot = Some(chunk);
            }
        }
    }

    fn private_bytes(&self) -> usize {
        std::mem::size_of_val::<[Option<Box<[u32]>>]>(&self.root)
            + self
                .root
                .iter()
                .flatten()
                .map(|c| c.len() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    fn shared_bytes(&self) -> usize {
        self.shared.shared_bytes()
    }

    fn stash_frame(&self, frame: Box<[u128]>) {
        self.shared.stash_frame(frame);
    }

    fn take_frame(&self) -> Option<Box<[u128]>> {
        self.shared.take_frame()
    }
}

/// The tag-less shadow-space organization (§5.1 "Shadow space"),
/// implemented as a real two-level paged direct map.
///
/// The directory is a flat array of page ids and each page a flat array
/// of packed `(base, bound)` entries; both are allocated zeroed
/// (`calloc` → anonymous mappings), so their spans stay *virtual* until
/// individual OS pages are touched — the same demand-paging trick the
/// paper plays by `mmap`-reserving half the address space for the
/// shadow region. A lookup is shift, mask, two indexed loads: O(1),
/// branch-light, no tags, no collisions. Because the directory holds
/// plain `u32` page ids (not boxes), dropping the facility frees a
/// handful of flat allocations instead of scanning 64M entries.
///
/// Entries are stored as `u128` words (base in the low half, bound in
/// the high half) so page allocation hits the zeroed-memory fast path;
/// the all-zero word is exactly [`Meta::NULL`].
///
/// ## Page reclamation
///
/// Every page tracks its own live-entry count. When
/// [`clear_range`](MetadataFacility::clear_range) covers a page end to
/// end — a large `free`, a frame teardown, a `memset` over a
/// pointer-bearing region — the page is **decommitted**: its id is
/// unmapped from the directory and parked on a free list, instead of
/// storing NULL 256 Ki times. Decommit scrubs the page's written
/// extent back to all-zero (a few cache lines for a typical request,
/// never a 4 MiB memset), so the next first-touch recommits it with
/// pointer work alone — no fill, no host allocation: a warm worker's
/// commit/decommit churn never touches the allocator.
/// [`reset`](MetadataFacility::reset) decommits every page the same
/// way but keeps the directory reservation mapped, zeroing only the
/// entries that were actually used — long-running servers neither leak
/// shadow pages nor pay the reservation again per request. A private
/// facility parks its scrubbed frames locally; a shared facility
/// returns them to the reservation's bounded frame pool so idle
/// workers hold nothing.
///
/// ## Directory backends
///
/// The directory is generic over [`ShadowDirectory`]:
/// `ShadowPages = PagedShadow<FlatDirectory>` owns the full 256 MiB span
/// per facility, while `SharedShadowPages = PagedShadow<CowDirectory>`
/// overlays the process-wide [`SharedShadowReservation`]. Page and
/// overflow handling — and the simulated cost model — are shared code,
/// so the two stay bit-identical by construction.
#[derive(Debug)]
pub struct PagedShadow<D: ShadowDirectory> {
    /// Page id + 1 per directory entry; 0 = no page yet.
    dir: D,
    /// Materialized pages, in first-touch order (index = page id - 1).
    pages: Vec<Page>,
    /// Ids of decommitted pages, reusable on the next first-touch.
    free_pages: Vec<u32>,
    /// Cold store for slots beyond the 47-bit simulated space.
    overflow: HashMap<u64, Meta>,
    live: usize,
}

/// The per-worker paged shadow: a private flat 256 MiB directory.
pub type ShadowPages = PagedShadow<FlatDirectory>;

/// The fleet paged shadow: a copy-on-first-touch overlay over the
/// process-wide [`SharedShadowReservation`].
pub type SharedShadowPages = PagedShadow<CowDirectory>;

/// One materialized shadow page plus its bookkeeping.
#[derive(Debug)]
struct Page {
    /// Packed `(base, bound)` entries. Invariant: all-zero outside the
    /// `[dirty_lo, dirty_hi)` extent, and decommitted (parked or
    /// pooled) frames are all-zero everywhere — recommit needs no fill.
    slots: Box<[u128]>,
    /// Live (non-NULL) entries on this page.
    live: u32,
    /// Directory index currently owning this page (stale once the page
    /// is decommitted; rewritten when the id is reused).
    dir_index: u32,
    /// Written-slot extent since the last scrub (`lo >= hi` = clean).
    /// Zeroing on decommit touches only this span, so a worker that
    /// writes a few hundred entries never pays a 4 MiB memset — the
    /// frames stay as cheap to recycle as freshly `calloc`ed ones.
    dirty_lo: u32,
    dirty_hi: u32,
}

impl Page {
    fn fresh(slots: Box<[u128]>, dir_index: u32) -> Self {
        Page {
            slots,
            live: 0,
            dir_index,
            dirty_lo: u32::MAX,
            dirty_hi: 0,
        }
    }

    #[inline]
    fn note_write(&mut self, idx: usize) {
        let idx = idx as u32;
        self.dirty_lo = self.dirty_lo.min(idx);
        self.dirty_hi = self.dirty_hi.max(idx + 1);
    }

    /// Zeroes the written extent, restoring the all-zero invariant.
    fn scrub(&mut self) {
        if self.dirty_lo < self.dirty_hi {
            self.slots[self.dirty_lo as usize..self.dirty_hi as usize].fill(0);
        }
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
        self.live = 0;
    }

    fn is_clean(&self) -> bool {
        self.dirty_lo >= self.dirty_hi && self.live == 0
    }
}

fn zeroed_page() -> Box<[u128]> {
    vec![0u128; SHADOW_PAGE_SLOTS as usize].into_boxed_slice()
}

#[inline]
fn pack(m: Meta) -> u128 {
    (m.base as u128) | ((m.bound as u128) << 64)
}

#[inline]
fn unpack(v: u128) -> Meta {
    Meta {
        base: v as u64,
        bound: (v >> 64) as u64,
    }
}

impl ShadowPages {
    /// Creates an empty paged shadow space over a private flat
    /// directory. The directory allocation is zeroed virtual memory;
    /// nothing is committed until first touch.
    pub fn new() -> Self {
        PagedShadow::with_directory(FlatDirectory::new())
    }
}

impl SharedShadowPages {
    /// Creates a worker facility over the process-wide shared
    /// reservation ([`SharedShadowReservation::global`]).
    pub fn new_shared() -> Self {
        Self::with_reservation(SharedShadowReservation::global())
    }

    /// Creates a worker facility over an explicit reservation — tests,
    /// or an embedder running several isolated fleets in one process.
    pub fn with_reservation(shared: Arc<SharedShadowReservation>) -> Self {
        PagedShadow::with_directory(CowDirectory::new(shared))
    }

    /// The reservation this worker reads through.
    pub fn reservation(&self) -> &Arc<SharedShadowReservation> {
        &self.dir.shared
    }
}

impl<D: ShadowDirectory> PagedShadow<D> {
    fn with_directory(dir: D) -> Self {
        PagedShadow {
            dir,
            pages: Vec::new(),
            free_pages: Vec::new(),
            overflow: HashMap::new(),
            live: 0,
        }
    }

    /// Number of committed pages (memory-overhead statistics); excludes
    /// decommitted pages parked on the free list.
    pub fn page_count(&self) -> usize {
        self.pages.len() - self.free_pages.len()
    }

    /// Pages decommitted and awaiting reuse (reclamation statistics).
    pub fn decommitted_pages(&self) -> usize {
        self.free_pages.len()
    }

    #[inline]
    fn table_addr(slot: u64) -> u64 {
        SHADOW_BASE.wrapping_add(slot.wrapping_mul(16))
    }

    /// Commits a page for directory entry `di`, reusing a parked frame
    /// when one is available. Returns the page id.
    ///
    /// Every frame source is already all-zero — parked frames and
    /// pooled shared frames were scrubbed when they left service, fresh
    /// frames come from the zeroed allocator — so commit is pointer
    /// work only: no fill, no memset, regardless of where the frame
    /// came from.
    fn commit_page(&mut self, di: usize) -> u32 {
        let pid = match self.free_pages.pop() {
            Some(pid) => {
                let page = &mut self.pages[(pid - 1) as usize];
                debug_assert!(page.is_clean());
                page.dir_index = di as u32;
                pid
            }
            None => {
                let slots = self.dir.take_frame().unwrap_or_else(zeroed_page);
                self.pages.push(Page::fresh(slots, di as u32));
                self.pages.len() as u32
            }
        };
        self.dir.set(di, pid);
        pid
    }

    /// Decommits the page owning directory entry `di`: its live entries
    /// leave the global count, its written extent is scrubbed back to
    /// all-zero, and its id is parked for reuse. The frame stays owned
    /// — and counted by
    /// [`reservation_bytes`](MetadataFacility::reservation_bytes) —
    /// while parked; decommit unmaps it from the directory, not from
    /// the host. Scrubbing here (the cold path) is what lets
    /// [`commit_page`](Self::commit_page) skip the fill on the warm
    /// path.
    fn decommit_page(&mut self, di: usize, pid: u32) {
        let page = &mut self.pages[(pid - 1) as usize];
        self.live -= page.live as usize;
        page.scrub();
        self.dir.set(di, 0);
        self.free_pages.push(pid);
    }
}

impl Default for ShadowPages {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: ShadowDirectory> MetadataFacility for PagedShadow<D> {
    fn name(&self) -> &'static str {
        D::NAME
    }

    // The check path's devirtualization only pays off if these bodies
    // can cross the crate boundary into the monomorphized machine loop.
    #[inline]
    fn load(&mut self, addr: u64, sink: &mut dyn AccessSink) -> Meta {
        let slot = addr >> 3;
        sink.record(5, Self::table_addr(slot));
        if slot < SHADOW_DIRECT_SLOTS {
            let pid = self.dir.get((slot >> SHADOW_PAGE_BITS) as usize);
            if pid == 0 {
                return Meta::NULL;
            }
            unpack(self.pages[(pid - 1) as usize].slots[(slot & (SHADOW_PAGE_SLOTS - 1)) as usize])
        } else {
            self.overflow.get(&slot).copied().unwrap_or(Meta::NULL)
        }
    }

    #[inline]
    fn store(&mut self, addr: u64, meta: Meta, sink: &mut dyn AccessSink) {
        let slot = addr >> 3;
        sink.record(5, Self::table_addr(slot));
        if slot < SHADOW_DIRECT_SLOTS {
            let di = (slot >> SHADOW_PAGE_BITS) as usize;
            let mut pid = self.dir.get(di);
            if pid == 0 {
                // Null stores into untouched regions need no page.
                if meta.is_null() {
                    return;
                }
                pid = self.commit_page(di);
            }
            let page = &mut self.pages[(pid - 1) as usize];
            let idx = (slot & (SHADOW_PAGE_SLOTS - 1)) as usize;
            let entry = &mut page.slots[idx];
            let was_null = *entry == 0;
            *entry = pack(meta);
            if !meta.is_null() {
                // Null stores write zero and can't widen the nonzero
                // extent, so only live stores advance the dirty span.
                page.note_write(idx);
            }
            match (was_null, meta.is_null()) {
                (true, false) => {
                    page.live += 1;
                    self.live += 1;
                }
                (false, true) => {
                    page.live -= 1;
                    self.live -= 1;
                }
                _ => {}
            }
        } else if meta.is_null() {
            if self.overflow.remove(&slot).is_some() {
                self.live -= 1;
            }
        } else if self.overflow.insert(slot, meta).is_none() {
            self.live += 1;
        }
    }

    /// Range clearing with whole-page reclamation: pages covered end to
    /// end by the range are decommitted in O(1) (after bulk-reporting
    /// the same cost and table addresses the per-slot path would), and
    /// partial pages fall back to per-slot NULL stores — so the
    /// observable metadata map, cost accounting, and cache traffic stay
    /// byte-identical to the HashMap oracle's default implementation.
    fn clear_range(&mut self, addr: u64, len: u64, sink: &mut dyn AccessSink) {
        if len == 0 {
            return;
        }
        let end = addr + len;
        let mut s = addr >> 3;
        let end_slot = end.div_ceil(8);
        while s < end_slot {
            if s >= SHADOW_DIRECT_SLOTS {
                self.store(s << 3, Meta::NULL, sink);
                s += 1;
                continue;
            }
            let page_start = s & !(SHADOW_PAGE_SLOTS - 1);
            let page_end = page_start + SHADOW_PAGE_SLOTS;
            let seg_end = end_slot.min(page_end);
            if s == page_start && seg_end == page_end {
                // Whole page covered: report what the per-slot walk
                // would have, then drop the page in one motion.
                sink.add_cost(5 * SHADOW_PAGE_SLOTS);
                if sink.wants_addresses() {
                    for slot in s..seg_end {
                        sink.touch(Self::table_addr(slot));
                    }
                }
                let di = (s >> SHADOW_PAGE_BITS) as usize;
                let pid = self.dir.get(di);
                if pid != 0 {
                    self.decommit_page(di, pid);
                }
            } else {
                for slot in s..seg_end {
                    self.store(slot << 3, Meta::NULL, sink);
                }
            }
            s = seg_end;
        }
    }

    fn live_entries(&self) -> usize {
        self.live
    }

    /// Directory (shared + private spans) + page frames (committed
    /// *and* parked — a parked frame is still owned host memory) + the
    /// overflow map's actual bucket layout. With the flat directory
    /// this is dominated by the private 256 MiB span, which is why a
    /// per-worker facility dominates a fleet's footprint; the shared
    /// directory pins the same 256 MiB once per process instead (see
    /// [`shared_reservation_bytes`](MetadataFacility::shared_reservation_bytes)).
    fn reservation_bytes(&self) -> usize {
        let dir = self.dir.private_bytes() + self.dir.shared_bytes();
        let pages = self
            .pages
            .iter()
            .map(|p| p.slots.len() * std::mem::size_of::<u128>())
            .sum::<usize>();
        dir + pages + hash_map_reservation_bytes(&self.overflow)
    }

    fn shared_reservation_bytes(&self) -> usize {
        self.dir.shared_bytes()
    }

    /// Decommits every page, zeroing only the directory entries that
    /// were actually used — the directory reservation stays mapped for
    /// the next run (and materialized shared-directory chunks stay
    /// materialized). Every frame is scrubbed back to all-zero (only
    /// its written extent is touched) so recommit needs no fill.
    ///
    /// What happens to the scrubbed frames depends on the directory:
    /// a private facility *parks* them locally — a warm instance's
    /// reset → recommit churn must never touch the host allocator, so
    /// the frames stay owned (and counted by
    /// [`reservation_bytes`](MetadataFacility::reservation_bytes)) —
    /// while a shared facility (`D::SHARES_FRAMES`) returns them to
    /// the reservation's bounded frame pool, so an idle worker holds
    /// no frames of its own and an 8-worker fleet's standing
    /// reservation stays within a pool's width of a single worker's.
    fn reset(&mut self) {
        self.free_pages.clear();
        if D::SHARES_FRAMES {
            for mut page in self.pages.drain(..) {
                self.dir.set(page.dir_index as usize, 0);
                page.scrub();
                self.dir.stash_frame(page.slots);
            }
        } else {
            for (i, page) in self.pages.iter_mut().enumerate() {
                self.dir.set(page.dir_index as usize, 0);
                page.scrub();
                self.free_pages.push(i as u32 + 1);
            }
        }
        self.overflow.clear();
        self.live = 0;
    }
}

/// The previous HashMap-backed shadow-space *simulation*, kept as the
/// slow comparison point (§5.1 microbenchmark) and as an oracle for
/// differential tests: costs and simulated table addresses match
/// [`ShadowPages`] exactly; only the host data structure differs.
#[derive(Debug, Default)]
pub struct ShadowHashMapFacility {
    entries: HashMap<u64, Meta>,
}

impl ShadowHashMapFacility {
    /// Creates an empty shadow space.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetadataFacility for ShadowHashMapFacility {
    fn name(&self) -> &'static str {
        "shadow-hashmap"
    }

    #[inline]
    fn load(&mut self, addr: u64, sink: &mut dyn AccessSink) -> Meta {
        let slot = addr >> 3;
        sink.record(5, ShadowPages::table_addr(slot));
        self.entries.get(&slot).copied().unwrap_or(Meta::NULL)
    }

    #[inline]
    fn store(&mut self, addr: u64, meta: Meta, sink: &mut dyn AccessSink) {
        let slot = addr >> 3;
        sink.record(5, ShadowPages::table_addr(slot));
        if meta.is_null() {
            self.entries.remove(&slot);
        } else {
            self.entries.insert(slot, meta);
        }
    }

    fn live_entries(&self) -> usize {
        self.entries.len()
    }

    /// The HashMap's actual bucket layout (sized from `capacity`); no
    /// standing reservation beyond the table.
    fn reservation_bytes(&self) -> usize {
        hash_map_reservation_bytes(&self.entries)
    }

    fn reset(&mut self) {
        self.entries.clear();
    }
}

/// The open-hashing organization (§5.1 "Hash table").
///
/// Entries are 24-byte (tag, base, bound) triples; the hash is the
/// double-word address modulo a power-of-two table size (shift + mask).
/// Collisions chain; each extra probe costs 3 instructions and touches
/// another table line, which is how this organization loses to the shadow
/// space on pointer-dense workloads.
#[derive(Debug)]
pub struct HashTableFacility {
    buckets: Vec<Vec<(u64, Meta)>>, // (slot-tag, meta)
    mask: u64,
    live: usize,
    /// Total probes beyond the first (collision statistics).
    pub extra_probes: u64,
}

impl HashTableFacility {
    /// Creates a table with `1 << log2_buckets` buckets (default 20 —
    /// "sizing the table large enough to keep average utilization low").
    pub fn new(log2_buckets: u32) -> Self {
        let n = 1usize << log2_buckets;
        HashTableFacility {
            buckets: vec![Vec::new(); n],
            mask: n as u64 - 1,
            live: 0,
            extra_probes: 0,
        }
    }

    fn bucket_addr(&self, b: u64, depth: u64) -> u64 {
        HASHTABLE_BASE + b * 24 + depth * (self.mask + 1) * 24
    }
}

impl Default for HashTableFacility {
    fn default() -> Self {
        Self::new(20)
    }
}

impl MetadataFacility for HashTableFacility {
    fn name(&self) -> &'static str {
        "hash-table"
    }

    fn load(&mut self, addr: u64, sink: &mut dyn AccessSink) -> Meta {
        let slot = addr >> 3;
        let b = slot & self.mask;
        sink.record(9, self.bucket_addr(b, 0));
        let chain = &self.buckets[b as usize];
        for (depth, (tag, meta)) in chain.iter().enumerate() {
            if *tag == slot {
                if depth > 0 {
                    sink.add_cost(3 * depth as u64);
                    self.extra_probes += depth as u64;
                    let addr = self.bucket_addr(b, depth as u64);
                    sink.touch(addr);
                }
                return *meta;
            }
        }
        let extra = chain.len().saturating_sub(1) as u64;
        sink.add_cost(3 * extra);
        self.extra_probes += extra;
        Meta::NULL
    }

    fn store(&mut self, addr: u64, meta: Meta, sink: &mut dyn AccessSink) {
        let slot = addr >> 3;
        let b = slot & self.mask;
        sink.record(9, self.bucket_addr(b, 0));
        let chain = &mut self.buckets[b as usize];
        if let Some(pos) = chain.iter().position(|(tag, _)| *tag == slot) {
            if pos > 0 {
                sink.add_cost(3 * pos as u64);
                self.extra_probes += pos as u64;
            }
            if meta.is_null() {
                chain.swap_remove(pos);
                self.live -= 1;
            } else {
                chain[pos].1 = meta;
            }
        } else if !meta.is_null() {
            let extra = chain.len() as u64;
            sink.add_cost(3 * extra);
            self.extra_probes += extra;
            chain.push((slot, meta));
            self.live += 1;
        }
    }

    fn live_entries(&self) -> usize {
        self.live
    }

    /// Bucket array (kept across resets) plus chain capacities.
    fn reservation_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<Vec<(u64, Meta)>>()
            + self
                .buckets
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<(u64, Meta)>())
                .sum::<usize>()
    }

    /// Empties every chain in place — the bucket array keeps its
    /// capacity, so a reused table skips re-sizing on the next run.
    fn reset(&mut self) {
        for chain in &mut self.buckets {
            chain.clear();
        }
        self.live = 0;
        self.extra_probes = 0;
    }
}

// Fleet workers hold a facility each; the shared reservation crosses
// threads by design. Compile-time proof both are Send + Sync.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedShadowReservation>();
    assert_send_sync::<SharedShadowPages>();
    assert_send_sync::<ShadowPages>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(fac: &mut dyn MetadataFacility) {
        let mut sink = ScratchSink::new();
        let m = Meta {
            base: 0x1000,
            bound: 0x1040,
        };
        assert_eq!(fac.load(0x2000, &mut sink), Meta::NULL);
        fac.store(0x2000, m, &mut sink);
        assert_eq!(fac.load(0x2000, &mut sink), m);
        assert_eq!(
            fac.load(0x2008, &mut sink),
            Meta::NULL,
            "adjacent slot distinct"
        );
        fac.store(0x2000, Meta::NULL, &mut sink);
        assert_eq!(fac.load(0x2000, &mut sink), Meta::NULL);
        assert_eq!(fac.live_entries(), 0);
    }

    #[test]
    fn shadow_paged_roundtrip() {
        roundtrip(&mut ShadowPages::new());
    }

    #[test]
    fn shadow_shared_roundtrip() {
        // Over a fresh reservation and over the process-wide one.
        roundtrip(&mut SharedShadowPages::with_reservation(
            SharedShadowReservation::new(),
        ));
        roundtrip(&mut SharedShadowPages::new_shared());
    }

    #[test]
    fn shadow_hashmap_roundtrip() {
        roundtrip(&mut ShadowHashMapFacility::new());
    }

    #[test]
    fn hash_roundtrip() {
        roundtrip(&mut HashTableFacility::new(10));
    }

    #[test]
    fn shadow_costs_five() {
        for fac in [
            &mut ShadowPages::new() as &mut dyn MetadataFacility,
            &mut SharedShadowPages::new_shared(),
            &mut ShadowHashMapFacility::new(),
        ] {
            let mut sink = ScratchSink::new();
            fac.load(0x4000, &mut sink);
            assert_eq!(sink.cost, 5, "paper: shadow lookup ≈ 5 instructions");
            assert_eq!(sink.touched.len(), 1);
        }
    }

    #[test]
    fn hash_costs_nine_no_collision() {
        let mut f = HashTableFacility::new(16);
        let mut sink = ScratchSink::new();
        f.load(0x4000, &mut sink);
        assert_eq!(sink.cost, 9, "paper: hash lookup ≈ 9 instructions");
    }

    #[test]
    fn hash_collisions_cost_extra() {
        // 4-bucket table: slots 0 and 16 collide (slot = addr>>3).
        let mut f = HashTableFacility::new(2);
        let mut sink = ScratchSink::new();
        let m = Meta { base: 1, bound: 2 };
        f.store(0x0, m, &mut sink); // slot 0, bucket 0
        f.store(0x80, m, &mut sink); // slot 16, bucket 0 → chained
        sink.reset();
        f.load(0x80, &mut sink);
        assert_eq!(
            sink.cost,
            9 + 3,
            "second chain position costs one extra probe"
        );
        assert!(f.extra_probes > 0);
    }

    #[test]
    fn noop_sink_records_nothing() {
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        f.store(0x2000, Meta { base: 1, bound: 2 }, &mut sink);
        assert_eq!(f.load(0x2000, &mut sink), Meta { base: 1, bound: 2 });
        assert!(!AccessSink::wants_addresses(&sink));
    }

    #[test]
    fn facilities_agree_randomized() {
        // Property: all four organizations implement the same map. The
        // HashMap shadow is the oracle; the paged shadows (private and
        // shared-reservation) and the (tiny, collision-heavy) hash table
        // must agree with it after a churn of overwrites and deletions.
        let mut paged = ShadowPages::new();
        let mut shared = SharedShadowPages::new_shared();
        let mut oracle = ShadowHashMapFacility::new();
        let mut ht = HashTableFacility::new(6); // tiny → lots of collisions
        let mut sink = ScratchSink::new();
        let mut state = 0x12345u64;
        let mut addrs = Vec::new();
        for i in 0..3000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (state % 4096) & !7;
            // A third of the stores are deletions (NULL metadata).
            let meta = if i % 3 == 0 {
                Meta::NULL
            } else {
                Meta {
                    base: i * 16,
                    bound: i * 16 + 64,
                }
            };
            paged.store(addr, meta, &mut sink);
            shared.store(addr, meta, &mut sink);
            oracle.store(addr, meta, &mut sink);
            ht.store(addr, meta, &mut sink);
            addrs.push(addr);
        }
        for addr in addrs {
            let expected = oracle.load(addr, &mut sink);
            assert_eq!(
                paged.load(addr, &mut sink),
                expected,
                "paged diverged at {addr:#x}"
            );
            assert_eq!(
                shared.load(addr, &mut sink),
                expected,
                "shared diverged at {addr:#x}"
            );
            assert_eq!(
                ht.load(addr, &mut sink),
                expected,
                "hash diverged at {addr:#x}"
            );
        }
        assert_eq!(paged.live_entries(), oracle.live_entries());
        assert_eq!(shared.live_entries(), oracle.live_entries());
        assert_eq!(ht.live_entries(), oracle.live_entries());
    }

    #[test]
    fn sparse_addresses_hit_distinct_pages() {
        // Widely separated addresses — the VM's global/heap/stack regions,
        // page-boundary straddles, and beyond-47-bit overflow — must land
        // in distinct directory entries without aliasing.
        let mut f = ShadowPages::new();
        let mut sink = ScratchSink::new();
        let page_span = 8 << SHADOW_PAGE_BITS; // addresses covered per page
        let addrs: Vec<u64> = vec![
            0x0000_0000_0001_0000, // GLOBAL_BASE
            0x0000_2000_0000_0000, // HEAP_BASE
            0x0000_7F00_0000_0000, // STACK_BASE
            0x0000_4000_0000_0000, // FN_BASE
            page_span - 8,         // last slot of page 0
            page_span,             // first slot of page 1
            37 * page_span + 1024, // interior of a far page
            (1 << 47) - 8,         // last directly-mapped slot
            1 << 47,               // first overflow slot
            !7u64,                 // extreme overflow (highest aligned slot)
        ];
        for (i, &a) in addrs.iter().enumerate() {
            let meta = Meta {
                base: i as u64 + 1,
                bound: i as u64 + 100,
            };
            f.store(a, meta, &mut sink);
        }
        for (i, &a) in addrs.iter().enumerate() {
            let expected = Meta {
                base: i as u64 + 1,
                bound: i as u64 + 100,
            };
            assert_eq!(f.load(a, &mut sink), expected, "aliased at {a:#x}");
        }
        assert_eq!(f.live_entries(), addrs.len());
        // Adjacent-but-cross-page slots must not have merged.
        assert!(
            f.page_count() >= 6,
            "expected many distinct pages, got {}",
            f.page_count()
        );
        // Clearing restores emptiness (exercises overflow removal too).
        for &a in &addrs {
            f.store(a, Meta::NULL, &mut sink);
        }
        assert_eq!(f.live_entries(), 0);
    }

    #[test]
    fn null_stores_do_not_materialize_pages() {
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        f.store(0x5000, Meta::NULL, &mut sink);
        f.clear_range(0x9000, 256, &mut sink);
        assert_eq!(f.page_count(), 0, "null stores must not commit pages");
        assert_eq!(f.live_entries(), 0);
    }

    #[test]
    fn clear_range_wipes_slots() {
        let mut f = ShadowPages::new();
        let mut sink = ScratchSink::new();
        for i in 0..8 {
            f.store(0x3000 + i * 8, Meta { base: 1, bound: 2 }, &mut sink);
        }
        f.clear_range(0x3000, 32, &mut sink);
        assert_eq!(f.live_entries(), 4, "only the first 4 slots cleared");
    }

    #[test]
    fn copy_range_moves_metadata() {
        let mut f = ShadowPages::new();
        let mut sink = ScratchSink::new();
        let m = Meta {
            base: 0x10,
            bound: 0x20,
        };
        f.store(0x5000, m, &mut sink);
        f.store(
            0x5008,
            Meta {
                base: 0x30,
                bound: 0x40,
            },
            &mut sink,
        );
        f.copy_range(0x6000, 0x5000, 16, &mut sink);
        assert_eq!(f.load(0x6000, &mut sink), m);
        assert_eq!(f.load(0x6008, &mut sink).base, 0x30);
    }

    #[test]
    fn copy_range_unaligned_len_copies_each_slot_once() {
        // Regression for the old convoluted slot loop: a 12-byte memcpy
        // must copy the slots at offsets 0 and 8 exactly once each (two
        // loads + two stores = 4 shadow accesses, 20 cost units) and must
        // not touch the slot at offset 16.
        for fac in [
            &mut ShadowPages::new() as &mut dyn MetadataFacility,
            &mut ShadowHashMapFacility::new(),
        ] {
            let mut sink = ScratchSink::new();
            fac.store(0x5000, Meta { base: 1, bound: 2 }, &mut sink);
            fac.store(0x5008, Meta { base: 3, bound: 4 }, &mut sink);
            fac.store(0x5010, Meta { base: 5, bound: 6 }, &mut sink);
            sink.reset();
            fac.copy_range(0x6000, 0x5000, 12, &mut sink);
            assert_eq!(
                sink.cost,
                4 * 5,
                "2 loads + 2 stores at 5 each: {}",
                sink.cost
            );
            assert_eq!(sink.touched.len(), 4);
            assert_eq!(fac.load(0x6000, &mut sink), Meta { base: 1, bound: 2 });
            assert_eq!(fac.load(0x6008, &mut sink), Meta { base: 3, bound: 4 });
            assert_eq!(
                fac.load(0x6010, &mut sink),
                Meta::NULL,
                "slot past len untouched"
            );
        }
    }

    /// Bytes of simulated address space covered by one shadow page.
    const PAGE_SPAN: u64 = 8 << SHADOW_PAGE_BITS;

    /// Runs the same mutation script against the paged shadows (private
    /// flat directory and shared-reservation overlay) and the HashMap
    /// oracle, then asserts all agree on every probed address and on
    /// the live-entry count.
    fn differential(
        script: impl Fn(&mut dyn MetadataFacility, &mut dyn AccessSink),
        probes: &[u64],
    ) {
        let mut paged = ShadowPages::new();
        let mut shared = SharedShadowPages::new_shared();
        let mut oracle = ShadowHashMapFacility::new();
        let mut sink = NoopSink;
        script(&mut paged, &mut sink);
        script(&mut shared, &mut sink);
        script(&mut oracle, &mut sink);
        for &a in probes {
            let expected = oracle.load(a, &mut sink);
            assert_eq!(
                paged.load(a, &mut sink),
                expected,
                "paged diverged from oracle at {a:#x}"
            );
            assert_eq!(
                shared.load(a, &mut sink),
                expected,
                "shared diverged from oracle at {a:#x}"
            );
        }
        assert_eq!(paged.live_entries(), oracle.live_entries());
        assert_eq!(shared.live_entries(), oracle.live_entries());
    }

    #[test]
    fn clear_range_across_directory_entries() {
        // A span straddling the page-0/page-1 boundary clears slots in
        // *two* directory entries; neighbours on either side survive.
        let lo = PAGE_SPAN - 32; // last 4 slots of page 0
        let probes: Vec<u64> = (0..12).map(|i| lo - 16 + i * 8).collect();
        differential(
            |f, sink| {
                for i in 0..12 {
                    f.store(lo - 16 + i * 8, Meta { base: 1, bound: 2 }, sink);
                }
                f.clear_range(lo, 64, sink); // 4 slots each side of the boundary
            },
            &probes,
        );
        // Direct structural claim: both pages stayed materialized and
        // exactly the 4 surviving neighbours remain.
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        for i in 0..12 {
            f.store(lo - 16 + i * 8, Meta { base: 1, bound: 2 }, &mut sink);
        }
        assert_eq!(f.page_count(), 2);
        f.clear_range(lo, 64, &mut sink);
        assert_eq!(f.live_entries(), 4);
        assert_eq!(f.load(lo - 16, &mut sink), Meta { base: 1, bound: 2 });
        assert_eq!(f.load(lo + 64, &mut sink), Meta { base: 1, bound: 2 });
    }

    #[test]
    fn copy_range_across_directory_entries() {
        // Source sits at the end of page 0, destination at the start of
        // page 37: the copy reads and writes across directory entries.
        let src = PAGE_SPAN - 24;
        let dst = 37 * PAGE_SPAN;
        let probes: Vec<u64> = (0..6).flat_map(|i| [src + i * 8, dst + i * 8]).collect();
        differential(
            |f, sink| {
                for i in 0..6u64 {
                    f.store(
                        src + i * 8,
                        Meta {
                            base: 10 + i,
                            bound: 100 + i,
                        },
                        sink,
                    );
                }
                f.copy_range(dst, src, 48, sink);
            },
            &probes,
        );
    }

    #[test]
    fn whole_page_clear_empties_exactly_one_page() {
        // Populate all of page 1 plus one sentinel slot on each
        // neighbouring page, clear exactly page 1, and check the paged
        // map against the oracle on the boundary slots.
        let page1 = PAGE_SPAN;
        let stride = 512; // sample the page rather than all 256Ki slots
        differential(
            |f, sink| {
                f.store(page1 - 8, Meta { base: 7, bound: 8 }, sink);
                f.store(2 * PAGE_SPAN, Meta { base: 9, bound: 10 }, sink);
                let mut a = page1;
                while a < 2 * PAGE_SPAN {
                    f.store(
                        a,
                        Meta {
                            base: a,
                            bound: a + 8,
                        },
                        sink,
                    );
                    a += stride;
                }
                f.clear_range(page1, PAGE_SPAN, sink);
            },
            &[
                page1 - 8,
                page1,
                page1 + stride,
                2 * PAGE_SPAN - stride,
                2 * PAGE_SPAN,
            ],
        );
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        let mut a = page1;
        while a < 2 * PAGE_SPAN {
            f.store(a, Meta { base: 1, bound: 2 }, &mut sink);
            a += stride;
        }
        f.store(page1 - 8, Meta { base: 7, bound: 8 }, &mut sink);
        f.clear_range(page1, PAGE_SPAN, &mut sink);
        assert_eq!(f.live_entries(), 1, "only the page-0 sentinel survives");
    }

    #[test]
    fn zero_length_ops_touch_nothing() {
        // Aligned and unaligned zero-length clears and copies are no-ops
        // on both organizations — including the rounded-down slot of an
        // unaligned address.
        let probes = [0x5000u64, 0x5008, PAGE_SPAN - 8, PAGE_SPAN];
        differential(
            |f, sink| {
                for &a in &probes {
                    f.store(a, Meta { base: 3, bound: 4 }, sink);
                }
                f.clear_range(0x5000, 0, sink);
                f.clear_range(0x5004, 0, sink); // unaligned
                f.clear_range(PAGE_SPAN - 1, 0, sink); // unaligned at a boundary
                f.copy_range(0x6000, 0x5000, 0, sink);
            },
            &probes,
        );
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        f.store(0x5000, Meta { base: 3, bound: 4 }, &mut sink);
        f.clear_range(0x5004, 0, &mut sink);
        assert_eq!(
            f.load(0x5000, &mut sink),
            Meta { base: 3, bound: 4 },
            "unaligned zero-length clear must not wipe the containing slot"
        );
    }

    #[test]
    fn whole_page_clear_decommits_and_reuses_page_ids() {
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        // Populate pages 1 and 2 plus a sentinel on page 0.
        f.store(8, Meta { base: 1, bound: 2 }, &mut sink);
        for p in 1..3u64 {
            let mut a = p * PAGE_SPAN;
            while a < (p + 1) * PAGE_SPAN {
                f.store(
                    a,
                    Meta {
                        base: a,
                        bound: a + 8,
                    },
                    &mut sink,
                );
                a += 1024;
            }
        }
        assert_eq!(f.page_count(), 3);
        assert_eq!(f.decommitted_pages(), 0);
        let live_before = f.live_entries();

        // Clearing page 1 end to end decommits it in one motion.
        f.clear_range(PAGE_SPAN, PAGE_SPAN, &mut sink);
        assert_eq!(f.page_count(), 2, "page 1 must be decommitted");
        assert_eq!(f.decommitted_pages(), 1);
        assert_eq!(
            f.live_entries(),
            live_before - (PAGE_SPAN / 1024) as usize,
            "exactly page 1's entries left the live count"
        );
        assert_eq!(f.load(PAGE_SPAN, &mut sink), Meta::NULL);
        assert_eq!(f.load(PAGE_SPAN + 1024, &mut sink), Meta::NULL);
        assert_eq!(f.load(8, &mut sink), Meta { base: 1, bound: 2 });

        // The next first-touch — anywhere — reuses the parked page id
        // instead of growing the page vector.
        f.store(
            37 * PAGE_SPAN,
            Meta {
                base: 0x10,
                bound: 0x20,
            },
            &mut sink,
        );
        assert_eq!(f.decommitted_pages(), 0, "parked id was reused");
        assert_eq!(f.page_count(), 3);
        assert_eq!(
            f.load(37 * PAGE_SPAN, &mut sink),
            Meta {
                base: 0x10,
                bound: 0x20
            }
        );
        assert_eq!(
            f.load(37 * PAGE_SPAN + 8, &mut sink),
            Meta::NULL,
            "recommitted page starts zeroed"
        );
    }

    #[test]
    fn page_reclamation_differential_random_churn() {
        // Pseudo-random stores interleaved with clears — partial spans,
        // page-straddling spans, and multi-whole-page spans (which the
        // paged side serves by decommit) — must leave both organizations
        // with identical maps and live counts.
        let addr_of = |state: u64| (state % (5 * PAGE_SPAN)) & !7;
        let probes: Vec<u64> = {
            let mut v: Vec<u64> = (0..5 * PAGE_SPAN / 8).step_by(997).map(|s| s * 8).collect();
            v.extend([
                0,
                PAGE_SPAN - 8,
                PAGE_SPAN,
                4 * PAGE_SPAN,
                5 * PAGE_SPAN - 8,
            ]);
            v
        };
        differential(
            |f, sink| {
                let mut state = 0xfeed_beefu64;
                for i in 0..1500u64 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let addr = addr_of(state);
                    if i % 149 == 0 {
                        // Clear a whole page (the decommit path). Rare,
                        // because the oracle pays a per-slot walk.
                        f.clear_range((addr / PAGE_SPAN) * PAGE_SPAN, PAGE_SPAN, sink);
                    } else if i % 599 == 1 {
                        // Two whole pages plus a partial tail.
                        f.clear_range((addr / PAGE_SPAN) * PAGE_SPAN, 2 * PAGE_SPAN + 72, sink);
                    } else if i % 13 == 5 {
                        // A span straddling up to two pages.
                        f.clear_range(addr, (state >> 33) % 512 + 1, sink);
                    } else {
                        f.store(
                            addr,
                            Meta {
                                base: i + 1,
                                bound: i + 101,
                            },
                            sink,
                        );
                    }
                }
            },
            &probes,
        );
    }

    #[test]
    fn whole_page_clear_cost_matches_oracle() {
        // The decommit fast path must report exactly the cost and table
        // traffic the oracle's per-slot walk reports, or the cycle
        // equality the machine differential suite asserts would break.
        let mut paged = ShadowPages::new();
        let mut oracle = ShadowHashMapFacility::new();
        let mut setup = NoopSink;
        for f in [
            &mut paged as &mut dyn MetadataFacility,
            &mut oracle as &mut dyn MetadataFacility,
        ] {
            f.store(PAGE_SPAN + 64, Meta { base: 1, bound: 2 }, &mut setup);
        }
        // A span covering all of page 1 plus 3 slots of page 2.
        let mut ps = ScratchSink::new();
        paged.clear_range(PAGE_SPAN, PAGE_SPAN + 24, &mut ps);
        let mut os = ScratchSink::new();
        oracle.clear_range(PAGE_SPAN, PAGE_SPAN + 24, &mut os);
        assert_eq!(ps.cost, os.cost, "decommit fast path cost diverged");
        assert_eq!(ps.touched, os.touched, "table traffic diverged");
        assert_eq!(paged.decommitted_pages(), 1, "page 1 was decommitted");
    }

    #[test]
    fn reset_empties_every_facility_and_reuses_reservation() {
        for fac in [
            &mut ShadowPages::new() as &mut dyn MetadataFacility,
            &mut SharedShadowPages::new_shared(),
            &mut ShadowHashMapFacility::new(),
            &mut HashTableFacility::new(8),
        ] {
            let mut sink = NoopSink;
            for i in 0..64u64 {
                fac.store(
                    0x8000 + i * 8,
                    Meta {
                        base: i + 1,
                        bound: i + 2,
                    },
                    &mut sink,
                );
            }
            fac.store(1 << 50, Meta { base: 9, bound: 10 }, &mut sink);
            assert_eq!(fac.live_entries(), 65, "{}", fac.name());
            fac.reset();
            assert_eq!(
                fac.live_entries(),
                0,
                "{} not empty after reset",
                fac.name()
            );
            assert_eq!(fac.load(0x8000, &mut sink), Meta::NULL, "{}", fac.name());
            assert_eq!(fac.load(1 << 50, &mut sink), Meta::NULL, "{}", fac.name());
            // The facility stays fully usable after reset.
            fac.store(0x8000, Meta { base: 3, bound: 4 }, &mut sink);
            assert_eq!(fac.load(0x8000, &mut sink), Meta { base: 3, bound: 4 });
            assert_eq!(fac.live_entries(), 1);
        }

        // Paged specifics: every frame is parked (committed count drops
        // to zero, nothing is freed), and the directory reservation is
        // not reallocated (its pointer is stable across reset).
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        f.store(0x9000, Meta { base: 1, bound: 2 }, &mut sink);
        f.clear_range(0, 2 * PAGE_SPAN, &mut sink); // park a page id too
        f.store(5 * PAGE_SPAN, Meta { base: 5, bound: 6 }, &mut sink);
        let dir_ptr = f.dir.dir.as_ptr();
        f.reset();
        assert_eq!(f.page_count(), 0);
        assert_eq!(f.decommitted_pages(), 1);
        assert_eq!(f.live_entries(), 0);
        assert!(
            std::ptr::eq(dir_ptr, f.dir.dir.as_ptr()),
            "directory reallocated"
        );
        // Every directory entry that was used is zero again.
        assert_eq!(f.load(0x9000, &mut sink), Meta::NULL);
        assert_eq!(f.load(5 * PAGE_SPAN, &mut sink), Meta::NULL);
    }

    #[test]
    fn copy_range_zero_len_is_noop() {
        let mut f = ShadowPages::new();
        let mut sink = ScratchSink::new();
        f.store(0x5000, Meta { base: 1, bound: 2 }, &mut sink);
        sink.reset();
        f.copy_range(0x6000, 0x5000, 0, &mut sink);
        assert_eq!(sink.cost, 0);
        assert_eq!(f.load(0x6000, &mut sink), Meta::NULL);
    }

    #[test]
    fn reservation_accounting_pinned_across_churn() {
        // Pins `reservation_bytes` across a commit → whole-page-clear
        // decommit → recommit cycle: parked frames are still owned host
        // memory and must never fall out of (or double into) the count.
        const PAGE_BYTES: usize = (SHADOW_PAGE_SLOTS as usize) * std::mem::size_of::<u128>();
        let mut f = ShadowPages::new();
        let mut sink = NoopSink;
        let idle = f.reservation_bytes();
        assert_eq!(
            idle,
            (1usize << SHADOW_DIR_BITS) * std::mem::size_of::<u32>()
        );

        f.store(0x100, Meta { base: 1, bound: 2 }, &mut sink);
        assert_eq!(f.reservation_bytes(), idle + PAGE_BYTES);

        // Whole-page clear decommits the page; the parked frame stays
        // owned and counted.
        f.clear_range(0, PAGE_SPAN, &mut sink);
        assert_eq!(f.decommitted_pages(), 1);
        assert_eq!(
            f.reservation_bytes(),
            idle + PAGE_BYTES,
            "parked frame fell out of the accounting"
        );

        // Recommit — at a different directory entry — reuses the parked
        // frame: no growth, no allocator traffic.
        f.store(37 * PAGE_SPAN, Meta { base: 3, bound: 4 }, &mut sink);
        assert_eq!(f.decommitted_pages(), 0);
        assert_eq!(f.page_count(), 1);
        assert_eq!(f.reservation_bytes(), idle + PAGE_BYTES);

        // A second page is genuinely new memory.
        f.store(0x100, Meta { base: 5, bound: 6 }, &mut sink);
        assert_eq!(f.reservation_bytes(), idle + 2 * PAGE_BYTES);

        // Overflow entries count at the map's actual bucket layout, and
        // the standing estimate must not shrink when an entry is
        // removed — the table keeps its buckets.
        f.store(1 << 50, Meta { base: 7, bound: 8 }, &mut sink);
        let with_overflow = f.reservation_bytes();
        assert!(with_overflow > idle + 2 * PAGE_BYTES, "overflow uncounted");
        f.store(1 << 50, Meta::NULL, &mut sink);
        assert_eq!(
            f.reservation_bytes(),
            with_overflow,
            "standing overflow reservation vanished on remove (len-based estimate)"
        );

        // Reset parks every frame — still owned, still counted, never
        // returned to the host — and keeps the directory reservation
        // and the overflow map's buckets: a warm idle worker's standing
        // cost.
        f.reset();
        assert_eq!(f.live_entries(), 0);
        assert_eq!(f.decommitted_pages(), 2);
        assert_eq!(
            f.reservation_bytes(),
            with_overflow,
            "reset must park frames, not free them"
        );

        // And the next run's first store reuses a parked frame: the
        // reservation is flat across reset churn.
        f.store(0x100, Meta { base: 9, bound: 10 }, &mut sink);
        assert_eq!(f.page_count(), 1);
        assert_eq!(f.decommitted_pages(), 1);
        assert_eq!(f.reservation_bytes(), with_overflow);
    }

    #[test]
    fn shared_reservation_counted_once_per_process() {
        let shared = SharedShadowReservation::new();
        let mut a = SharedShadowPages::with_reservation(shared.clone());
        let b = SharedShadowPages::with_reservation(shared.clone());
        let mut sink = NoopSink;
        let dir_bytes = shared.shared_bytes();
        assert_eq!(
            dir_bytes,
            (1usize << SHADOW_DIR_BITS) * 4 + SharedShadowReservation::frame_pool_capacity_bytes()
        );

        // Both workers report the full reservation (they depend on it),
        // flagging the shared portion so a pool counts it once.
        assert_eq!(a.shared_reservation_bytes(), dir_bytes);
        assert_eq!(b.shared_reservation_bytes(), dir_bytes);

        // An untouched worker owns almost nothing privately — the chunk
        // root, vs. the 256 MiB flat directory of `ShadowPages`.
        let idle_private = b.reservation_bytes() - b.shared_reservation_bytes();
        assert!(idle_private < 1 << 20, "idle private bytes: {idle_private}");

        // Touching a page charges the frame + one directory chunk to
        // that worker alone.
        a.store(0x2000, Meta { base: 1, bound: 2 }, &mut sink);
        let a_private = a.reservation_bytes() - a.shared_reservation_bytes();
        assert!(a_private > idle_private);
        assert_eq!(
            b.reservation_bytes() - b.shared_reservation_bytes(),
            idle_private,
            "sibling charged for another worker's page"
        );
    }

    #[test]
    fn shared_reset_returns_frames_to_the_pool() {
        const PAGE_BYTES: usize = (SHADOW_PAGE_SLOTS as usize) * std::mem::size_of::<u128>();
        let shared = SharedShadowReservation::new();
        let mut a = SharedShadowPages::with_reservation(shared.clone());
        let mut b = SharedShadowPages::with_reservation(shared.clone());
        let mut sink = NoopSink;
        a.store(0x2000, Meta { base: 1, bound: 2 }, &mut sink);
        a.store(37 * PAGE_SPAN, Meta { base: 3, bound: 4 }, &mut sink);
        let committed = a.reservation_bytes() - a.shared_reservation_bytes();

        // Reset hands both frames to the reservation's pool: the
        // worker's private bytes drop back to chunk-root bookkeeping,
        // and the shared figure (pool counted at capacity) is
        // unchanged — pool occupancy never shows up as churn.
        let shared_before = shared.shared_bytes();
        a.reset();
        let idle = a.reservation_bytes() - a.shared_reservation_bytes();
        assert_eq!(
            idle + 2 * PAGE_BYTES,
            committed,
            "frames still charged to the worker after reset"
        );
        assert_eq!(a.decommitted_pages(), 0, "shared reset must pool, not park");
        assert_eq!(shared.shared_bytes(), shared_before);

        // A sibling's next commit drains the pool instead of touching
        // the host allocator: one of the two stashed frames goes to
        // `b`, the other is still pooled.
        b.store(0x2000, Meta { base: 5, bound: 6 }, &mut sink);
        assert_eq!(b.load(0x2000, &mut sink), Meta { base: 5, bound: 6 });
        assert!(shared.take_frame().is_some(), "reset did not stash frames");
        assert!(
            shared.take_frame().is_none(),
            "pool held more than expected"
        );
    }

    #[test]
    fn shared_reset_does_not_disturb_siblings() {
        let shared = SharedShadowReservation::new();
        let mut a = SharedShadowPages::with_reservation(shared.clone());
        let mut b = SharedShadowPages::with_reservation(shared);
        let mut sink = NoopSink;
        let m = Meta {
            base: 0x10,
            bound: 0x20,
        };
        // Identical simulated addresses on purpose: worker overlays
        // must not alias each other through the shared prototype.
        a.store(0x3000, m, &mut sink);
        b.store(
            0x3000,
            Meta {
                base: 0x30,
                bound: 0x40,
            },
            &mut sink,
        );
        b.store(5 * PAGE_SPAN, m, &mut sink);
        a.reset();
        assert_eq!(a.live_entries(), 0);
        assert_eq!(a.load(0x3000, &mut sink), Meta::NULL);
        assert_eq!(b.live_entries(), 2, "sibling lost entries to a reset");
        assert_eq!(
            b.load(0x3000, &mut sink),
            Meta {
                base: 0x30,
                bound: 0x40
            }
        );
        assert_eq!(b.load(5 * PAGE_SPAN, &mut sink), m);
    }

    #[test]
    fn cow_chunks_materialize_on_first_commit_only() {
        let mut f = SharedShadowPages::with_reservation(SharedShadowReservation::new());
        let mut sink = NoopSink;
        let root_only = f.dir.private_bytes();
        // Loads and NULL stores read through the shared prototype
        // without materializing anything.
        assert_eq!(f.load(0x4000, &mut sink), Meta::NULL);
        f.store(0x4000, Meta::NULL, &mut sink);
        f.clear_range(0, 4 * PAGE_SPAN, &mut sink);
        assert_eq!(
            f.dir.private_bytes(),
            root_only,
            "read/NULL paths materialized a chunk"
        );
        // The first real store commits a page and one directory chunk;
        // a second store under the same chunk reuses it.
        let chunk_bytes = DIR_CHUNK_ENTRIES * std::mem::size_of::<u32>();
        f.store(0x4000, Meta { base: 1, bound: 2 }, &mut sink);
        assert_eq!(f.dir.private_bytes(), root_only + chunk_bytes);
        f.store(0x4008, Meta { base: 3, bound: 4 }, &mut sink);
        assert_eq!(f.dir.private_bytes(), root_only + chunk_bytes);
        assert_eq!(f.load(0x4000, &mut sink), Meta { base: 1, bound: 2 });
    }
}
