//! Fleet serving: a multi-threaded worker pool over one shared
//! [`Program`].
//!
//! The session API already splits compilation from execution; this
//! module adds the deployment shape the ROADMAP's daemon experiments
//! (§6.2's nhttpd-style servers) actually run under: **one compiled,
//! verified program, N worker threads, one persistent [`Instance`] per
//! worker**. The safety argument rides on two facts checked at compile
//! time in `engine.rs`:
//!
//! * `Program: Send + Sync` — every worker borrows the same verified
//!   module and its cached pre-decoded [`ExecModule`](sb_vm::ExecModule)
//!   by `&Program`; nothing is cloned per thread.
//! * `Instance: Send` — each worker owns exactly one monomorphized
//!   machine, created *inside* its thread, so all mutable state (program
//!   memory, shadow facility, frame pool) is thread-local by
//!   construction. No locks, no unsafe, no sharing of mutable state.
//!
//! Determinism is the contract that makes the pool testable: because
//! each request runs on a freshly-reset instance of the same program,
//! the [`Observation`] of request *i* is a pure function of its
//! argument — independent of which worker served it, what that worker
//! served before, or how the scheduler interleaved the pool. N workers
//! over one shared program must be bit-identical to N serial fresh
//! runs, and `tests/fleet_determinism.rs` pins exactly that across all
//! three metadata facilities and both execution lanes.
//!
//! The metadata reservation is shared when the engine is built with
//! [`Facility::ShadowShared`](crate::Facility::ShadowShared): every
//! worker reads through the one process-wide
//! [`SharedShadowReservation`](crate::SharedShadowReservation) (a 256 MiB
//! zero prototype) and owns only copy-on-first-touch directory chunks
//! plus its own pages — still lock-free, still `Instance: Send`, and
//! bit-identical to the private facilities (the determinism suite runs
//! the shared lane too). [`WorkerReport::reservation_bytes`] measures
//! each worker's standing cost and
//! [`WorkerReport::reservation_shared_bytes`] flags the process-shared
//! portion, so [`FleetReport::reservation_total_bytes`] can count the
//! shared directory once per pool instead of once per worker.

use crate::engine::{Engine, Instance, Program};
use crate::policy::EvidenceRecord;
use sb_vm::Outcome;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Everything observable about one run: outcome, captured output,
/// dynamic statistics, runtime counters, and the final-memory digest.
/// Two runs of the same program on the same argument must produce equal
/// observations no matter which machine — fresh, reused, or pooled —
/// served them; this is the unit of the fleet's determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// How the run ended.
    pub outcome: Outcome,
    /// Captured `printf`/`puts` output.
    pub output: String,
    /// Dynamic IR instructions executed.
    pub insts: u64,
    /// Bounds checks executed.
    pub checks: u64,
    /// Cost-model cycles.
    pub cycles: u64,
    /// Runtime check counter after the run.
    pub check_count: u64,
    /// Runtime violation counter after the run.
    pub violation_count: u64,
    /// Digest of the final simulated memory image.
    pub mem_hash: u64,
    /// Evidence records drained from the instance after the run. Empty
    /// under [`ViolationPolicy::Strict`](crate::ViolationPolicy::Strict);
    /// under the continuing policies this is part of the determinism
    /// contract — pooled and serial runs must record identical evidence.
    pub evidence: Vec<EvidenceRecord>,
    /// Evidence records dropped by ring overflow during the run.
    pub evidence_overflow: u64,
}

/// Runs `entry(arg)` on `instance` and captures the full
/// [`Observation`]. This is the one code path both the serial oracle
/// and the pooled workers go through, so a divergence between them can
/// only come from the machines themselves — never from differing
/// measurement.
pub fn observe(instance: &mut Instance<'_>, entry: &str, arg: i64) -> Observation {
    let r = instance.run(entry, &[arg]);
    Observation {
        outcome: r.outcome,
        output: r.output,
        insts: r.stats.insts,
        checks: r.stats.checks,
        cycles: r.stats.cycles,
        check_count: instance.check_count(),
        violation_count: instance.violation_count(),
        mem_hash: instance.mem_content_hash(),
        // Draining keeps the overflow counter, so read it afterwards.
        evidence: instance.drain_evidence(),
        evidence_overflow: instance.evidence_overflow(),
    }
}

/// One served request: which position in the stream, which worker took
/// it, how long it took on the wall, and what the run observed.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Position of this request in the input stream.
    pub index: usize,
    /// Worker that served it (informational — must not affect the
    /// observation).
    pub worker: usize,
    /// Wall-clock service latency in nanoseconds.
    pub latency_ns: u64,
    /// What the run observed.
    pub observation: Observation,
}

/// Per-worker aggregates over one [`serve`] call.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker id, `0..workers`.
    pub worker: usize,
    /// Requests this worker served.
    pub served: usize,
    /// Bounds checks executed across all its requests.
    pub checks: u64,
    /// Violations its runtime detected.
    pub violations: u64,
    /// Requests that ended in a trap.
    pub traps: u64,
    /// Evidence records its runtime collected across all its requests
    /// (always 0 under the default Strict policy).
    pub evidence: u64,
    /// Evidence records lost to ring overflow across all its requests.
    pub evidence_overflow: u64,
    /// Standing host-memory reservation of this worker's metadata
    /// facility once its stream drained and the instance reset — the
    /// idle cost a pool pays to keep this worker warm.
    pub reservation_bytes: usize,
    /// The portion of [`reservation_bytes`](Self::reservation_bytes)
    /// that is process-wide shared state (the shared shadow directory).
    /// 0 for the private facilities; equal across workers of a shared
    /// pool, and counted once — not per worker — by
    /// [`FleetReport::reservation_total_bytes`].
    pub reservation_shared_bytes: usize,
}

/// Aggregated outcome of one [`serve`] call.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Size of the pool.
    pub workers: usize,
    /// Every request's result, sorted by stream index — directly
    /// comparable against a serial run of the same stream.
    pub results: Vec<RequestResult>,
    /// Per-worker aggregates, sorted by worker id.
    pub per_worker: Vec<WorkerReport>,
    /// Wall time of the whole batch in nanoseconds.
    pub wall_ns: u64,
    /// Aggregate throughput (0.0 for an empty stream).
    pub reqs_per_sec: f64,
    /// Median service latency (nearest-rank).
    pub p50_ns: u64,
    /// 95th-percentile service latency (nearest-rank).
    pub p95_ns: u64,
    /// 99th-percentile service latency (nearest-rank).
    pub p99_ns: u64,
}

impl FleetReport {
    /// Total evidence records collected across the pool (0 under the
    /// default Strict policy, where violations trap instead of being
    /// recorded).
    pub fn evidence_total(&self) -> u64 {
        self.per_worker.iter().map(|w| w.evidence).sum()
    }

    /// Total evidence records lost to ring overflow across the pool.
    pub fn evidence_overflow_total(&self) -> u64 {
        self.per_worker.iter().map(|w| w.evidence_overflow).sum()
    }

    /// The process-shared portion of the pool's standing reservation —
    /// every worker reads through the same reservation, so the one copy
    /// is the max across workers, not their sum. 0 for private
    /// facilities.
    pub fn reservation_shared_bytes(&self) -> usize {
        self.per_worker
            .iter()
            .map(|w| w.reservation_shared_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Standing metadata reservation of the whole pool, counting
    /// process-shared state **once**: `shared + Σ per-worker private`.
    /// For the private facilities this equals the plain per-worker sum;
    /// for [`Facility::ShadowShared`](crate::Facility::ShadowShared) it
    /// is what the pool actually pins — a naive sum of
    /// [`WorkerReport::reservation_bytes`] would charge the one shared
    /// directory N times.
    pub fn reservation_total_bytes(&self) -> usize {
        self.reservation_shared_bytes()
            + self
                .per_worker
                .iter()
                .map(|w| w.reservation_bytes - w.reservation_shared_bytes)
                .sum::<usize>()
    }
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// value such that at least `p`% of samples are ≤ it. 0 for no samples.
fn percentile(sorted_ns: &[u64], p: u32) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (sorted_ns.len() as u64 * u64::from(p)).div_ceil(100);
    sorted_ns[(rank.max(1) - 1) as usize]
}

/// Serves `requests` — each an argument for `entry` — on a pool of
/// `workers` threads sharing `program`, and aggregates the results.
///
/// Each worker thread instantiates its own machine from the shared
/// `&Program` and pulls request indices off a shared atomic cursor
/// until the stream is drained (work-stealing by competition, so a slow
/// request on one worker never blocks the rest of the stream). Workers
/// reset between requests exactly as a serial loop would; the returned
/// [`FleetReport::results`] are sorted by stream index so callers can
/// compare them against a serial oracle element-by-element.
///
/// `workers == 0` is served as a pool of one.
pub fn serve(
    engine: &Engine,
    program: &Program,
    entry: &str,
    requests: &[i64],
    workers: usize,
) -> FleetReport {
    let workers = workers.max(1);
    let cursor = AtomicUsize::new(0);
    let start = Instant::now();

    // Only `&Engine`, `&Program`, `&AtomicUsize`, and `&[i64]` cross
    // the thread boundary — all `Sync`. Each worker builds its own
    // `Instance` inside the thread it runs on.
    let mut worker_outputs: Vec<(WorkerReport, Vec<RequestResult>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut instance = engine.instantiate(program);
                    let mut results = Vec::new();
                    let mut report = WorkerReport {
                        worker,
                        served: 0,
                        checks: 0,
                        violations: 0,
                        traps: 0,
                        evidence: 0,
                        evidence_overflow: 0,
                        reservation_bytes: 0,
                        reservation_shared_bytes: 0,
                    };
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= requests.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        let observation = observe(&mut instance, entry, requests[index]);
                        let latency_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        report.served += 1;
                        report.checks += observation.check_count;
                        report.violations += observation.violation_count;
                        report.traps +=
                            u64::from(matches!(observation.outcome, Outcome::Trapped(_)));
                        report.evidence += observation.evidence.len() as u64;
                        report.evidence_overflow += observation.evidence_overflow;
                        results.push(RequestResult {
                            index,
                            worker,
                            latency_ns,
                            observation,
                        });
                    }
                    // Reset before measuring: the report captures the
                    // *standing* (idle) reservation a warm worker holds
                    // between streams, not the last request's transient
                    // page footprint.
                    instance.reset();
                    report.reservation_bytes = instance.metadata_reservation_bytes();
                    report.reservation_shared_bytes = instance.metadata_shared_reservation_bytes();
                    (report, results)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    worker_outputs.sort_by_key(|(report, _)| report.worker);
    let mut per_worker = Vec::with_capacity(workers);
    let mut results = Vec::with_capacity(requests.len());
    for (report, mut part) in worker_outputs {
        per_worker.push(report);
        results.append(&mut part);
    }
    results.sort_by_key(|r| r.index);

    let mut sorted_ns: Vec<u64> = results.iter().map(|r| r.latency_ns).collect();
    sorted_ns.sort_unstable();
    let reqs_per_sec = if results.is_empty() || wall_ns == 0 {
        0.0
    } else {
        results.len() as f64 / (wall_ns as f64 / 1e9)
    };
    FleetReport {
        workers,
        per_worker,
        wall_ns,
        reqs_per_sec,
        p50_ns: percentile(&sorted_ns, 50),
        p95_ns: percentile(&sorted_ns, 95),
        p99_ns: percentile(&sorted_ns, 99),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Facility;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 99), 0);
        // 3 samples: p50 → rank ceil(1.5)=2 → second value.
        assert_eq!(percentile(&[10, 20, 30], 50), 20);
        assert_eq!(percentile(&[10, 20, 30], 99), 30);
    }

    #[test]
    fn empty_stream_yields_empty_report() {
        let engine = Engine::new();
        let program = engine.compile("int main(int n) { return n; }").unwrap();
        let report = serve(&engine, &program, "main", &[], 4);
        assert_eq!(report.results.len(), 0);
        assert_eq!(report.reqs_per_sec, 0.0);
        assert_eq!(report.p99_ns, 0);
        assert_eq!(report.per_worker.len(), 4);
        assert!(report.per_worker.iter().all(|w| w.served == 0));
    }

    #[test]
    fn more_workers_than_requests_serves_every_request_once() {
        let engine = Engine::new();
        let program = engine.compile("int main(int n) { return n + 1; }").unwrap();
        let report = serve(&engine, &program, "main", &[10, 20], 8);
        assert_eq!(report.workers, 8);
        assert_eq!(report.results.len(), 2);
        for (i, expect) in [(0usize, 11i64), (1, 21)] {
            assert_eq!(report.results[i].index, i);
            assert_eq!(
                report.results[i].observation.outcome.clone(),
                Outcome::Finished { ret: expect }
            );
        }
        assert_eq!(report.per_worker.iter().map(|w| w.served).sum::<usize>(), 2);
    }

    #[test]
    fn zero_workers_is_served_as_one() {
        let engine = Engine::new();
        let program = engine.compile("int main(int n) { return n; }").unwrap();
        let report = serve(&engine, &program, "main", &[5], 0);
        assert_eq!(report.workers, 1);
        assert_eq!(report.results.len(), 1);
    }

    #[test]
    fn worker_reports_count_traps_and_measure_reservations() {
        let src = r#"
            int main(int n) {
                char buf[8];
                buf[n] = 1;
                return buf[0];
            }
        "#;
        let engine = Engine::new().facility(Facility::ShadowPaged);
        let program = engine.compile(src).unwrap();
        let requests = [0i64, 32, 0, 32, 0, 32];
        let report = serve(&engine, &program, "main", &requests, 2);
        let traps: u64 = report.per_worker.iter().map(|w| w.traps).sum();
        assert_eq!(traps, 3, "every out-of-bounds request must trap");
        // The paged shadow's standing reservation is dominated by its
        // 256 MiB directory; every worker pays it separately, and none
        // of it is shared.
        for w in &report.per_worker {
            assert!(
                w.reservation_bytes >= (1 << 28),
                "worker {} reservation {} below the directory floor",
                w.worker,
                w.reservation_bytes
            );
            assert_eq!(w.reservation_shared_bytes, 0);
        }
        assert_eq!(report.reservation_shared_bytes(), 0);
        assert_eq!(
            report.reservation_total_bytes(),
            report
                .per_worker
                .iter()
                .map(|w| w.reservation_bytes)
                .sum::<usize>(),
            "private pools: total is the plain per-worker sum"
        );
        // Strict pools never collect evidence — violations trap.
        assert_eq!(report.evidence_total(), 0);
        assert_eq!(report.evidence_overflow_total(), 0);
    }

    #[test]
    fn shared_pool_counts_the_directory_once() {
        let src = r#"
            int main(int n) {
                long* p = (long*)malloc(8 * sizeof(long));
                for (int i = 0; i < 8; i++) p[i] = n + i;
                long s = p[0] + p[7];
                free(p);
                return (int)s;
            }
        "#;
        let engine = Engine::new().facility(Facility::ShadowShared);
        let program = engine.compile(src).unwrap();
        let requests: Vec<i64> = (0..16).collect();
        let report = serve(&engine, &program, "main", &requests, 4);
        // The process-shared portion: the 256 MiB directory prototype
        // plus the frame pool at capacity.
        let shared_span =
            (1usize << 28) + crate::SharedShadowReservation::frame_pool_capacity_bytes();
        for w in &report.per_worker {
            assert_eq!(w.reservation_shared_bytes, shared_span);
            assert!(w.reservation_bytes >= shared_span);
        }
        assert_eq!(report.reservation_shared_bytes(), shared_span);
        let naive: usize = report.per_worker.iter().map(|w| w.reservation_bytes).sum();
        let total = report.reservation_total_bytes();
        assert_eq!(
            total,
            naive - 3 * shared_span,
            "the one shared reservation must be counted once, not 4 times"
        );
        // The pool's standing reservation stays close to a single
        // worker's: reset returned every frame to the shared pool, so
        // each idle worker privately owns only its chunk-root
        // bookkeeping (a few hundred KiB, not megabytes of frames).
        assert!(
            total < shared_span + (1 << 22),
            "4-worker shared pool pins {total} bytes"
        );
    }

    #[test]
    fn one_worker_shared_matches_one_worker_private() {
        // The 1-worker shared pool and the 1-worker private pool pay
        // comparable standing reservations: the same 256 MiB directory
        // span, plus the shared facility's small copy-on-first-touch
        // overlay and its frame pool counted at capacity (the private
        // worker instead parks only the frames it actually touched, so
        // the shared figure sits at most one pool-capacity above).
        let src = r#"
            int main(int n) {
                long* p = (long*)malloc(4 * sizeof(long));
                p[0] = n; p[3] = n + 3;
                long s = p[0] + p[3];
                free(p);
                return (int)s;
            }
        "#;
        let private_engine = Engine::new().facility(Facility::ShadowPaged);
        let shared_engine = Engine::new().facility(Facility::ShadowShared);
        let requests: Vec<i64> = (0..4).collect();
        let private_program = private_engine.compile(src).unwrap();
        let shared_program = shared_engine.compile(src).unwrap();
        let private = serve(&private_engine, &private_program, "main", &requests, 1)
            .reservation_total_bytes();
        let shared =
            serve(&shared_engine, &shared_program, "main", &requests, 1).reservation_total_bytes();
        assert!(shared >= private, "both pools span the same directory");
        assert!(
            shared - private <= crate::SharedShadowReservation::frame_pool_capacity_bytes(),
            "1-worker shared ({shared}) should be within one pool capacity of \
             private ({private})"
        );
    }

    #[test]
    fn hardened_pool_neutralizes_overflows_and_aggregates_evidence() {
        let src = r#"
            int main(int n) {
                char buf[8];
                buf[n] = 1;
                return buf[0];
            }
        "#;
        let engine = Engine::new().policy(crate::ViolationPolicy::Hardened);
        let program = engine.compile(src).unwrap();
        let requests = [0i64, 32, 0, 32, 0, 32];
        let report = serve(&engine, &program, "main", &requests, 2);
        let traps: u64 = report.per_worker.iter().map(|w| w.traps).sum();
        assert_eq!(traps, 0, "hardened pools clamp instead of trapping");
        assert_eq!(
            report.evidence_total(),
            3,
            "one evidence record per out-of-bounds request"
        );
        assert_eq!(report.evidence_overflow_total(), 0);
        for r in &report.results {
            assert!(matches!(r.observation.outcome, Outcome::Finished { .. }));
            let oob = requests[r.index] == 32;
            assert_eq!(r.observation.evidence.len(), usize::from(oob));
            if oob {
                let ev = r.observation.evidence[0];
                assert!(ev.write, "the probe is a clamped store");
                assert_eq!(ev.fault_addr, ev.ptr, "store lands past the bound");
            }
        }
    }
}
