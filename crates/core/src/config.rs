//! Configuration of the SoftBound transformation and runtime.

use crate::policy::ViolationPolicy;

/// Which dereferences are checked (§1, §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Check every load and store: complete spatial-violation detection
    /// (79% average overhead in the paper with the shadow space).
    #[default]
    Full,
    /// Check stores only; metadata is still fully propagated. Sufficient
    /// to stop essentially all security attacks (Table 3) at 32% average
    /// overhead.
    StoreOnly,
}

/// Which metadata organization backs the disjoint metadata space (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Facility {
    /// Tag-less direct map over two-level pages; ~5 instructions per
    /// access, O(1) host-side, no collisions by construction.
    #[default]
    ShadowPaged,
    /// The HashMap-backed shadow-space simulation (differential-testing
    /// oracle; same costs as [`Facility::ShadowPaged`], slower host side).
    ShadowHashMap,
    /// Open-hashing table; ~9 instructions plus probes.
    HashTable,
    /// The same tag-less direct map as [`Facility::ShadowPaged`], but
    /// over the process-wide shared directory reservation: the 256 MiB
    /// span is allocated once per process and each worker overlays it
    /// with copy-on-first-touch chunks — the fleet configuration. Same
    /// simulated costs, bit-identical observables.
    ShadowShared,
}

/// Which interpreter lane an `Instance` drives.
///
/// Both lanes execute the same instrumented module with identical
/// observable behaviour — traps, output, dynamic counters, cycles,
/// final memory (pinned by `tests/machine_differential.rs`). The lane
/// only selects *how* the module is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lane {
    /// Flat pre-decoded ops with pre-resolved operands and fused
    /// check+access superinstructions — the production lane. The
    /// lowering is cached on `Program`, so instances pay the decode
    /// cost once per compilation.
    #[default]
    Predecoded,
    /// The original tree-walk interpreter — the differential oracle,
    /// and the only lane available without a `Program` (instances built
    /// directly over a module).
    TreeWalk,
}

/// SoftBound configuration.
#[derive(Debug, Clone)]
pub struct SoftBoundConfig {
    /// Checking mode.
    pub mode: CheckMode,
    /// Metadata organization.
    pub facility: Facility,
    /// log2 of hash-table buckets (ignored for the shadow space).
    pub hash_log2_buckets: u32,
    /// Use the §5.2 type heuristic to skip metadata copies for memcpy
    /// calls whose operands cannot contain pointers.
    pub memcpy_heuristic: bool,
    /// Clear metadata of freed heap blocks whose static type suggests
    /// pointers (§5.2 "memory reuse and stale metadata").
    pub clear_on_free: bool,
    /// Clear metadata of pointer-bearing stack slots on function return
    /// (§5.2).
    pub clear_on_return: bool,
    /// Insert function-pointer checks at indirect calls (§5.2).
    pub check_fn_ptrs: bool,
    /// How the runtime responds to a failed check: trap (the paper's
    /// behaviour, the default), repair-and-continue, or observe-only.
    /// Non-Strict policies disable redundant-check elimination so every
    /// retained check guards exactly the access it precedes.
    pub policy: ViolationPolicy,
    /// Capacity (in records) of the per-instance evidence ring buffer,
    /// preallocated at instantiation. Ignored under
    /// [`ViolationPolicy::Strict`], which never records evidence.
    pub evidence_capacity: usize,
}

impl Default for SoftBoundConfig {
    fn default() -> Self {
        SoftBoundConfig {
            mode: CheckMode::Full,
            facility: Facility::ShadowPaged,
            hash_log2_buckets: 20,
            memcpy_heuristic: true,
            clear_on_free: true,
            clear_on_return: true,
            check_fn_ptrs: true,
            policy: ViolationPolicy::Strict,
            evidence_capacity: 256,
        }
    }
}

impl SoftBoundConfig {
    /// Full checking over the shadow space (the paper's headline config).
    pub fn full_shadow() -> Self {
        Self::default()
    }

    /// Full checking over the hash table.
    pub fn full_hash() -> Self {
        SoftBoundConfig {
            facility: Facility::HashTable,
            ..Self::default()
        }
    }

    /// Store-only checking over the shadow space (the production config).
    pub fn store_only_shadow() -> Self {
        SoftBoundConfig {
            mode: CheckMode::StoreOnly,
            ..Self::default()
        }
    }

    /// Store-only checking over the hash table.
    pub fn store_only_hash() -> Self {
        SoftBoundConfig {
            mode: CheckMode::StoreOnly,
            facility: Facility::HashTable,
            ..Self::default()
        }
    }

    /// Full checking with the repair-and-continue
    /// [`Hardened`](ViolationPolicy::Hardened) policy.
    pub fn hardened() -> Self {
        SoftBoundConfig {
            policy: ViolationPolicy::Hardened,
            ..Self::default()
        }
    }

    /// Full checking with the observe-only
    /// [`Monitor`](ViolationPolicy::Monitor) policy.
    pub fn monitor() -> Self {
        SoftBoundConfig {
            policy: ViolationPolicy::Monitor,
            ..Self::default()
        }
    }

    /// A short label like `"ShadowSpace-Complete"`, matching Figure 2's
    /// legend. Non-Strict policies append their name
    /// (`"ShadowSpace-Complete-Hardened"`).
    pub fn label(&self) -> String {
        let fac = match self.facility {
            Facility::ShadowPaged => "ShadowSpace",
            Facility::ShadowHashMap => "ShadowHashMap",
            Facility::HashTable => "HashTable",
            Facility::ShadowShared => "SharedShadow",
        };
        let mode = match self.mode {
            CheckMode::Full => "Complete",
            CheckMode::StoreOnly => "Stores",
        };
        match self.policy {
            ViolationPolicy::Strict => format!("{fac}-{mode}"),
            ViolationPolicy::Hardened => format!("{fac}-{mode}-Hardened"),
            ViolationPolicy::Monitor => format!("{fac}-{mode}-Monitor"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure2_legend() {
        assert_eq!(
            SoftBoundConfig::full_shadow().label(),
            "ShadowSpace-Complete"
        );
        assert_eq!(SoftBoundConfig::full_hash().label(), "HashTable-Complete");
        assert_eq!(
            SoftBoundConfig::store_only_shadow().label(),
            "ShadowSpace-Stores"
        );
        assert_eq!(
            SoftBoundConfig::store_only_hash().label(),
            "HashTable-Stores"
        );
    }

    #[test]
    fn default_is_full_paged_shadow() {
        let c = SoftBoundConfig::default();
        assert_eq!(c.mode, CheckMode::Full);
        assert_eq!(c.facility, Facility::ShadowPaged);
        assert!(c.clear_on_free && c.clear_on_return && c.check_fn_ptrs);
        assert_eq!(c.policy, ViolationPolicy::Strict);
        assert_eq!(c.evidence_capacity, 256);
    }

    #[test]
    fn non_strict_policies_show_in_the_label() {
        assert_eq!(
            SoftBoundConfig::hardened().label(),
            "ShadowSpace-Complete-Hardened"
        );
        assert_eq!(
            SoftBoundConfig::monitor().label(),
            "ShadowSpace-Complete-Monitor"
        );
    }

    #[test]
    fn hashmap_oracle_label_is_distinct() {
        let c = SoftBoundConfig {
            facility: Facility::ShadowHashMap,
            ..SoftBoundConfig::default()
        };
        assert_eq!(c.label(), "ShadowHashMap-Complete");
    }

    #[test]
    fn shared_shadow_label_is_distinct() {
        let c = SoftBoundConfig {
            facility: Facility::ShadowShared,
            ..SoftBoundConfig::default()
        };
        assert_eq!(c.label(), "SharedShadow-Complete");
    }
}
