//! The session-oriented embedding surface: [`Engine`] → [`Program`] →
//! [`Instance`].
//!
//! The original entry points (`protect`, `run_instrumented`) are
//! one-shot: each call re-compiles the source, re-allocates the shadow
//! facility (a 256 MiB directory reservation for the paged shadow
//! space), and rebuilds a `Machine`. That is the wrong shape for the
//! fleet-style traffic the ROADMAP targets, and it is exactly the shape
//! SoftBound's disjoint-metadata design (§5.1) does *not* require:
//! because metadata lives apart from program memory, both reset
//! independently and cheaply between runs.
//!
//! The session API splits the pipeline into three owned artifacts:
//!
//! * [`Engine`] — a reusable builder capturing the
//!   [`SoftBoundConfig`] and [`MachineConfig`]; cheap to clone, one per
//!   deployment configuration.
//! * [`Program`] — a compiled, instrumented, *verified* module plus the
//!   post-instrument [`PassStats`]. Compile once, share among
//!   instances.
//! * [`Instance`] — a persistent monomorphized
//!   [`SoftBoundRuntime`]`<F>` + [`Machine`] that can
//!   [`run`](Instance::run) an entry point repeatedly.
//!   [`reset`](Instance::reset) clears program memory and metadata
//!   between runs while keeping the shadow reservation, frame pool, and
//!   frame plans alive, so back-to-back requests skip the per-machine
//!   setup entirely (the `throughput` bench measures the win).
//!
//! ```
//! use softbound::{Engine, SoftBoundConfig};
//!
//! let engine = Engine::new();
//! let program = engine.compile("int main(int n) { return n * 2; }")?;
//! let mut instance = engine.instantiate(&program);
//! for request in 0..3 {
//!     let r = instance.run("main", &[request]);
//!     assert_eq!(r.ret(), Some(request * 2));
//! }
//! assert_eq!(instance.runs(), 3);
//! # Ok::<(), softbound::SoftBoundError>(())
//! ```

use crate::config::{CheckMode, Facility, Lane, SoftBoundConfig};
use crate::error::SoftBoundError;
use crate::metadata::{HashTableFacility, ShadowHashMapFacility, ShadowPages, SharedShadowPages};
use crate::policy::{EvidenceRecord, ViolationPolicy};
use crate::runtime::SoftBoundRuntime;
use crate::transform::instrument;
use sb_ir::{Module, PassStats};
use sb_vm::{ExecModule, Machine, MachineConfig, RunResult};

/// A reusable SoftBound pipeline configuration: the entry point of the
/// session API.
///
/// An engine owns no per-program state — it is a builder over
/// [`SoftBoundConfig`] (what to instrument, which metadata facility) and
/// [`MachineConfig`] (cost model, cache model, fuel). Build one per
/// deployment configuration, then [`compile`](Engine::compile) programs
/// and [`instantiate`](Engine::instantiate) long-lived machines from it.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    sb: SoftBoundConfig,
    machine: MachineConfig,
    lane: Lane,
}

impl Engine {
    /// An engine with the paper's headline configuration (full checking
    /// over the paged shadow space, default machine).
    pub fn new() -> Self {
        Engine::default()
    }

    /// Replaces the SoftBound configuration wholesale.
    pub fn softbound_config(mut self, cfg: SoftBoundConfig) -> Self {
        self.sb = cfg;
        self
    }

    /// Selects the metadata facility (§5.1).
    pub fn facility(mut self, facility: Facility) -> Self {
        self.sb.facility = facility;
        self
    }

    /// Selects the checking mode (full vs store-only, §6.3).
    pub fn check_mode(mut self, mode: CheckMode) -> Self {
        self.sb.mode = mode;
        self
    }

    /// Selects the violation policy (trap / repair / observe).
    /// Non-Strict policies compile with redundant-check elimination
    /// disabled, so every retained check guards exactly the access it
    /// precedes — a clamp repairs one access, never a "proven" later one.
    pub fn policy(mut self, policy: ViolationPolicy) -> Self {
        self.sb.policy = policy;
        self
    }

    /// Replaces the machine configuration (cost model, cache, fuel…).
    pub fn machine_config(mut self, cfg: MachineConfig) -> Self {
        self.machine = cfg;
        self
    }

    /// Selects the execution lane ([`Lane::Predecoded`] by default).
    /// [`Lane::TreeWalk`] forces the tree-walk oracle — differential
    /// testing and debugging.
    pub fn lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    /// The execution lane instances built from programs will drive.
    pub fn execution_lane(&self) -> Lane {
        self.lane
    }

    /// The SoftBound configuration this engine instruments with.
    pub fn config(&self) -> &SoftBoundConfig {
        &self.sb
    }

    /// The machine configuration instances are built with.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Compiles CIR-C source through the full paper pipeline (§6.1):
    /// compile → lower → optimize → instrument → re-optimize → verify.
    ///
    /// # Errors
    ///
    /// [`SoftBoundError::Compile`] for frontend rejections and
    /// [`SoftBoundError::Verify`] when the instrumented module fails
    /// structural verification (a pass bug, reported instead of
    /// panicking so embedders can log and keep serving).
    pub fn compile(&self, src: &str) -> Result<Program, SoftBoundError> {
        let prog = sb_cir::compile(src)?;
        let mut module = sb_ir::lower(&prog, "program");
        sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
        let mut module = instrument(&module, &self.sb);
        // Strict keeps the paper pipeline (redundant-check elimination);
        // repair/observe policies retain every check so a clamp applies
        // to exactly the access its own check guards.
        let post = if self.sb.policy == ViolationPolicy::Strict {
            sb_ir::OptLevel::PostInstrument
        } else {
            sb_ir::OptLevel::PostInstrumentAllChecks
        };
        let stats = sb_ir::optimize_with_stats(&mut module, post);
        sb_ir::verify(&module)?;
        // Lower the verified module to the flat execution IR now, so
        // every instance of this program shares one decode.
        let exec = ExecModule::lower(&module);
        Ok(Program {
            module,
            stats,
            exec,
        })
    }

    /// Builds a persistent machine over a compiled program,
    /// monomorphized on the configured facility and driving the
    /// engine's [`Lane`] (pre-decoded by default — the cached
    /// [`ExecModule`] is attached, so instantiation pays no decode).
    pub fn instantiate<'p>(&self, program: &'p Program) -> Instance<'p> {
        let mut instance = self.instantiate_module(program.module());
        if self.lane == Lane::Predecoded {
            match &mut instance.repr {
                Repr::Paged(m) => m.attach_exec(program.exec()),
                Repr::ShadowHashMap(m) => m.attach_exec(program.exec()),
                Repr::HashTable(m) => m.attach_exec(program.exec()),
                Repr::Shared(m) => m.attach_exec(program.exec()),
            }
            instance.lane = Lane::Predecoded;
        }
        instance
    }

    /// Builds a persistent machine over an already instrumented module
    /// (one produced by [`Engine::compile`] on the same configuration,
    /// or by [`instrument`] directly). This is the seam the one-shot
    /// shims ([`run_instrumented`](crate::run_instrumented)) delegate
    /// through.
    ///
    /// A bare module carries no cached [`ExecModule`], so instances
    /// built here always drive the tree-walk lane regardless of the
    /// engine's [`Lane`]; use [`Engine::instantiate`] with a
    /// [`Program`] for the pre-decoded lane.
    pub fn instantiate_module<'m>(&self, module: &'m Module) -> Instance<'m> {
        let repr = match self.sb.facility {
            Facility::ShadowPaged => Repr::Paged(Machine::new(
                module,
                self.machine.clone(),
                SoftBoundRuntime::new_paged(&self.sb),
            )),
            Facility::ShadowHashMap => Repr::ShadowHashMap(Machine::new(
                module,
                self.machine.clone(),
                SoftBoundRuntime::new_shadow_hashmap(&self.sb),
            )),
            Facility::HashTable => Repr::HashTable(Machine::new(
                module,
                self.machine.clone(),
                SoftBoundRuntime::new_hash(&self.sb),
            )),
            Facility::ShadowShared => Repr::Shared(Machine::new(
                module,
                self.machine.clone(),
                SoftBoundRuntime::new_shared(&self.sb),
            )),
        };
        Instance {
            repr,
            runs: 0,
            dirty: false,
            lane: Lane::TreeWalk,
        }
    }

    /// Compile + instantiate + run in one call — the convenience the
    /// old free functions provided, expressed on the session API.
    ///
    /// # Errors
    ///
    /// Pipeline errors from [`Engine::compile`].
    pub fn run_once(
        &self,
        src: &str,
        entry: &str,
        args: &[i64],
    ) -> Result<RunResult, SoftBoundError> {
        let program = self.compile(src)?;
        Ok(self.instantiate(&program).run(entry, args))
    }
}

/// A compiled, instrumented, verified module plus the post-instrument
/// optimizer statistics and the cached pre-decoded lowering. Produced
/// by [`Engine::compile`]; immutable and shareable among any number of
/// [`Instance`]s — which is exactly why the [`ExecModule`] lives here:
/// the flat-IR decode runs once per compilation, and every instance
/// (and every run) borrows the result.
#[derive(Debug, Clone)]
pub struct Program {
    module: Module,
    stats: PassStats,
    exec: ExecModule,
}

impl Program {
    /// The instrumented module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The cached pre-decoded execution IR (lowered once at compile
    /// time; [`Engine::instantiate`] attaches it to every machine).
    pub fn exec(&self) -> &ExecModule {
        &self.exec
    }

    /// Post-instrument optimizer statistics (instructions removed,
    /// redundant checks eliminated) — the experiment harness's
    /// elimination counts.
    pub fn stats(&self) -> PassStats {
        self.stats
    }

    /// Decomposes into the owned module and the pass statistics (for
    /// callers that hand the module to other tooling, e.g. the linker).
    pub fn into_parts(self) -> (Module, PassStats) {
        (self.module, self.stats)
    }
}

/// The four monomorphized machines an engine can build. One `match`
/// per public call, then fully static dispatch inside — the check path
/// never sees a vtable.
enum Repr<'p> {
    Paged(Machine<'p, SoftBoundRuntime<ShadowPages>>),
    ShadowHashMap(Machine<'p, SoftBoundRuntime<ShadowHashMapFacility>>),
    HashTable(Machine<'p, SoftBoundRuntime<HashTableFacility>>),
    Shared(Machine<'p, SoftBoundRuntime<SharedShadowPages>>),
}

macro_rules! each_machine {
    ($self:expr, $m:ident => $body:expr) => {
        match &$self.repr {
            Repr::Paged($m) => $body,
            Repr::ShadowHashMap($m) => $body,
            Repr::HashTable($m) => $body,
            Repr::Shared($m) => $body,
        }
    };
}

macro_rules! each_machine_mut {
    ($self:expr, $m:ident => $body:expr) => {
        match &mut $self.repr {
            Repr::Paged($m) => $body,
            Repr::ShadowHashMap($m) => $body,
            Repr::HashTable($m) => $body,
            Repr::Shared($m) => $body,
        }
    };
}

/// A persistent execution session: one monomorphized
/// [`SoftBoundRuntime`]`<F>` plus one [`Machine`], reusable across any
/// number of runs.
///
/// [`run`](Instance::run) resets automatically between runs, so N
/// back-to-back runs observe exactly what N fresh machines would —
/// identical traps, outputs, check counts, and final memory (pinned by
/// `tests/instance_reuse.rs`) — while reusing the shadow reservation,
/// the laid-out frame plans, and the interpreter's pooled buffers
/// instead of rebuilding them per request.
pub struct Instance<'p> {
    repr: Repr<'p>,
    runs: u64,
    dirty: bool,
    lane: Lane,
}

impl Instance<'_> {
    /// Runs `entry` with the given arguments. If the instance has run
    /// before, program memory and metadata are
    /// [`reset`](Instance::reset) first, so every run starts from the
    /// same initial state a fresh machine would.
    pub fn run(&mut self, entry: &str, args: &[i64]) -> RunResult {
        if self.dirty {
            each_machine_mut!(self, m => m.reset());
        }
        self.dirty = true;
        self.runs += 1;
        match self.lane {
            Lane::Predecoded => each_machine_mut!(self, m => m.run_predecoded(entry, args)),
            Lane::TreeWalk => each_machine_mut!(self, m => m.run(entry, args)),
        }
    }

    /// The execution lane this instance drives.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Eagerly clears program memory, heap, and all pointer metadata
    /// (`live_entries()` is 0 afterwards) while keeping the shadow
    /// reservation and machine plans alive. [`run`](Instance::run) does
    /// this lazily; call it directly to drop a finished request's
    /// metadata footprint before the instance goes idle.
    pub fn reset(&mut self) {
        each_machine_mut!(self, m => m.reset());
        self.dirty = false;
    }

    /// Number of completed [`run`](Instance::run) calls.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Live (non-NULL) metadata entries in the facility right now.
    pub fn live_entries(&self) -> usize {
        each_machine!(self, m => m.hooks().live_entries())
    }

    /// Bytes of host memory the metadata facility holds onto between
    /// runs — the per-worker standing cost a fleet pays (256 MiB of
    /// zeroed virtual directory for the paged shadow). The ROADMAP's
    /// shared-reservation follow-on is sized from this number.
    pub fn metadata_reservation_bytes(&self) -> usize {
        each_machine!(self, m => m.hooks().reservation_bytes())
    }

    /// The portion of
    /// [`metadata_reservation_bytes`](Self::metadata_reservation_bytes)
    /// that is process-wide shared state — one copy serves every worker
    /// over the same reservation, so a fleet counts it once per pool.
    /// 0 for the private facilities.
    pub fn metadata_shared_reservation_bytes(&self) -> usize {
        each_machine!(self, m => m.hooks().shared_reservation_bytes())
    }

    /// Bounds checks executed by the runtime since the last reset.
    pub fn check_count(&self) -> u64 {
        each_machine!(self, m => m.hooks().check_count)
    }

    /// Violations detected by the runtime since the last reset.
    pub fn violation_count(&self) -> u64 {
        each_machine!(self, m => m.hooks().violation_count)
    }

    /// The violation policy the underlying runtime enforces.
    pub fn policy(&self) -> ViolationPolicy {
        each_machine!(self, m => m.hooks().policy())
    }

    /// Removes and returns all evidence records accumulated since the
    /// last drain (or reset), oldest first. Strict instances never
    /// record evidence, so this always returns an empty vector there.
    ///
    /// Draining does not count as a run: the next [`run`](Instance::run)
    /// still observes the reset-between-runs contract, and an undrained
    /// ring is cleared by it.
    pub fn drain_evidence(&mut self) -> Vec<EvidenceRecord> {
        each_machine_mut!(self, m => m.hooks_mut().drain_evidence())
    }

    /// Evidence records currently held in the ring (without draining).
    pub fn evidence_len(&self) -> usize {
        each_machine!(self, m => m.hooks().evidence_len())
    }

    /// Evidence records lost to ring overflow since the last reset — a
    /// non-zero value means the drain cadence (or the configured
    /// `evidence_capacity`) is too small for the violation rate.
    pub fn evidence_overflow(&self) -> u64 {
        each_machine!(self, m => m.hooks().evidence_overflow())
    }

    /// Digest of the current simulated memory image (differential
    /// testing against fresh machines).
    pub fn mem_content_hash(&self) -> u64 {
        each_machine!(self, m => m.mem.content_hash())
    }

    /// The facility this instance monomorphizes over.
    pub fn facility(&self) -> Facility {
        match self.repr {
            Repr::Paged(_) => Facility::ShadowPaged,
            Repr::ShadowHashMap(_) => Facility::ShadowHashMap,
            Repr::HashTable(_) => Facility::HashTable,
            Repr::Shared(_) => Facility::ShadowShared,
        }
    }
}

// The fleet contract, checked at compile time: an `Engine` and a
// compiled `Program` cross thread boundaries by shared reference (every
// worker borrows the same program), and an `Instance` may be *moved*
// into a worker thread (each worker owns exactly one). These hold
// because the whole pipeline is plain owned data — no interior
// mutability, no `Rc`, no raw-pointer caches — so a regression (say, a
// lazily-populated `RefCell` decode cache on `Program`) fails this
// file's build rather than some downstream fleet test.
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send_sync::<Engine>();
    assert_send_sync::<Program>();
    assert_send::<Instance<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_builder_selects_facility_and_mode() {
        let e = Engine::new()
            .facility(Facility::HashTable)
            .check_mode(CheckMode::StoreOnly);
        assert_eq!(e.config().facility, Facility::HashTable);
        assert_eq!(e.config().mode, CheckMode::StoreOnly);
        let program = e.compile("int main() { return 7; }").expect("compiles");
        let inst = e.instantiate(&program);
        assert_eq!(inst.facility(), Facility::HashTable);
    }

    #[test]
    fn shared_facility_instance_runs_resets_and_reports_split() {
        let src = r#"
            int main(int n) {
                int* p = (int*)malloc(4 * sizeof(int));
                for (int i = 0; i < 4; i++) p[i] = n + i;
                int s = p[0] + p[3];
                free(p);
                return s;
            }
        "#;
        let engine = Engine::new().facility(Facility::ShadowShared);
        let program = engine.compile(src).expect("compiles");
        let mut inst = engine.instantiate(&program);
        assert_eq!(inst.facility(), Facility::ShadowShared);
        assert_eq!(inst.lane(), Lane::Predecoded);
        for n in 0..3 {
            let r = inst.run("main", &[n]);
            assert_eq!(r.ret(), Some(2 * n + 3), "{:?}", r.outcome);
        }
        inst.reset();
        assert_eq!(inst.live_entries(), 0);
        // The 256 MiB directory shows up in the total but is flagged as
        // process-shared; the private remainder is small.
        let shared = inst.metadata_shared_reservation_bytes();
        assert_eq!(
            shared,
            (1 << 28) + crate::SharedShadowReservation::frame_pool_capacity_bytes()
        );
        assert!(inst.metadata_reservation_bytes() >= shared);
        assert!(inst.metadata_reservation_bytes() - shared < 1 << 24);
        // Private facilities report a zero shared portion.
        let private = Engine::new().instantiate(&program);
        assert_eq!(private.metadata_shared_reservation_bytes(), 0);
    }

    #[test]
    fn compile_reports_frontend_errors() {
        let err = Engine::new()
            .compile("int main( { return 0; }")
            .expect_err("bad source");
        assert!(matches!(err, SoftBoundError::Compile(_)), "{err}");
    }

    #[test]
    fn instance_runs_repeatedly_with_identical_results() {
        let src = r#"
            int main(int n) {
                int* p = (int*)malloc(4 * sizeof(int));
                for (int i = 0; i < 4; i++) p[i] = n + i;
                int s = p[0] + p[3];
                free(p);
                return s;
            }
        "#;
        let engine = Engine::new();
        let program = engine.compile(src).expect("compiles");
        let mut inst = engine.instantiate(&program);
        for n in 0..4 {
            let r = inst.run("main", &[n]);
            assert_eq!(r.ret(), Some(2 * n + 3), "{:?}", r.outcome);
        }
        assert_eq!(inst.runs(), 4);
    }

    #[test]
    fn reset_clears_metadata_between_runs() {
        // A program that leaks pointer-bearing heap blocks, leaving live
        // metadata behind on purpose.
        let src = r#"
            int main() {
                long** blocks = (long**)malloc(8 * sizeof(long*));
                for (int i = 0; i < 8; i++) {
                    blocks[i] = (long*)malloc(sizeof(long));
                }
                return blocks[7] != 0;
            }
        "#;
        let engine = Engine::new();
        let program = engine.compile(src).expect("compiles");
        let mut inst = engine.instantiate(&program);
        let r = inst.run("main", &[]);
        assert_eq!(r.ret(), Some(1));
        assert!(inst.live_entries() > 0, "leaked metadata expected");
        assert!(inst.check_count() > 0);
        inst.reset();
        assert_eq!(inst.live_entries(), 0, "reset must clear all metadata");
        assert_eq!(inst.check_count(), 0);
        assert_eq!(inst.violation_count(), 0);
    }

    #[test]
    fn hardened_instance_clamps_records_and_survives_reuse() {
        let src = r#"
            int main() {
                int* p = (int*)malloc(4 * sizeof(int));
                p[4] = 99;
                int v = p[0];
                free(p);
                return v;
            }
        "#;
        let engine = Engine::new().policy(ViolationPolicy::Hardened);
        let program = engine.compile(src).expect("compiles");
        let mut inst = engine.instantiate(&program);
        assert_eq!(inst.policy(), ViolationPolicy::Hardened);
        for _ in 0..2 {
            let r = inst.run("main", &[]);
            assert_eq!(
                r.ret(),
                Some(0),
                "clamped store is dropped: {:?}",
                r.outcome
            );
            let ev = inst.drain_evidence();
            assert_eq!(ev.len(), 1, "one violation per run after reset");
            assert!(ev[0].write);
            assert_eq!(
                ev[0].fault_addr, ev[0].bound,
                "p + 16 is the first byte past the object"
            );
            assert_eq!(inst.evidence_len(), 0);
            assert_eq!(inst.evidence_overflow(), 0);
        }
        // The same program under Strict traps.
        let strict = Engine::new();
        let sp = strict.compile(src).expect("compiles");
        let r = strict.instantiate(&sp).run("main", &[]);
        assert!(r.outcome.is_spatial_violation(), "{:?}", r.outcome);
    }

    #[test]
    fn program_exposes_pass_stats() {
        // A pointer re-dereferenced without redefinition: the
        // post-instrument pass eliminates the duplicate check, and the
        // Program surfaces the count.
        let src = r#"
            int main() {
                int* p = (int*)malloc(2 * sizeof(int));
                *p = 4;
                int v = *p + *p;
                free(p);
                return v;
            }
        "#;
        let program = Engine::new().compile(src).expect("compiles");
        assert!(
            program.stats().checks_eliminated > 0,
            "expected elimination, got {:?}",
            program.stats()
        );
        assert!(!program.module().funcs.is_empty());
    }
}
