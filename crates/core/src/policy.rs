//! Violation policies and structured evidence telemetry.
//!
//! The paper treats every spatial violation as a hard trap (`check()`
//! calls `abort()`, §3.1). A deployed fleet needs the response to a
//! violation to be *first-class*: CUP (PAPERS.md) argues for a
//! repair-and-continue posture in user-space protection, and CGuard
//! frames abort-vs-report as a policy knob layered over unchanged
//! bounds machinery. This module supplies that knob:
//!
//! * [`ViolationPolicy`] — trap ([`Strict`](ViolationPolicy::Strict)),
//!   repair ([`Hardened`](ViolationPolicy::Hardened)), or observe
//!   ([`Monitor`](ViolationPolicy::Monitor)). The *checks* are identical
//!   under every policy; only the response differs, so safe executions
//!   are bit-identical across policies.
//! * [`EvidenceRecord`] — one structured forensic record per non-Strict
//!   violation: dynamic instruction index, pointer, normalized faulting
//!   byte, access size, bounds, direction, and the
//!   [`PolicyAction`] taken.
//! * [`EvidenceRing`] — a preallocated per-instance ring buffer the
//!   runtime records into without host allocation on the warm path,
//!   drained via `Instance::drain_evidence()` and aggregated per-worker
//!   by the fleet.
//!
//! Two responses the policy deliberately does **not** soften:
//! function-pointer checks (`SbFnCheck`) and vararg-index checks
//! (`SbVaCheck`) trap under every policy — there is no meaningful
//! "clamped" control transfer, and continuing past either would turn a
//! detected hijack into undefined behaviour.

/// How the runtime responds when a bounds check fails (the checks
/// themselves are identical under every policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViolationPolicy {
    /// Trap on the first violation — the paper's `abort()` and the
    /// default. The hot check path is unchanged, so Strict pays nothing
    /// for the policy seam existing.
    #[default]
    Strict,
    /// Repair and continue: clamp the offending access to the object's
    /// bounds (truncated write / zero-filled read), record an
    /// [`EvidenceRecord`], and keep executing. The deployment posture
    /// CUP argues for: no corruption beyond the object, no downtime.
    Hardened,
    /// Record an [`EvidenceRecord`] and perform the access anyway —
    /// pure telemetry, behaviour identical to an unprotected run. This
    /// subsumes the ad-hoc "detect but don't block loads" reading of
    /// store-only mode: store-only narrows *which* accesses are
    /// checked at instrumentation time, Monitor narrows *what happens*
    /// on a failed check at run time.
    Monitor,
}

impl ViolationPolicy {
    /// Short label for reports (`"strict"`, `"hardened"`, `"monitor"`).
    pub fn label(self) -> &'static str {
        match self {
            ViolationPolicy::Strict => "strict",
            ViolationPolicy::Hardened => "hardened",
            ViolationPolicy::Monitor => "monitor",
        }
    }
}

/// What a non-Strict policy did about one violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Hardened: the store was truncated to the object's bounds.
    ClampedWrite,
    /// Hardened: the load read in-bounds bytes and zero-filled the rest.
    ZeroedRead,
    /// Monitor: the access was performed unchanged.
    Observed,
}

/// One structured violation record — the forensic unit a fleet drains
/// and aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvidenceRecord {
    /// Dynamic instruction index at the violating check (the trap-PC
    /// convention the differential suites pin across lanes).
    pub pc: u64,
    /// The pointer value the access used.
    pub ptr: u64,
    /// The *first out-of-bounds byte* of the access, normalized to the
    /// PR 8 wrapper-trap convention: `ptr` itself when the access
    /// starts outside `[base, bound)`, else `bound`. Explicit-check
    /// traps report the raw `ptr` in their `Trap`; evidence records
    /// normalize so wrapper and explicit violations agree.
    pub fault_addr: u64,
    /// Access size in bytes (for wrapper violations, the builtin's
    /// whole intended range).
    pub size: u64,
    /// Lower bound of the object's metadata.
    pub base: u64,
    /// One past the object's last valid byte.
    pub bound: u64,
    /// True if the access was a store.
    pub write: bool,
    /// What the policy did about it.
    pub action: PolicyAction,
}

/// Normalizes a violating access to its first out-of-bounds byte: the
/// pointer itself when it starts outside `[base, bound)` (including the
/// NULL-bounds `base == bound == 0` encoding), otherwise `bound` — the
/// convention wrapper traps established and evidence records share.
pub fn first_oob_byte(ptr: u64, base: u64, bound: u64) -> u64 {
    if ptr < base || ptr >= bound {
        ptr
    } else {
        bound
    }
}

/// A fixed-capacity ring of [`EvidenceRecord`]s, preallocated at
/// construction so recording on the warm path never touches the host
/// allocator. When full, the oldest record is overwritten and
/// [`overflow`](EvidenceRing::overflow) counts the loss — a fleet that
/// sees a non-zero overflow knows its drain cadence (or capacity) is
/// too small for its violation rate.
#[derive(Debug)]
pub struct EvidenceRing {
    buf: Vec<EvidenceRecord>,
    cap: usize,
    /// Overwrite cursor, meaningful once `buf.len() == cap`: the index
    /// of the oldest record (and the next slot to overwrite).
    next: usize,
    overflow: u64,
}

impl EvidenceRing {
    /// Creates a ring holding at most `capacity` records. Capacity 0 is
    /// legal: every record is dropped and counted as overflow.
    pub fn new(capacity: usize) -> Self {
        EvidenceRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            next: 0,
            overflow: 0,
        }
    }

    /// Appends a record, overwriting the oldest (and ticking the
    /// overflow counter) when the ring is full. Never allocates.
    pub fn record(&mut self, r: EvidenceRecord) {
        if self.cap == 0 {
            self.overflow += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.next] = r;
            self.next = (self.next + 1) % self.cap;
            self.overflow += 1;
        }
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records overwritten (or dropped, for capacity 0) since the last
    /// [`reset`](EvidenceRing::reset) — survives
    /// [`drain`](EvidenceRing::drain) so the loss stays visible.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Removes and returns all held records, oldest first. The ring's
    /// buffer (and its overflow counter) stay in place for reuse.
    pub fn drain(&mut self) -> Vec<EvidenceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap && self.cap > 0 {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        self.buf.clear();
        self.next = 0;
        out
    }

    /// Clears records *and* the overflow counter, keeping the
    /// preallocated buffer — called from the runtime's `reset()` so a
    /// reused instance starts each run with an empty ring.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.overflow = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64) -> EvidenceRecord {
        EvidenceRecord {
            pc,
            ptr: 0x1000 + pc,
            fault_addr: 0x1000 + pc,
            size: 1,
            base: 0x1000,
            bound: 0x1010,
            write: false,
            action: PolicyAction::Observed,
        }
    }

    #[test]
    fn ring_drains_in_order_and_counts_overflow() {
        let mut ring = EvidenceRing::new(3);
        for pc in 0..5 {
            ring.record(rec(pc));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.overflow(), 2, "two oldest records were overwritten");
        let drained: Vec<u64> = ring.drain().iter().map(|r| r.pc).collect();
        assert_eq!(drained, vec![2, 3, 4], "oldest-first, newest retained");
        assert!(ring.is_empty());
        assert_eq!(ring.overflow(), 2, "drain keeps the loss visible");
        ring.reset();
        assert_eq!(ring.overflow(), 0);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = EvidenceRing::new(8);
        ring.record(rec(0));
        ring.record(rec(1));
        assert_eq!(ring.overflow(), 0);
        assert_eq!(ring.drain().len(), 2);
        // Reusable after a drain.
        ring.record(rec(2));
        assert_eq!(ring.drain()[0].pc, 2);
    }

    #[test]
    fn zero_capacity_ring_drops_and_counts() {
        let mut ring = EvidenceRing::new(0);
        ring.record(rec(0));
        assert!(ring.is_empty());
        assert_eq!(ring.overflow(), 1);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn first_oob_byte_matches_the_wrapper_convention() {
        // Starts in bounds, runs past: the first bad byte is `bound`.
        assert_eq!(first_oob_byte(0x100c, 0x1000, 0x1010), 0x1010);
        // Starts below base: the pointer itself.
        assert_eq!(first_oob_byte(0xfff, 0x1000, 0x1010), 0xfff);
        // Starts at/after bound: the pointer itself.
        assert_eq!(first_oob_byte(0x1010, 0x1000, 0x1010), 0x1010);
        assert_eq!(first_oob_byte(0x2000, 0x1000, 0x1010), 0x2000);
        // NULL bounds (forged pointer): the pointer.
        assert_eq!(first_oob_byte(0x1234, 0, 0), 0x1234);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(ViolationPolicy::default(), ViolationPolicy::Strict);
        assert_eq!(ViolationPolicy::Strict.label(), "strict");
        assert_eq!(ViolationPolicy::Hardened.label(), "hardened");
        assert_eq!(ViolationPolicy::Monitor.label(), "monitor");
    }
}
