//! The SoftBound compile-time transformation (§3, §5).
//!
//! An intra-procedural IR→IR pass. For every pointer-kind register `r` it
//! maintains two shadow registers `r_base`/`r_bound` (the paper's
//! per-pointer intermediate values) and rewrites:
//!
//! * **dereferences** — a spatial check before every load/store (loads
//!   skipped in store-only mode);
//! * **pointer loads/stores** — a disjoint-metadata table access keyed by
//!   the *location* of the pointer (§3.2);
//! * **bound creation** — `malloc` results, `alloca`s and global addresses
//!   get their statically known bounds; field GEPs *shrink* bounds to the
//!   sub-object (§3.1); int-to-pointer casts get NULL bounds (§5.2);
//! * **calls** — functions are renamed `_sb_<name>` and pointer arguments/
//!   returns travel with base/bound (extra parameters and multi-value
//!   returns, §3.3); indirect calls check the `base == bound == ptr`
//!   function-pointer encoding (§5.2); builtin ("library") calls become
//!   checked wrappers; `setbound` is compiled away into explicit bounds;
//! * **lifecycle** — metadata cleared for pointer-bearing stack slots on
//!   return and (via runtime hooks) for freed heap blocks (§5.2), and a
//!   synthesized `__sb_globals_init.<module>` seeds metadata for
//!   pointer-valued global initializers (§5.2).
//!
//! The pass is purely local — no whole-program analysis — which is what
//! makes separate compilation work (Table 1).

use crate::config::{CheckMode, SoftBoundConfig};
use sb_cir::hir::Builtin;
use sb_ir::{
    ArithOp, Callee, Function, GInit, Global, Inst, IntKind, Module, RegId, RegKind, RtFn, Value,
};

/// Prefix applied to transformed function names (§3.3).
pub const SB_PREFIX: &str = "_sb_";
/// Name prefix of the synthesized global-metadata initializer. The `__ctor.`
/// prefix is the VM's constructor convention — such functions run before
/// the entry point, which is exactly the hook the paper says it uses ("the
/// same hooks C++ uses to run code for constructing global objects",
/// §5.2). It also makes global metadata initialization compose with
/// separate compilation: after linking, every module's constructor runs.
pub const GLOBALS_INIT_PREFIX: &str = "__ctor.sb_globals";

/// A pointer-based-transformation *flavor*: the knobs that differ between
/// SoftBound and the MSCC-like baseline (§2.2, §6.5). SoftBound's flavor
/// shrinks bounds at field GEPs and gives forged (int-to-pointer) values
/// NULL bounds; MSCC's fast configuration keeps whole-object bounds (so
/// sub-object overflows are missed) and cannot handle wild casts (forged
/// pointers become unbounded, i.e. unchecked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flavor {
    /// Function-name prefix (`"_sb_"` for SoftBound).
    pub prefix: &'static str,
    /// Shrink bounds at field GEPs (§3.1). Off for MSCC.
    pub shrink_fields: bool,
    /// Int-to-pointer casts get `[0, u64::MAX)` instead of NULL bounds —
    /// models schemes that cannot handle arbitrary casts safely.
    pub unbounded_int_to_ptr: bool,
    /// Emit `Mscc*` runtime calls instead of `Sb*`.
    pub mscc_rt: bool,
}

impl Flavor {
    /// The SoftBound flavor (the default).
    pub fn softbound() -> Self {
        Flavor {
            prefix: SB_PREFIX,
            shrink_fields: true,
            unbounded_int_to_ptr: false,
            mscc_rt: false,
        }
    }

    /// The MSCC-like flavor (fast configuration of \[34\]).
    pub fn mscc() -> Self {
        Flavor {
            prefix: "_mscc_",
            shrink_fields: false,
            unbounded_int_to_ptr: true,
            mscc_rt: true,
        }
    }

    fn check(&self, is_store: bool) -> RtFn {
        if self.mscc_rt {
            RtFn::MsccCheck { is_store }
        } else {
            RtFn::SbCheck { is_store }
        }
    }

    fn meta_load(&self) -> RtFn {
        if self.mscc_rt {
            RtFn::MsccMetaLoad
        } else {
            RtFn::SbMetaLoad
        }
    }

    fn meta_store(&self) -> RtFn {
        if self.mscc_rt {
            RtFn::MsccMetaStore
        } else {
            RtFn::SbMetaStore
        }
    }

    fn va_check(&self) -> RtFn {
        if self.mscc_rt {
            RtFn::MsccVaCheck
        } else {
            RtFn::SbVaCheck
        }
    }
}

/// Applies the SoftBound transformation to a module, returning the
/// instrumented module. The input is not modified.
pub fn instrument(module: &Module, cfg: &SoftBoundConfig) -> Module {
    instrument_flavored(module, cfg, Flavor::softbound())
}

/// Applies the pointer-based transformation with an explicit [`Flavor`]
/// (used by the MSCC-like baseline).
pub fn instrument_flavored(module: &Module, cfg: &SoftBoundConfig, flavor: Flavor) -> Module {
    let mut m = module.clone();

    // Snapshot the *original* signatures: call-site rewriting consults the
    // callee's pre-transformation pointer parameters/returns.
    let orig_params: Vec<Vec<RegKind>> = m.funcs.iter().map(|f| f.param_kinds.clone()).collect();
    let orig_rets: Vec<Vec<RegKind>> = m.funcs.iter().map(|f| f.ret_kinds.clone()).collect();
    let global_sizes: Vec<u64> = m.globals.iter().map(|g| g.size).collect();

    for f in &mut m.funcs {
        transform_fn(f, &orig_params, &orig_rets, &global_sizes, cfg, flavor);
    }

    // Synthesize the global metadata initializer; the VM's constructor
    // convention runs it before the entry point.
    let init = build_globals_init(&m.globals, &m.name, flavor);
    m.funcs.push(init);
    m
}

/// Builds `__sb_globals_init.<module>`: one metadata store per
/// pointer-valued global initializer (§5.2 "Global variables"). The VM
/// runs every function with this prefix before `main`, which keeps
/// separately compiled modules working after linking.
fn build_globals_init(globals: &[Global], module_name: &str, flavor: Flavor) -> Function {
    let mut f = Function {
        name: format!(
            "__ctor.{}globals.{module_name}",
            flavor.prefix.trim_start_matches('_')
        ),
        params: vec![],
        param_kinds: vec![],
        ret_kinds: vec![],
        reg_kinds: vec![],
        blocks: vec![],
        vararg: false,
        defined: true,
    };
    let b = f.new_block();
    for (gi, g) in globals.iter().enumerate() {
        for (off, init) in &g.init {
            if g.ptr_slots.binary_search(off).is_err() {
                continue;
            }
            let (base, bound) = match init {
                GInit::GlobalAddr { id, .. } => (
                    Value::GlobalAddr { id: *id, offset: 0 },
                    Value::GlobalAddr {
                        id: *id,
                        offset: globals[id.0 as usize].size,
                    },
                ),
                GInit::FuncAddr(fid) => (Value::FuncAddr(*fid), Value::FuncAddr(*fid)),
                GInit::Bytes(_) => continue, // zero/integer patterns: NULL bounds
            };
            f.blocks[b.0 as usize].insts.push(Inst::Rt {
                dsts: vec![],
                rt: flavor.meta_store(),
                args: vec![
                    Value::GlobalAddr {
                        id: sb_ir::GlobalId(gi as u32),
                        offset: *off,
                    },
                    base,
                    bound,
                ],
            });
        }
    }
    f.blocks[b.0 as usize]
        .insts
        .push(Inst::Ret { vals: vec![] });
    f
}

struct Cx<'a> {
    shadows: Vec<Option<(RegId, RegId)>>,
    orig_params: &'a [Vec<RegKind>],
    orig_rets: &'a [Vec<RegKind>],
    global_sizes: &'a [u64],
    cfg: &'a SoftBoundConfig,
    flavor: Flavor,
    /// Allocas with pointer slots, for return-time metadata clearing.
    ptr_allocas: Vec<(RegId, u64)>,
    ret_was_ptr: bool,
}

impl Cx<'_> {
    /// `(base, bound)` metadata values for an operand (§3.1):
    /// registers use their shadows, global addresses have compile-time
    /// constant bounds, function addresses use the zero-sized encoding,
    /// and raw integers get NULL bounds.
    fn meta_of(&self, v: &Value) -> (Value, Value) {
        match v {
            Value::Reg(r) => self.shadows[r.0 as usize]
                .map(|(b, e)| (Value::Reg(b), Value::Reg(e)))
                .unwrap_or((Value::Const(0), Value::Const(0))),
            Value::Const(_) => (Value::Const(0), Value::Const(0)),
            Value::GlobalAddr { id, .. } => (
                Value::GlobalAddr { id: *id, offset: 0 },
                Value::GlobalAddr {
                    id: *id,
                    offset: self.global_sizes[id.0 as usize],
                },
            ),
            Value::FuncAddr(f) => (Value::FuncAddr(*f), Value::FuncAddr(*f)),
        }
    }

    fn shadow(&self, r: RegId) -> (RegId, RegId) {
        self.shadows[r.0 as usize].expect("pointer register has shadows")
    }

    fn is_ptr_value(&self, f: &Function, v: &Value) -> bool {
        match v {
            Value::Reg(r) => f.reg_kind(*r) == RegKind::Ptr,
            Value::GlobalAddr { .. } | Value::FuncAddr(_) => true,
            Value::Const(_) => false,
        }
    }
}

fn transform_fn(
    f: &mut Function,
    orig_params: &[Vec<RegKind>],
    orig_rets: &[Vec<RegKind>],
    global_sizes: &[u64],
    cfg: &SoftBoundConfig,
    flavor: Flavor,
) {
    if f.name.starts_with(flavor.prefix) {
        return; // already transformed
    }
    let nregs = f.reg_kinds.len();
    let mut cx = Cx {
        shadows: vec![None; nregs],
        orig_params,
        orig_rets,
        global_sizes,
        cfg,
        flavor,
        ptr_allocas: Vec::new(),
        ret_was_ptr: f.ret_kinds == [RegKind::Ptr],
    };

    // Extend the signature: pointer parameters gain trailing (base, bound)
    // parameters — their shadow registers are exactly those parameters, so
    // incoming metadata flows with no extra moves (§3.3).
    let orig_param_regs: Vec<(usize, RegId)> = f
        .params
        .iter()
        .enumerate()
        .filter(|(i, _)| f.param_kinds[*i] == RegKind::Ptr)
        .map(|(i, r)| (i, *r))
        .collect();
    for (_, preg) in &orig_param_regs {
        let b = f.new_reg(RegKind::Int);
        let e = f.new_reg(RegKind::Int);
        f.params.push(b);
        f.params.push(e);
        f.param_kinds.push(RegKind::Int);
        f.param_kinds.push(RegKind::Int);
        cx.shadows[preg.0 as usize] = Some((b, e));
    }
    if cx.ret_was_ptr {
        f.ret_kinds = vec![RegKind::Ptr, RegKind::Int, RegKind::Int];
    }
    f.name = format!("{}{}", flavor.prefix, f.name);
    if !f.defined {
        return;
    }

    // Shadows for every other pointer register.
    for r in 0..nregs {
        if f.reg_kinds[r] == RegKind::Ptr && cx.shadows[r].is_none() {
            let b = f.new_reg(RegKind::Int);
            let e = f.new_reg(RegKind::Int);
            cx.shadows[r] = Some((b, e));
        }
    }

    // Collect pointer-bearing allocas (for §5.2 return-time clearing).
    for inst in &f.blocks[0].insts {
        if let Inst::Alloca { dst, info } = inst {
            if !info.ptr_slots.is_empty() {
                cx.ptr_allocas.push((*dst, info.size));
            }
        }
    }

    for bi in 0..f.blocks.len() {
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut out = Vec::with_capacity(insts.len() * 2);
        for inst in insts {
            rewrite(inst, f, &cx, &mut out);
        }
        f.blocks[bi].insts = out;
    }
}

fn rewrite(inst: Inst, f: &Function, cx: &Cx<'_>, out: &mut Vec<Inst>) {
    let cfg = cx.cfg;
    match inst {
        Inst::Load { dst, mem, addr } => {
            if cfg.mode == CheckMode::Full {
                let (b, e) = cx.meta_of(&addr);
                out.push(Inst::Rt {
                    dsts: vec![],
                    rt: cx.flavor.check(false),
                    args: vec![addr, b, e, Value::Const(mem.size() as i64)],
                });
            }
            // Metadata lookup first: `addr` may be clobbered by the load
            // itself when dst == addr (e.g. `p = *p`).
            if mem.is_ptr() {
                let (db, de) = cx.shadow(dst);
                out.push(Inst::Rt {
                    dsts: vec![db, de],
                    rt: cx.flavor.meta_load(),
                    args: vec![addr],
                });
            }
            out.push(Inst::Load { dst, mem, addr });
        }
        Inst::Store { mem, addr, value } => {
            let (b, e) = cx.meta_of(&addr);
            out.push(Inst::Rt {
                dsts: vec![],
                rt: cx.flavor.check(true),
                args: vec![addr, b, e, Value::Const(mem.size() as i64)],
            });
            out.push(Inst::Store { mem, addr, value });
            if mem.is_ptr() {
                let (vb, ve) = cx.meta_of(&value);
                out.push(Inst::Rt {
                    dsts: vec![],
                    rt: cx.flavor.meta_store(),
                    args: vec![addr, vb, ve],
                });
            }
        }
        Inst::Alloca { dst, info } => {
            let size = info.size;
            out.push(Inst::Alloca { dst, info });
            let (db, de) = cx.shadow(dst);
            out.push(Inst::Mov {
                dst: db,
                src: Value::Reg(dst),
            });
            out.push(Inst::Bin {
                dst: de,
                op: ArithOp::Add,
                k: IntKind::I64,
                lhs: Value::Reg(dst),
                rhs: Value::Const(size as i64),
            });
        }
        Inst::Gep {
            dst,
            base,
            index,
            scale,
            offset,
            field_size,
        } => {
            out.push(Inst::Gep {
                dst,
                base,
                index,
                scale,
                offset,
                field_size,
            });
            let (db, de) = cx.shadow(dst);
            match field_size.filter(|_| cx.flavor.shrink_fields) {
                Some(sz) => {
                    // Shrink to the sub-object (§3.1): base = &field,
                    // bound = &field + sizeof(field).
                    out.push(Inst::Mov {
                        dst: db,
                        src: Value::Reg(dst),
                    });
                    out.push(Inst::Bin {
                        dst: de,
                        op: ArithOp::Add,
                        k: IntKind::I64,
                        lhs: Value::Reg(dst),
                        rhs: Value::Const(sz as i64),
                    });
                }
                None => {
                    // Pointer arithmetic inherits bounds; no check here —
                    // out-of-bounds pointers are legal until dereferenced.
                    let (bb, be) = cx.meta_of(&base);
                    out.push(Inst::Mov { dst: db, src: bb });
                    out.push(Inst::Mov { dst: de, src: be });
                }
            }
        }
        Inst::Mov { dst, src } => {
            out.push(Inst::Mov { dst, src });
            if f.reg_kind(dst) == RegKind::Ptr {
                // An integer *register* flowing into a pointer register is
                // an int-to-pointer cast (§5.2): NULL bounds for SoftBound;
                // unbounded (unchecked) for schemes that cannot handle
                // arbitrary casts.
                let int_to_ptr = matches!(src, Value::Reg(r) if f.reg_kind(r) == RegKind::Int);
                let (sb, se) = if int_to_ptr && cx.flavor.unbounded_int_to_ptr {
                    (Value::Const(0), Value::Const(-1))
                } else {
                    cx.meta_of(&src)
                };
                let (db, de) = cx.shadow(dst);
                out.push(Inst::Mov { dst: db, src: sb });
                out.push(Inst::Mov { dst: de, src: se });
            }
        }
        Inst::Ret { mut vals } => {
            if cfg.clear_on_return && !cx.flavor.mscc_rt {
                for &(areg, size) in &cx.ptr_allocas {
                    out.push(Inst::Rt {
                        dsts: vec![],
                        rt: RtFn::SbMetaClear,
                        args: vec![Value::Reg(areg), Value::Const(size as i64)],
                    });
                }
            }
            if cx.ret_was_ptr {
                let (b, e) = cx.meta_of(&vals[0]);
                vals.push(b);
                vals.push(e);
            }
            out.push(Inst::Ret { vals });
        }
        Inst::Call {
            dsts,
            callee,
            args,
            ptr_hint,
            ..
        } => {
            rewrite_call(dsts, callee, args, ptr_hint, f, cx, out);
        }
        Inst::Rt { .. } => panic!("module already contains runtime calls"),
        other => out.push(other),
    }
}

fn rewrite_call(
    mut dsts: Vec<RegId>,
    callee: Callee,
    args: Vec<Value>,
    ptr_hint: bool,
    f: &Function,
    cx: &Cx<'_>,
    out: &mut Vec<Inst>,
) {
    let cfg = cx.cfg;
    match callee {
        Callee::Direct(fid) => {
            let pkinds = &cx.orig_params[fid.0 as usize];
            // Insert (base, bound) for each pointer parameter *between*
            // the fixed arguments and any variadic tail, matching the
            // extended parameter list of the transformed callee.
            let mut metas = Vec::new();
            for (i, k) in pkinds.iter().enumerate() {
                if *k == RegKind::Ptr {
                    let (b, e) = cx.meta_of(args.get(i).unwrap_or(&Value::Const(0)));
                    metas.push(b);
                    metas.push(e);
                }
            }
            let mut new_args = Vec::with_capacity(args.len() + metas.len());
            let fixed = pkinds.len().min(args.len());
            new_args.extend_from_slice(&args[..fixed]);
            new_args.extend(metas);
            new_args.extend_from_slice(&args[fixed..]);
            if cx.orig_rets[fid.0 as usize] == [RegKind::Ptr] && !dsts.is_empty() {
                let (db, de) = cx.shadow(dsts[0]);
                dsts.push(db);
                dsts.push(de);
            }
            out.push(Inst::Call {
                dsts,
                callee: Callee::Direct(fid),
                args: new_args,
                ptr_hint,
                wrapped: false,
            });
        }
        Callee::Indirect(target) => {
            if cfg.check_fn_ptrs && !cx.flavor.mscc_rt {
                let (tb, te) = cx.meta_of(&target);
                out.push(Inst::Rt {
                    dsts: vec![],
                    rt: RtFn::SbFnCheck,
                    args: vec![target, tb, te],
                });
            }
            // Pointer-ness of arguments is judged by value kind; the
            // callee was transformed from matching parameter types.
            let mut new_args = args.clone();
            for a in &args {
                if cx.is_ptr_value(f, a) {
                    let (b, e) = cx.meta_of(a);
                    new_args.push(b);
                    new_args.push(e);
                }
            }
            if dsts.first().map(|d| f.reg_kind(*d)) == Some(RegKind::Ptr) {
                let (db, de) = cx.shadow(dsts[0]);
                dsts.push(db);
                dsts.push(de);
            }
            out.push(Inst::Call {
                dsts,
                callee: Callee::Indirect(target),
                args: new_args,
                ptr_hint,
                wrapped: false,
            });
        }
        Callee::Builtin(b) => rewrite_builtin(b, dsts, args, ptr_hint, cx, out),
    }
}

fn rewrite_builtin(
    b: Builtin,
    mut dsts: Vec<RegId>,
    args: Vec<Value>,
    ptr_hint: bool,
    cx: &Cx<'_>,
    out: &mut Vec<Inst>,
) {
    let cfg = cx.cfg;
    // `setbound(p, size)` compiles away entirely: the result is p with the
    // explicit bounds [p, p+size) (§5.2 "Creating pointers from integers").
    if b == Builtin::Setbound {
        if let Some(&d) = dsts.first() {
            let (db, de) = cx.shadow(d);
            out.push(Inst::Mov {
                dst: d,
                src: args[0],
            });
            out.push(Inst::Mov {
                dst: db,
                src: args[0],
            });
            out.push(Inst::Bin {
                dst: de,
                op: ArithOp::Add,
                k: IntKind::I64,
                lhs: args[0],
                rhs: args[1],
            });
        }
        return;
    }
    // Variadic decode checks (§5.2 "Variable argument functions").
    if matches!(b, Builtin::VaArgLong | Builtin::VaArgPtr) {
        out.push(Inst::Rt {
            dsts: vec![],
            rt: cx.flavor.va_check(),
            args: vec![args[0]],
        });
    }
    // Library-wrapper behaviour (§5.2): append (base, bound) for each
    // pointer parameter, in declaration order, after all arguments. The VM
    // builtins read them positionally and perform the wrapper checks.
    let sig = b.sig();
    let mut new_args = args.clone();
    for (i, pty) in sig.params.iter().enumerate() {
        if pty.is_ptr() {
            let (mb, me) = cx.meta_of(args.get(i).unwrap_or(&Value::Const(0)));
            new_args.push(mb);
            new_args.push(me);
        }
    }
    if sig.ret.is_ptr() && !dsts.is_empty() {
        let (db, de) = cx.shadow(dsts[0]);
        dsts.push(db);
        dsts.push(de);
    }
    let memcpy_args = (b == Builtin::Memcpy).then(|| (args[0], args[1], args[2]));
    out.push(Inst::Call {
        dsts,
        callee: Callee::Builtin(b),
        args: new_args,
        ptr_hint,
        wrapped: true,
    });
    // memcpy metadata handling (§5.2): copy pointer metadata unless the
    // type heuristic proves the buffers hold no pointers.
    if let Some((d, s, n)) = memcpy_args {
        if !cfg.memcpy_heuristic || ptr_hint {
            out.push(Inst::Rt {
                dsts: vec![],
                rt: RtFn::SbMemcpyMeta,
                args: vec![d, s, n],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SoftBoundConfig;

    fn instrumented(src: &str, cfg: &SoftBoundConfig) -> Module {
        let prog = sb_cir::compile(src).expect("compiles");
        let mut m = sb_ir::lower(&prog, "t");
        sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
        let m2 = instrument(&m, cfg);
        sb_ir::verify(&m2).unwrap_or_else(|e| panic!("instrumented module invalid: {e}\n{m2}"));
        m2
    }

    fn count_rt(m: &Module, pred: impl Fn(&RtFn) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter(|i| matches!(i, Inst::Rt { rt, .. } if pred(rt)))
            .count()
    }

    #[test]
    fn functions_renamed_with_prefix() {
        let m = instrumented("int main() { return 0; }", &SoftBoundConfig::default());
        assert!(m.func("_sb_main").is_some());
        assert!(m.func("main").is_none());
    }

    #[test]
    fn pointer_params_gain_base_and_bound() {
        let m = instrumented(
            "int f(int* p, int n) { return n; } int main() { return 0; }",
            &SoftBoundConfig::default(),
        );
        let f = m.func("_sb_f").expect("exists");
        assert_eq!(f.params.len(), 4, "p, n, p_base, p_bound");
    }

    #[test]
    fn pointer_returns_become_three_values() {
        let m = instrumented(
            "char* id(char* p) { return p; } int main() { return 0; }",
            &SoftBoundConfig::default(),
        );
        let f = m.func("_sb_id").expect("exists");
        assert_eq!(f.ret_kinds.len(), 3);
        let rets: Vec<usize> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Ret { vals } => Some(vals.len()),
                _ => None,
            })
            .collect();
        assert!(rets.iter().all(|&n| n == 3));
    }

    #[test]
    fn full_mode_checks_loads_and_stores() {
        let src = "int g; int main() { g = 5; return g; }";
        let full = instrumented(src, &SoftBoundConfig::full_shadow());
        let store_only = instrumented(src, &SoftBoundConfig::store_only_shadow());
        let full_load_checks =
            count_rt(&full, |rt| matches!(rt, RtFn::SbCheck { is_store: false }));
        let full_store_checks =
            count_rt(&full, |rt| matches!(rt, RtFn::SbCheck { is_store: true }));
        assert!(full_load_checks >= 1);
        assert!(full_store_checks >= 1);
        assert_eq!(
            count_rt(&store_only, |rt| matches!(
                rt,
                RtFn::SbCheck { is_store: false }
            )),
            0,
            "store-only mode must not check loads"
        );
        assert!(
            count_rt(&store_only, |rt| matches!(
                rt,
                RtFn::SbCheck { is_store: true }
            )) >= 1
        );
    }

    #[test]
    fn store_only_still_propagates_metadata() {
        let src = "int* g; int main() { int* p = g; g = p; return 0; }";
        let m = instrumented(src, &SoftBoundConfig::store_only_shadow());
        assert!(
            count_rt(&m, |rt| matches!(rt, RtFn::SbMetaLoad)) >= 1,
            "metadata loads kept:\n{m}"
        );
        assert!(
            count_rt(&m, |rt| matches!(rt, RtFn::SbMetaStore)) >= 1,
            "metadata stores kept"
        );
    }

    #[test]
    fn pointer_loads_get_meta_loads() {
        let m = instrumented(
            "int* f(int** pp) { return *pp; } int main() { return 0; }",
            &SoftBoundConfig::default(),
        );
        assert_eq!(count_rt(&m, |rt| matches!(rt, RtFn::SbMetaLoad)), 1);
    }

    #[test]
    fn indirect_calls_check_function_pointers() {
        let m = instrumented(
            "int apply(int (*f)(int), int v) { return f(v); } int main() { return 0; }",
            &SoftBoundConfig::default(),
        );
        assert_eq!(count_rt(&m, |rt| matches!(rt, RtFn::SbFnCheck)), 1);
    }

    #[test]
    fn globals_init_synthesized_and_called() {
        let m = instrumented(
            "int x; int* px = &x; int main() { return *px; }",
            &SoftBoundConfig::default(),
        );
        let init = m
            .funcs
            .iter()
            .find(|f| f.name.starts_with(GLOBALS_INIT_PREFIX))
            .expect("init function exists");
        let meta_stores = init
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Rt {
                        rt: RtFn::SbMetaStore,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(meta_stores, 1, "px gets its metadata seeded");
        assert!(
            init.name.starts_with("__ctor."),
            "runs via the VM constructor convention"
        );
    }

    #[test]
    fn setbound_compiles_away() {
        let m = instrumented(
            r#"int main() { char* p = (char*)setbound((void*)4096, 64); return p != 0; }"#,
            &SoftBoundConfig::default(),
        );
        let setbound_calls = m
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter(|i| {
                matches!(
                    i,
                    Inst::Call {
                        callee: Callee::Builtin(Builtin::Setbound),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(setbound_calls, 0, "setbound becomes explicit bound moves");
    }

    #[test]
    fn memcpy_heuristic_controls_meta_copy() {
        let with_ptrs = r#"
            struct holder { char* p; };
            int main() {
                struct holder a; struct holder b;
                a.p = (char*)&a;
                memcpy(&b, &a, sizeof(struct holder));
                return 0;
            }"#;
        let no_ptrs = r#"
            int main() {
                char a[8]; char b[8];
                memcpy(b, a, 8);
                return 0;
            }"#;
        let cfg = SoftBoundConfig::default();
        assert_eq!(
            count_rt(&instrumented(with_ptrs, &cfg), |rt| matches!(
                rt,
                RtFn::SbMemcpyMeta
            )),
            1
        );
        assert_eq!(
            count_rt(&instrumented(no_ptrs, &cfg), |rt| matches!(
                rt,
                RtFn::SbMemcpyMeta
            )),
            0
        );
        // With the heuristic off, metadata is always copied (safe default).
        let cfg_off = SoftBoundConfig {
            memcpy_heuristic: false,
            ..SoftBoundConfig::default()
        };
        assert_eq!(
            count_rt(&instrumented(no_ptrs, &cfg_off), |rt| matches!(
                rt,
                RtFn::SbMemcpyMeta
            )),
            1
        );
    }

    #[test]
    fn frame_clearing_emitted_for_pointer_locals() {
        let m = instrumented(
            "int main() { char* arr[4]; arr[0] = (char*)arr; return arr[0] != 0; }",
            &SoftBoundConfig::default(),
        );
        assert!(count_rt(&m, |rt| matches!(rt, RtFn::SbMetaClear)) >= 1);
        let off = instrumented(
            "int main() { char* arr[4]; arr[0] = (char*)arr; return arr[0] != 0; }",
            &SoftBoundConfig {
                clear_on_return: false,
                ..SoftBoundConfig::default()
            },
        );
        assert_eq!(count_rt(&off, |rt| matches!(rt, RtFn::SbMetaClear)), 0);
    }

    #[test]
    fn builtin_calls_are_wrapped() {
        let m = instrumented(
            r#"int main() { char b[8]; strcpy(b, "hi"); return 0; }"#,
            &SoftBoundConfig::default(),
        );
        let wrapped = m
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter_map(|i| match i {
                Inst::Call {
                    callee: Callee::Builtin(Builtin::Strcpy),
                    args,
                    wrapped,
                    ..
                } => Some((args.len(), *wrapped)),
                _ => None,
            })
            .next()
            .expect("strcpy call present");
        assert_eq!(
            wrapped,
            (6, true),
            "dst, src + 2×(base,bound), wrapped flag"
        );
    }

    #[test]
    fn instrumentation_survives_post_optimization() {
        // §6.1: the full optimizer re-runs after instrumentation. DCE must
        // never delete checks; the only pass allowed to drop one is
        // redundant-check elimination, so the count may shrink but a
        // non-trivial set must remain.
        let src = r#"
            int sum(int* xs, int n) { int s = 0; for (int i = 0; i < n; i++) s += xs[i]; return s; }
            int main() { int a[4]; a[0] = 1; return sum(a, 4); }
        "#;
        let mut m = instrumented(src, &SoftBoundConfig::default());
        let checks_before = count_rt(&m, |rt| matches!(rt, RtFn::SbCheck { .. }));
        let stats = sb_ir::optimize_with_stats(&mut m, sb_ir::OptLevel::PostInstrument);
        sb_ir::verify(&m).expect("still valid");
        let checks_after = count_rt(&m, |rt| matches!(rt, RtFn::SbCheck { .. }));
        assert_eq!(
            checks_after + stats.checks_eliminated,
            checks_before,
            "every missing check must be accounted for by the elimination pass"
        );
        assert!(checks_after > 0, "the loop-carried checks must survive");
    }

    #[test]
    fn redundant_rechecks_of_same_pointer_eliminated() {
        // The same dereference repeated in straight-line code with no
        // intervening pointer store or call: the second (and further)
        // checks of the identical (ptr, base, bound, size) are redundant.
        let src = r#"
            int g;
            int twice(int* p) { return *p + *p + *p; }
            int main() { return twice(&g); }
        "#;
        let engine = crate::Engine::new();
        let program = engine.compile(src).expect("compiles");
        assert!(
            program.stats().checks_eliminated > 0,
            "repeated *p loads must share one check:\n{}",
            program.module()
        );
        // The protected program still runs and computes the same value.
        let r = engine.instantiate(&program).run("main", &[]);
        assert_eq!(r.ret(), Some(0), "{:?}", r.outcome);
    }
}
