//! Proves evidence telemetry is allocation-free in the steady state.
//!
//! The evidence ring is preallocated at instance construction
//! (`SoftBoundConfig::evidence_capacity` records) and recording a
//! violation under the Hardened policy only writes into it — so a
//! warmed instance replaying an overflow-heavy program must ask the
//! host allocator for nothing, evidence emission included. Draining
//! returns a fresh `Vec` and is therefore done outside the measured
//! window (that is the caller's explicit export step, not the hot
//! path).

use softbound::{Engine, Facility, ViolationPolicy};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes the measuring sections: the allocation counter is global,
/// so concurrently running tests would see each other's allocations.
static MEASURE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Runs `window` until it reports zero allocations, up to a few
/// attempts, returning the last attempt's delta. The counter is
/// process-global, so the measured section also sees transient
/// allocations from the libtest harness's own threads; noise can only
/// *add* counts, so a genuinely allocation-free replay reaches zero on
/// some attempt, while a real per-record allocation repeats every time.
fn min_delta_over_attempts(mut window: impl FnMut() -> u64) -> u64 {
    let mut delta = u64::MAX;
    for _ in 0..5 {
        delta = window();
        if delta == 0 {
            break;
        }
    }
    delta
}

/// Overflow-heavy, allocation-free probe: a guarded stack buffer is
/// overrun through explicit per-access checks (no printf, no malloc, no
/// string builtins — the program itself asks the host for nothing).
/// With `n = 64`, indices `i & 31` hit 16..31 twice: 32 clamped stores,
/// 32 evidence records per run — well inside the default ring capacity.
const PROBE: &str = r#"
    int main(int n) {
        char buf[16];
        int sum = 0;
        for (int i = 0; i < n; i = i + 1) buf[i & 31] = (char)i;
        for (int i = 0; i < 16; i = i + 1) sum = sum + buf[i];
        return sum > 0;
    }
"#;

#[test]
fn warm_hardened_instance_records_evidence_without_allocating() {
    // Locked before any setup: compilation in a concurrently-running
    // test would bump the shared counter mid-measurement.
    let _guard = MEASURE.lock().expect("no poisoned measurements");
    let engine = Engine::new().policy(ViolationPolicy::Hardened);
    let program = engine.compile(PROBE).expect("compiles");
    let mut instance = engine.instantiate(&program);

    // Warmup: maps the stack pages, grows the frame pool, and exercises
    // the full clamp + record path once.
    let warm = instance.run("main", &[64]);
    assert_eq!(warm.ret(), Some(1), "{:?}", warm.outcome);
    assert_eq!(instance.evidence_len(), 32, "32 clamped stores per run");
    let drained = instance.drain_evidence();
    assert_eq!(drained.len(), 32);

    let mut evidence_len = 0;
    let delta = min_delta_over_attempts(|| {
        let before = allocs();
        let again = instance.run("main", &[64]);
        let delta = allocs() - before;
        assert_eq!(again.ret(), Some(1), "{:?}", again.outcome);
        evidence_len = instance.evidence_len();
        delta
    });
    assert_eq!(
        evidence_len, 32,
        "every replay must re-record the full evidence stream"
    );
    assert_eq!(instance.evidence_overflow(), 0);
    assert_eq!(
        delta, 0,
        "warm hardened run must not allocate while emitting evidence: \
         {delta} allocations for {evidence_len} records"
    );
}

/// Like [`PROBE`], but it also stores pointers into a guarded array so
/// every iteration writes shadow-space metadata — the traffic that
/// would expose a copy-on-first-touch directory allocating chunks (or a
/// decommit freeing frames) on the warm path.
const SHARED_PROBE: &str = r#"
    int main(int n) {
        char buf[16];
        char* slots[8];
        int sum = 0;
        for (int i = 0; i < n; i = i + 1) slots[i & 7] = buf + (i & 15);
        for (int i = 0; i < 8; i = i + 1) sum = sum + (slots[i] != 0);
        for (int i = 0; i < n; i = i + 1) buf[i & 31] = (char)i;
        return sum > 0;
    }
"#;

#[test]
fn warm_shared_facility_run_allocates_nothing() {
    // The shared-reservation facility overlays worker-private directory
    // chunks on a process-wide zero prototype. Chunks materialize on
    // first page commit and reset parks page frames instead of freeing
    // them, so a warmed instance — metadata stores, clamped overflows,
    // and reset churn included — must ask the host allocator for
    // nothing.
    let _guard = MEASURE.lock().expect("no poisoned measurements");
    let engine = Engine::new()
        .facility(Facility::ShadowShared)
        .policy(ViolationPolicy::Hardened);
    let program = engine.compile(SHARED_PROBE).expect("compiles");
    let mut instance = engine.instantiate(&program);

    // Warmup: commits shadow pages (materializing their directory
    // chunks), maps stack pages, and fills the frame pools.
    let warm = instance.run("main", &[64]);
    assert_eq!(warm.ret(), Some(1), "{:?}", warm.outcome);
    instance.drain_evidence();

    let delta = min_delta_over_attempts(|| {
        let before = allocs();
        instance.reset();
        let again = instance.run("main", &[64]);
        let delta = allocs() - before;
        assert_eq!(again.ret(), Some(1), "{:?}", again.outcome);
        delta
    });
    assert_eq!(
        delta, 0,
        "warm shared-facility replay (reset included) must not touch \
         the host allocator: {delta} allocations"
    );
}
