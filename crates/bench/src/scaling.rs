//! Fleet scaling curve: aggregate requests/sec of the
//! [`softbound::fleet`] worker pool as the pool grows, measured over
//! the §6.4 nhttpd daemon on a deterministic connection-batch stream.
//!
//! Each pool size is measured twice — once over per-worker private
//! shadow facilities (`Facility::ShadowPaged`, every worker owns a
//! full 256 MiB directory) and once over the process-wide shared
//! reservation (`Facility::ShadowShared`, one directory for the whole
//! pool) — so the JSON records the standing metadata reservation both
//! ways and the shared facility's headline (8 workers within ~1.2× of
//! a single worker, instead of 8×) is a measured number, not a claim.
//!
//! Rendered into `BENCH_softbound.json` (the `scaling` section) by the
//! `perf_trajectory` binary alongside the per-lane perf rows:
//!
//! ```sh
//! cargo run -p sb-bench --bin perf_trajectory --release
//! ```
//!
//! The curve is only as honest as the host: the JSON records
//! [`host_cores`] next to the points, because on a single-core
//! container every worker count shares one core and the curve is flat
//! by construction — what the measurement then still proves is that
//! pooling does not *collapse* (no lock convoys, no serialization
//! through shared state; the shared directory is read-only on the
//! check path, so there is no shared mutable state to convoy on).

use softbound::fleet;
use softbound::{Engine, Facility};

/// Pool sizes the curve samples.
pub const WORKER_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Requests per measured point (each request serves an nhttpd
/// connection batch of 1–4 connections, 7 HTTP requests each).
pub const REQUESTS_PER_POINT: usize = 24;

/// One point on the scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Pool size.
    pub workers: usize,
    /// Requests served.
    pub requests: usize,
    /// Best-of-N wall time for the whole batch, nanoseconds
    /// (private-facility pool, the historical timing lane).
    pub wall_ns: u64,
    /// Aggregate throughput at that wall time.
    pub reqs_per_sec: f64,
    /// Median request latency (nearest-rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Largest per-worker standing metadata reservation observed in
    /// the private-facility pool (the cost the shared reservation
    /// removes; kept for curve continuity across report versions).
    pub reservation_bytes_per_worker: usize,
    /// Whole-pool standing reservation with per-worker private
    /// facilities: every worker pays for its own directory.
    pub reservation_bytes_private: usize,
    /// Whole-pool standing reservation with the shared facility: one
    /// directory counted once plus each worker's private pages.
    pub reservation_bytes_shared: usize,
}

/// CPU cores visible to this process — the context that makes the
/// curve interpretable (a flat curve on 1 core is expected; on 8 cores
/// it would be a finding).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn best_of(
    engine: &Engine,
    program: &softbound::Program,
    stream: &[i64],
    workers: usize,
) -> fleet::FleetReport {
    let mut best: Option<fleet::FleetReport> = None;
    for _ in 0..3 {
        let report = fleet::serve(engine, program, "main", stream, workers);
        if best.as_ref().is_none_or(|b| report.wall_ns < b.wall_ns) {
            best = Some(report);
        }
    }
    best.expect("at least one attempt")
}

/// Measures the scaling curve: for each pool size, serves the same
/// deterministic nhttpd batch stream through both facility flavours
/// and keeps the best-of-N wall time (noise only ever slows a batch
/// down).
pub fn run() -> Vec<ScalingPoint> {
    let daemon = sb_workloads::daemons::all()
        .into_iter()
        .find(|d| d.name == "nhttpd")
        .expect("nhttpd daemon exists");
    let private_engine = Engine::new().facility(Facility::ShadowPaged);
    let shared_engine = Engine::new().facility(Facility::ShadowShared);
    let private_program = private_engine
        .compile(daemon.source)
        .expect("daemon compiles");
    let shared_program = shared_engine
        .compile(daemon.source)
        .expect("daemon compiles");
    let stream = sb_workloads::nhttpd_batches(REQUESTS_PER_POINT, 0x5ca1e);

    WORKER_COUNTS
        .iter()
        .map(|&workers| {
            let report = best_of(&private_engine, &private_program, &stream, workers);
            let shared = best_of(&shared_engine, &shared_program, &stream, workers);
            ScalingPoint {
                workers,
                requests: report.results.len(),
                wall_ns: report.wall_ns,
                reqs_per_sec: report.reqs_per_sec,
                p50_ns: report.p50_ns,
                p95_ns: report.p95_ns,
                p99_ns: report.p99_ns,
                reservation_bytes_per_worker: report
                    .per_worker
                    .iter()
                    .map(|w| w.reservation_bytes)
                    .max()
                    .unwrap_or(0),
                reservation_bytes_private: report.reservation_total_bytes(),
                reservation_bytes_shared: shared.reservation_total_bytes(),
            }
        })
        .collect()
}

/// Renders the curve as the `scaling` JSON object embedded in
/// `BENCH_softbound.json` (hand-rolled; no JSON dependency).
pub fn render_json(points: &[ScalingPoint]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "  \"scaling\": {{\n    \"workload\": \"nhttpd\",\n    \
         \"host_cores\": {},\n    \"requests_per_point\": {},\n    \"points\": [\n",
        host_cores(),
        REQUESTS_PER_POINT
    ));
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"workers\": {}, \"requests\": {}, \"wall_ns\": {}, \
             \"reqs_per_sec\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"reservation_bytes_per_worker\": {}, \
             \"reservation_bytes_private\": {}, \
             \"reservation_bytes_shared\": {}}}{}\n",
            p.workers,
            p.requests,
            p.wall_ns,
            p.reqs_per_sec,
            p.p50_ns,
            p.p95_ns,
            p.p99_ns,
            p.reservation_bytes_per_worker,
            p.reservation_bytes_private,
            p.reservation_bytes_shared,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  }");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, core-count-robust slice of the curve: a 4-worker pool
    /// must serve the whole stream correctly and must not *collapse*
    /// relative to a single worker. On a multi-core host the pool wins
    /// outright; on a 1-core host (this container) the best it can do
    /// is tie, so the bar is "not dramatically slower" — a lock convoy
    /// or accidental serialization through shared state would blow
    /// straight past 3×. Run over the *shared* facility, where a
    /// convoy on the shared directory would actually live.
    #[test]
    fn four_workers_do_not_collapse() {
        let engine = Engine::new().facility(Facility::ShadowShared);
        let program = engine
            .compile(sb_workloads::MIXED_HANDLER)
            .expect("handler compiles");
        let stream = sb_workloads::mixed_traffic(48, 5, 9);
        let expected_traps = stream.iter().filter(|&&l| l > 16).count() as u64;

        let mut worst = (u64::MAX, 0u64);
        for _ in 0..5 {
            let one = fleet::serve(&engine, &program, "main", &stream, 1);
            let four = fleet::serve(&engine, &program, "main", &stream, 4);
            for report in [&one, &four] {
                assert_eq!(report.results.len(), stream.len());
                let traps: u64 = report.per_worker.iter().map(|w| w.traps).sum();
                assert_eq!(traps, expected_traps, "trap placement diverged");
            }
            if four.wall_ns <= one.wall_ns.saturating_mul(3) {
                return;
            }
            worst = (four.wall_ns, one.wall_ns);
        }
        panic!(
            "4-worker pool collapsed in every attempt: 4 workers {} ns vs 1 worker {} ns",
            worst.0, worst.1
        );
    }

    /// The ISSUE's acceptance bar, measured on a cheap stream: an
    /// 8-worker shared-facility pool's standing metadata reservation
    /// stays within 1.2× of a single worker's (the directory is paid
    /// once; only pages and chunk roots multiply), while the private
    /// pool pays the full directory eight times.
    #[test]
    fn eight_shared_workers_reserve_little_more_than_one() {
        let shared_engine = Engine::new().facility(Facility::ShadowShared);
        let private_engine = Engine::new().facility(Facility::ShadowPaged);
        let shared_program = shared_engine
            .compile(sb_workloads::MIXED_HANDLER)
            .expect("handler compiles");
        let private_program = private_engine
            .compile(sb_workloads::MIXED_HANDLER)
            .expect("handler compiles");
        let stream = sb_workloads::mixed_traffic(32, 5, 9);

        let one = fleet::serve(&shared_engine, &shared_program, "main", &stream, 1)
            .reservation_total_bytes();
        let eight = fleet::serve(&shared_engine, &shared_program, "main", &stream, 8)
            .reservation_total_bytes();
        assert!(
            eight as f64 <= one as f64 * 1.2,
            "8-worker shared pool reserves {eight} bytes, more than 1.2x \
             a single worker's {one}"
        );

        let eight_private = fleet::serve(&private_engine, &private_program, "main", &stream, 8)
            .reservation_total_bytes();
        assert!(
            eight_private > 4 * one,
            "private 8-worker pool should dwarf the shared pool \
             ({eight_private} vs {one}) — did the directory stop being \
             the dominant cost?"
        );
    }

    #[test]
    fn scaling_json_shape() {
        let points = vec![
            ScalingPoint {
                workers: 1,
                requests: 24,
                wall_ns: 1000,
                reqs_per_sec: 24.0,
                p50_ns: 40,
                p95_ns: 90,
                p99_ns: 99,
                reservation_bytes_per_worker: 1 << 28,
                reservation_bytes_private: 1 << 28,
                reservation_bytes_shared: (1 << 28) + (1 << 22),
            },
            ScalingPoint {
                workers: 4,
                requests: 24,
                wall_ns: 500,
                reqs_per_sec: 48.0,
                p50_ns: 40,
                p95_ns: 90,
                p99_ns: 99,
                reservation_bytes_per_worker: 1 << 28,
                reservation_bytes_private: 4 << 28,
                reservation_bytes_shared: (1 << 28) + (4 << 22),
            },
        ];
        let json = render_json(&points);
        for key in [
            "\"scaling\"",
            "\"host_cores\"",
            "\"workers\": 1",
            "\"workers\": 4",
            "\"reqs_per_sec\"",
            "\"reservation_bytes_per_worker\"",
            "\"reservation_bytes_private\"",
            "\"reservation_bytes_shared\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
