//! Figure 1: percentage of memory operations that load or store a pointer,
//! per benchmark, in the paper's sorted order.

use crate::run_uninstrumented;
use sb_workloads::all_benchmarks;

/// Paper values, read off Figure 1 (approximate — the figure has no data
/// table). Used only for side-by-side reporting.
pub const PAPER_APPROX: [(&str, f64); 15] = [
    ("go", 0.01),
    ("lbm", 0.01),
    ("hmmer", 0.02),
    ("compress", 0.03),
    ("ijpeg", 0.05),
    ("bh", 0.17),
    ("tsp", 0.22),
    ("libquantum", 0.27),
    ("perimeter", 0.45),
    ("health", 0.50),
    ("bisort", 0.52),
    ("mst", 0.55),
    ("li", 0.58),
    ("em3d", 0.62),
    ("treeadd", 0.66),
];

/// One Figure 1 bar.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// True for SPEC namesakes (dark bars).
    pub spec: bool,
    /// Measured fraction of memory ops that move pointers.
    pub measured: f64,
    /// Paper's approximate value.
    pub paper: f64,
    /// Dynamic memory operations observed.
    pub mem_ops: u64,
}

/// Runs every benchmark uninstrumented and collects the pointer-op mix.
pub fn run() -> Vec<Row> {
    all_benchmarks()
        .iter()
        .map(|w| {
            let r = run_uninstrumented(w);
            assert!(
                matches!(r.outcome, sb_vm::Outcome::Finished { .. }),
                "{}: {:?}",
                w.name,
                r.outcome
            );
            let paper = PAPER_APPROX
                .iter()
                .find(|(n, _)| *n == w.name)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            Row {
                name: w.name.to_string(),
                spec: w.spec,
                measured: r.stats.ptr_mem_fraction(),
                paper,
                mem_ops: r.stats.mem_ops(),
            }
        })
        .collect()
}

/// Renders the figure as a text table with bars.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 1: Frequency of Pointer Memory Operations\n");
    out.push_str("(percentage of memory ops that load/store a pointer; [S] = SPEC)\n\n");
    for r in rows {
        let bar = "#".repeat((r.measured * 60.0).round() as usize);
        out.push_str(&format!(
            "{:<11}{} {:>5.1}%  (paper ≈{:>4.0}%)  {}\n",
            r.name,
            if r.spec { "[S]" } else { "   " },
            100.0 * r.measured,
            100.0 * r.paper,
            bar
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape_matches_paper() {
        let rows = run();
        assert_eq!(rows.len(), 15);
        // SPEC array codes on the left are near zero; Olden pointer codes
        // on the right are pointer-dominated.
        assert!(rows[0].measured < 0.05, "go: {}", rows[0].measured);
        assert!(rows[14].measured > 0.5, "treeadd: {}", rows[14].measured);
        // Monotone non-decreasing (within small noise) in paper order.
        for pair in rows.windows(2) {
            assert!(
                pair[1].measured + 0.03 >= pair[0].measured,
                "{} ({:.2}) then {} ({:.2})",
                pair[0].name,
                pair[0].measured,
                pair[1].name,
                pair[1].measured
            );
        }
        let text = render(&rows);
        assert!(text.contains("treeadd"));
    }
}
