//! Regenerates `BENCH_softbound.json` — the perf-trajectory snapshot of
//! the pre-decoded execution IR versus the tree-walk oracle, the
//! libc-kernel corpus lanes, plus the fleet-serving scaling curve
//! (req/s vs worker count over one shared `Program`).
//!
//! ```sh
//! cargo run -p sb-bench --bin perf_trajectory --release > BENCH_softbound.json
//! ```

fn main() {
    let rows = sb_bench::perf::run();
    let libc = sb_bench::perf::run_libc();
    let scaling = sb_bench::scaling::run();
    print!("{}", sb_bench::perf::render_json(&rows, &scaling, &libc));
    for (workload, x) in sb_bench::perf::speedups(&rows) {
        eprintln!("{workload}: pre-decoded {x:.2}x over tree-walk");
    }
    for (kernel, x) in sb_bench::perf::speedups(&libc) {
        eprintln!("libc {kernel}: pre-decoded {x:.2}x over tree-walk");
    }
    for p in &scaling {
        eprintln!(
            "fleet nhttpd: {} workers -> {:.1} req/s (p99 {} us, standing \
             reservation {} MiB private vs {} MiB shared)",
            p.workers,
            p.reqs_per_sec,
            p.p99_ns / 1000,
            p.reservation_bytes_private >> 20,
            p.reservation_bytes_shared >> 20
        );
    }
}
