//! Regenerates `BENCH_softbound.json` — the perf-trajectory snapshot of
//! the pre-decoded execution IR versus the tree-walk oracle.
//!
//! ```sh
//! cargo run -p sb-bench --bin perf_trajectory --release > BENCH_softbound.json
//! ```

fn main() {
    let rows = sb_bench::perf::run();
    print!("{}", sb_bench::perf::render_json(&rows));
    for (workload, x) in sb_bench::perf::speedups(&rows) {
        eprintln!("{workload}: pre-decoded {x:.2}x over tree-walk");
    }
}
