//! Regenerates the paper's related artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::related::run();
    print!("{}", sb_bench::related::render(&rows));
}
