//! Regenerates the paper's figure2 artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::figure2::run();
    print!("{}", sb_bench::figure2::render(&rows));
}
