//! Regenerates the paper's table4 artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::table4::run();
    print!("{}", sb_bench::table4::render(&rows));
}
