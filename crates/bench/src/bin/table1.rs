//! Regenerates the paper's table1 artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::table1::run();
    print!("{}", sb_bench::table1::render(&rows));
}
