//! Regenerates every table and figure of the paper in one run
//! (`cargo run -p sb-bench --bin report --release`).
fn main() {
    println!("==== SoftBound (PLDI 2009) reproduction report ====\n");
    print!("{}", sb_bench::table1::render(&sb_bench::table1::run()));
    println!();
    print!("{}", sb_bench::figure1::render(&sb_bench::figure1::run()));
    println!();
    let figure2_rows = sb_bench::figure2::run();
    print!("{}", sb_bench::figure2::render(&figure2_rows));
    println!();
    print!("{}", sb_bench::figure2::narrative(&figure2_rows));
    println!();
    print!("{}", sb_bench::table3::render(&sb_bench::table3::run()));
    println!();
    print!("{}", sb_bench::table4::render(&sb_bench::table4::run()));
    println!();
    print!("{}", sb_bench::compat::render(&sb_bench::compat::run()));
    println!();
    print!("{}", sb_bench::related::render(&sb_bench::related::run()));
    println!();
    print!(
        "{}",
        sb_bench::policy_matrix::render(&sb_bench::policy_matrix::run())
    );
}
