//! Regenerates the paper's figure1 artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::figure1::run();
    print!("{}", sb_bench::figure1::render(&rows));
}
