//! Regenerates the paper's compat artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::compat::run();
    print!("{}", sb_bench::compat::render(&rows));
}
