//! Regenerates the paper's table3 artifact. Run with --release for speed.
fn main() {
    let rows = sb_bench::table3::run();
    print!("{}", sb_bench::table3::render(&rows));
}
