//! Differential conformance fuzzer for the libc kernel corpus.
//!
//! Replays a deterministic case stream through the uninstrumented
//! baseline and all 4 metadata facilities × 2 execution lanes, checking
//! output/digest agreement on safe cases and first-out-of-bounds-byte
//! traps on overflowing ones (see `sb_bench::conformance`). With
//! `--policy hardened|monitor` the same stream replays under the
//! continuing violation policies, checking evidence telemetry and
//! clamp containment instead of traps.
//!
//! ```sh
//! cargo run -p sb-bench --bin conformance_fuzz --release -- \
//!     --seed 0x50f7b0d --cases 500 --policy hardened
//! ```
//!
//! Exits non-zero on divergence, printing each failure minimized and
//! with the exact `--seed/--start` pair that replays it.

use softbound::ViolationPolicy;
use std::process::ExitCode;

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let mut seed: u64 = 0x050f_7b0d;
    let mut cases: u64 = 500;
    let mut start: u64 = 0;
    let mut policy = ViolationPolicy::Strict;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .and_then(|v| parse_u64(&v))
                .unwrap_or_else(|| panic!("{name} needs a numeric argument"))
        };
        match flag.as_str() {
            "--seed" => seed = take("--seed"),
            "--cases" => cases = take("--cases"),
            "--start" => start = take("--start"),
            "--policy" => {
                policy = match args.next().as_deref() {
                    Some("strict") => ViolationPolicy::Strict,
                    Some("hardened") => ViolationPolicy::Hardened,
                    Some("monitor") => ViolationPolicy::Monitor,
                    other => {
                        eprintln!("--policy needs strict|hardened|monitor, got {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: conformance_fuzz \
                     [--seed N] [--cases N] [--start N] [--policy strict|hardened|monitor]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "conformance_fuzz: seed {seed:#x}, cases {start}..{}, policy {} \
         (4 facilities x 2 lanes + baseline per case)",
        start + cases,
        policy.label()
    );
    let report = sb_bench::conformance::fuzz_range_policy(seed, start, cases, policy);
    for f in &report.failures {
        eprintln!("{f}");
    }
    eprintln!(
        "conformance_fuzz: {} cases ({} safe, {} overflow), {} divergences",
        report.cases,
        report.safe,
        report.overflow,
        report.failures.len()
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
