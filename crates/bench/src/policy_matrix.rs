//! Violation-policy matrix over the fleet: the same mixed safe/attack
//! request stream served by a 4-worker pool under each
//! [`ViolationPolicy`], with the per-worker evidence aggregation the
//! [`softbound::fleet`] report carries.
//!
//! Strict answers every oversized request with a trap (the paper's
//! behavior); Hardened clamps the overflowing stores and keeps every
//! worker alive, converting each attack into evidence records; Monitor
//! lets the overflow land (on this stack-buffer handler the stray
//! stores then cause the same downstream faults the uninstrumented
//! handler would hit) while still recording the same evidence stream.

use softbound::{fleet, Engine, ViolationPolicy};

/// One policy's aggregate over the shared request stream.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy this row ran under.
    pub policy: ViolationPolicy,
    /// Requests served (the full stream, under every policy).
    pub served: usize,
    /// Requests that ended in a trap.
    pub traps: u64,
    /// Runtime violation counter total across workers.
    pub violations: u64,
    /// Evidence records aggregated across workers.
    pub evidence: u64,
    /// Evidence records lost to ring overflow.
    pub evidence_overflow: u64,
}

/// Requests in the shared stream.
pub const REQUESTS: usize = 48;
/// Every 5th request carries an oversized, attack-shaped length.
pub const TRAP_EVERY: usize = 5;

/// Serves the same deterministic mixed stream under all three policies
/// on a 4-worker pool.
pub fn run() -> Vec<PolicyRow> {
    let stream = sb_workloads::mixed_traffic(REQUESTS, TRAP_EVERY, 9);
    [
        ViolationPolicy::Strict,
        ViolationPolicy::Hardened,
        ViolationPolicy::Monitor,
    ]
    .into_iter()
    .map(|policy| {
        let engine = Engine::new().policy(policy);
        let program = engine
            .compile(sb_workloads::MIXED_HANDLER)
            .expect("handler compiles");
        let report = fleet::serve(&engine, &program, "main", &stream, 4);
        PolicyRow {
            policy,
            served: report.results.len(),
            traps: report.per_worker.iter().map(|w| w.traps).sum(),
            violations: report.per_worker.iter().map(|w| w.violations).sum(),
            evidence: report.evidence_total(),
            evidence_overflow: report.evidence_overflow_total(),
        }
    })
    .collect()
}

/// Renders the matrix as a text table plus a short narrative.
pub fn render(rows: &[PolicyRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "-- Violation policies (fleet of 4 workers, {REQUESTS} requests, \
         every {TRAP_EVERY}th oversized) --\n"
    ));
    s.push_str(&format!(
        "{:<10}{:>8}{:>8}{:>12}{:>10}{:>10}\n",
        "policy", "served", "traps", "violations", "evidence", "dropped"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<10}{:>8}{:>8}{:>12}{:>10}{:>10}\n",
            r.policy.label(),
            r.served,
            r.traps,
            r.violations,
            r.evidence,
            r.evidence_overflow
        ));
    }
    s.push_str(
        "Strict traps each oversized request; Hardened clamps every stray store\n\
         and keeps all workers alive, leaving one evidence record per clamped\n\
         access in the per-worker ring (drained into the fleet report); Monitor\n\
         records the same stream while letting the corruption land — its traps\n\
         are the downstream faults the landed stores cause, not spatial traps.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_partition_the_same_stream_differently() {
        let rows = run();
        assert_eq!(rows.len(), 3);
        let (strict, hardened, monitor) = (&rows[0], &rows[1], &rows[2]);
        assert_eq!(strict.served, REQUESTS);
        assert_eq!(hardened.served, REQUESTS);
        assert_eq!(monitor.served, REQUESTS);
        // Strict: oversized requests trap, no evidence is ever recorded.
        assert!(strict.traps > 0, "stream must contain trapping requests");
        assert_eq!(strict.evidence, 0);
        // Hardened: nothing traps, every clamped store leaves a record —
        // at least one per request that trapped under Strict.
        assert_eq!(hardened.traps, 0, "hardened fleets must stay alive");
        assert!(hardened.evidence >= strict.traps);
        assert_eq!(hardened.evidence_overflow, 0);
        // Monitor: no spatial traps, and the evidence stream is there.
        assert!(monitor.evidence > 0);
        let table = render(&rows);
        assert!(table.contains("hardened"));
        assert!(table.contains("monitor"));
    }
}
