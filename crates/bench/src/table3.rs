//! Table 3: the Wilander attack suite versus SoftBound's two checking
//! modes. An attack counts as *detected* when the run aborts with a
//! spatial violation before control is diverted; it counts as *succeeded*
//! when the attacker payload gains control (hijacked return/frame/jmp_buf
//! or a corrupted function pointer being called).

use sb_vm::Outcome;
use sb_workloads::attacks::{self, Attack};
use softbound::{Engine, SoftBoundConfig};

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The attack.
    pub attack: Attack,
    /// Did the attack take control on the unprotected machine?
    pub succeeded_unprotected: bool,
    /// Detected with full checking?
    pub detected_full: bool,
    /// Detected with store-only checking?
    pub detected_store_only: bool,
}

fn attack_succeeded(outcome: &Outcome) -> bool {
    matches!(
        outcome,
        Outcome::Hijacked { .. } | Outcome::Exited { code: 66 }
    )
}

/// Runs all 18 attacks under {unprotected, full, store-only}.
pub fn run() -> Vec<Row> {
    let full = Engine::new().softbound_config(SoftBoundConfig::full_shadow());
    let store = Engine::new().softbound_config(SoftBoundConfig::store_only_shadow());
    attacks::all()
        .into_iter()
        .map(|attack| {
            let plain = sb_vm::run_source(attack.source, "main", &[]);
            let f = full.run_once(attack.source, "main", &[]).expect("compiles");
            let s = store
                .run_once(attack.source, "main", &[])
                .expect("compiles");
            Row {
                attack,
                succeeded_unprotected: attack_succeeded(&plain.outcome),
                detected_full: f.outcome.is_spatial_violation(),
                detected_store_only: s.outcome.is_spatial_violation(),
            }
        })
        .collect()
}

/// Renders Table 3.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Wilander attack suite — SoftBound detection\n\n");
    out.push_str(&format!(
        "{:<44}{:>6}{:>7}\n",
        "Attack and target", "Full", "Store"
    ));
    let mut group = "";
    for r in rows {
        let g = match (r.attack.technique, r.attack.location) {
            (attacks::Technique::Direct, attacks::Location::Stack) => {
                "Buffer overflow on stack all the way to the target"
            }
            (attacks::Technique::Direct, attacks::Location::HeapBssData) => {
                "Buffer overflow on heap/BSS/data all the way to the target"
            }
            (attacks::Technique::PointerRedirect, attacks::Location::Stack) => {
                "Buffer overflow of a pointer on stack, then pointing to target"
            }
            (attacks::Technique::PointerRedirect, attacks::Location::HeapBssData) => {
                "Buffer overflow of pointer on heap/BSS, then pointing to target"
            }
        };
        if g != group {
            out.push_str(&format!("\n{g}\n"));
            group = g;
        }
        out.push_str(&format!(
            "  {:<42}{:>6}{:>7}\n",
            r.attack.target.label(),
            if r.detected_full { "yes" } else { "NO" },
            if r.detected_store_only { "yes" } else { "NO" },
        ));
    }
    let all_work = rows.iter().all(|r| r.succeeded_unprotected);
    out.push_str(&format!(
        "\n(all {} attacks take control when unprotected: {})\n",
        rows.len(),
        if all_work {
            "confirmed"
        } else {
            "NOT CONFIRMED"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let rows = run();
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!(r.succeeded_unprotected, "attack {} is inert", r.attack.id);
            assert!(
                r.detected_full,
                "attack {} missed by full checking",
                r.attack.id
            );
            assert!(
                r.detected_store_only,
                "attack {} missed by store-only",
                r.attack.id
            );
        }
    }
}
