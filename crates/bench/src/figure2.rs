//! Figure 2: runtime overhead of SoftBound with full and store-only
//! checking under both metadata organizations, per benchmark plus the
//! average row.

use crate::overhead;
use sb_vm::{CacheConfig, Machine, MachineConfig, NoRuntime};
use sb_workloads::all_benchmarks;
use softbound::{Engine, Program, SoftBoundConfig};

/// One benchmark's overheads (fractions; 0.79 = 79%).
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// HashTable-Complete.
    pub ht_full: f64,
    /// ShadowSpace-Complete.
    pub ss_full: f64,
    /// HashTable-Stores.
    pub ht_store: f64,
    /// ShadowSpace-Stores.
    pub ss_store: f64,
    /// Baseline cost-model cycles.
    pub base_cycles: u64,
    /// Static checks removed by post-instrument redundant-check
    /// elimination under full checking (facility-independent).
    pub checks_eliminated: usize,
    /// True for the pointer-dense (Olden + li) side of Figure 1.
    pub pointer_dense: bool,
}

/// The four configurations, in the figure's legend order.
pub fn configs() -> [SoftBoundConfig; 4] {
    [
        SoftBoundConfig::full_hash(),
        SoftBoundConfig::full_shadow(),
        SoftBoundConfig::store_only_hash(),
        SoftBoundConfig::store_only_shadow(),
    ]
}

/// Paper headline numbers (§6.3) for the report.
pub mod paper {
    /// HashTable-Complete average overhead.
    pub const HT_FULL_AVG: f64 = 1.27;
    /// ShadowSpace-Complete average overhead.
    pub const SS_FULL_AVG: f64 = 0.79;
    /// Store-only average overhead (shadow space).
    pub const SS_STORE_AVG: f64 = 0.32;
    /// ShadowSpace-Complete average with li/bisort/em3d removed.
    pub const SS_FULL_AVG_TRIMMED: f64 = 0.66;
}

/// Runs every benchmark under all four configurations.
///
/// The cache model is enabled (as in the paper's evaluation machine, a
/// Core 2 with a 32 KiB L1D): §6.3 attributes part of the hash table's
/// extra overhead on pointer-heavy benchmarks to metadata memory
/// pressure, which only shows up with a cache in the loop.
pub fn run() -> Vec<Row> {
    run_with_cache(Some(CacheConfig::default()))
}

/// Runs with an explicit cache configuration (None = flat memory).
pub fn run_with_cache(cache: Option<CacheConfig>) -> Vec<Row> {
    let machine_cfg = MachineConfig {
        cache,
        ..MachineConfig::default()
    };
    let engine_for = |cfg: &SoftBoundConfig| {
        Engine::new()
            .softbound_config(cfg.clone())
            .machine_config(machine_cfg.clone())
    };
    all_benchmarks()
        .iter()
        .map(|w| {
            let prog = sb_cir::compile(w.source).expect("workload compiles");
            let mut m = sb_ir::lower(&prog, w.name);
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
            let mut machine = Machine::new(&m, machine_cfg.clone(), NoRuntime);
            let base = machine.run("main", &[w.default_arg]);
            assert!(matches!(base.outcome, sb_vm::Outcome::Finished { .. }));
            let expected = base.ret();
            let run = |cfg: &SoftBoundConfig, program: &Program| {
                let r = engine_for(cfg)
                    .instantiate(program)
                    .run("main", &[w.default_arg]);
                assert_eq!(
                    r.ret(),
                    expected,
                    "{} diverged under {}",
                    w.name,
                    cfg.label()
                );
                overhead(base.stats.cycles, r.stats.cycles)
            };
            let get = |cfg: &SoftBoundConfig| {
                let program = engine_for(cfg).compile(w.source).expect("compiles");
                run(cfg, &program)
            };
            let [ht_f, ss_f, ht_s, ss_s] = configs();
            // The full-shadow `Program` is reused for its run *and* its
            // elimination count (a property of the instrumented IR, not
            // of the runtime facility).
            let ss_full_program = engine_for(&ss_f).compile(w.source).expect("compiles");
            Row {
                name: w.name.to_string(),
                ht_full: get(&ht_f),
                ss_full: run(&ss_f, &ss_full_program),
                ht_store: get(&ht_s),
                ss_store: get(&ss_s),
                base_cycles: base.stats.cycles,
                checks_eliminated: ss_full_program.stats().checks_eliminated,
                pointer_dense: w.pointer_dense(),
            }
        })
        .collect()
}

/// Column averages `(ht_full, ss_full, ht_store, ss_store)`.
pub fn averages(rows: &[Row]) -> (f64, f64, f64, f64) {
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.ht_full).sum::<f64>() / n,
        rows.iter().map(|r| r.ss_full).sum::<f64>() / n,
        rows.iter().map(|r| r.ht_store).sum::<f64>() / n,
        rows.iter().map(|r| r.ss_store).sum::<f64>() / n,
    )
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 2: Runtime overhead of SoftBound (percent over uninstrumented)\n\n");
    out.push_str(&format!(
        "{:<12}{:>12}{:>14}{:>12}{:>14}{:>8}\n",
        "benchmark", "HashTable", "ShadowSpace", "HashTable", "ShadowSpace", "checks"
    ));
    out.push_str(&format!(
        "{:<12}{:>12}{:>14}{:>12}{:>14}{:>8}\n",
        "", "-Complete", "-Complete", "-Stores", "-Stores", "elim'd"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>11.0}%{:>13.0}%{:>11.0}%{:>13.0}%{:>8}\n",
            r.name,
            100.0 * r.ht_full,
            100.0 * r.ss_full,
            100.0 * r.ht_store,
            100.0 * r.ss_store,
            r.checks_eliminated
        ));
    }
    let (a, b, c, d) = averages(rows);
    let total_elim: usize = rows.iter().map(|r| r.checks_eliminated).sum();
    out.push_str(&format!(
        "{:<12}{:>11.0}%{:>13.0}%{:>11.0}%{:>13.0}%{:>8}\n",
        "average",
        100.0 * a,
        100.0 * b,
        100.0 * c,
        100.0 * d,
        total_elim
    ));
    out.push_str(&format!(
        "\npaper:      {:>11.0}%{:>13.0}%{:>12}{:>13.0}%\n",
        100.0 * paper::HT_FULL_AVG,
        100.0 * paper::SS_FULL_AVG,
        "-",
        100.0 * paper::SS_STORE_AVG
    ));
    out
}

/// Per-class elimination totals `(pointer_dense_total, scalar_total)`.
pub fn eliminated_by_class(rows: &[Row]) -> (usize, usize) {
    rows.iter().fold((0, 0), |(p, s), r| {
        if r.pointer_dense {
            (p + r.checks_eliminated, s)
        } else {
            (p, s + r.checks_eliminated)
        }
    })
}

/// The EXPERIMENTS narrative for the redundant-check-elimination stats:
/// where the post-instrument pass fires and why the distribution follows
/// Figure 1's pointer-intensity ordering. Printed by the `report` binary
/// after the Figure 2 table.
pub fn narrative(rows: &[Row]) -> String {
    let (ptr_total, scalar_total) = eliminated_by_class(rows);
    let mut fired: Vec<String> = rows
        .iter()
        .filter(|r| r.checks_eliminated > 0)
        .map(|r| format!("{} ({})", r.name, r.checks_eliminated))
        .collect();
    if fired.is_empty() {
        fired.push("none".into());
    }
    format!(
        "EXPERIMENTS — redundant-check elimination\n\
         \n\
         The post-instrument available-expressions pass removed {total} static\n\
         check(s) across the suite: {fired}. {ptr_total} of them came from the\n\
         pointer-dense class (Olden kernels plus li) against {scalar_total} from the\n\
         scalar/array class — the expected direction: repeated dereferences of\n\
         the same pointer value, the pattern the pass proves redundant, are a\n\
         pointer-chasing idiom (node->field used twice, list walks re-reading\n\
         head), while array kernels re-index with fresh GEPs that produce\n\
         distinct checked values. The counts are properties of the\n\
         instrumented IR, independent of the metadata facility executing it.\n",
        total = ptr_total + scalar_total,
        fired = fired.join(", "),
        ptr_total = ptr_total,
        scalar_total = scalar_total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_workloads::all_benchmarks;

    #[test]
    fn eliminated_checks_follow_pointer_density() {
        // Compile-only differential over the whole suite: the
        // pointer-dense class must eliminate strictly more checks than
        // the scalar class (which eliminates essentially none — array
        // kernels re-index with fresh GEP values).
        let engine = Engine::new().softbound_config(SoftBoundConfig::full_shadow());
        let (mut ptr_total, mut scalar_total) = (0usize, 0usize);
        for w in all_benchmarks() {
            let stats = engine.compile(w.source).expect("workload compiles").stats();
            if w.pointer_dense() {
                ptr_total += stats.checks_eliminated;
            } else {
                scalar_total += stats.checks_eliminated;
            }
        }
        assert!(
            ptr_total > scalar_total,
            "pointer-dense workloads must eliminate more checks \
             (pointer-dense {ptr_total} vs scalar {scalar_total})"
        );
        assert!(ptr_total > 0, "elimination must fire somewhere");
    }

    #[test]
    fn elimination_zeros_are_structural_not_overkill() {
        // The kill set no longer clears on calls, pointer stores, or
        // metadata helpers (checks are pure over their operand
        // registers), so a zero on these rows is a property of the
        // instrumented IR, not pass over-conservatism:
        //
        // * compress / tsp: loop bodies re-index with fresh `Gep`
        //   destinations every iteration, so consecutive checks never
        //   share a key (the ptr register is redefined — defs-kill);
        // * treeadd: each recursive call dereferences `t->left` /
        //   `t->right` exactly once, so no key repeats on any path.
        //
        // The workloads that *do* have straight-line re-dereferences
        // keep (and, after the kill-set fix, grow) their counts.
        let engine = Engine::new().softbound_config(SoftBoundConfig::full_shadow());
        let count = |name: &str| {
            let w = sb_workloads::benchmark_by_name(name).expect("workload exists");
            engine
                .compile(w.source)
                .expect("workload compiles")
                .stats()
                .checks_eliminated
        };
        assert_eq!(count("compress"), 0);
        assert_eq!(count("tsp"), 0);
        assert_eq!(count("treeadd"), 0);
        assert!(count("health") >= 1);
        // li and mst each gained an elimination once available facts
        // survived the calls/stores in their walk loops.
        assert!(count("li") >= 3, "li: {}", count("li"));
        assert!(count("mst") >= 2, "mst: {}", count("mst"));
    }

    #[test]
    fn narrative_reports_class_totals() {
        let rows = vec![
            Row {
                name: "li".into(),
                ht_full: 0.0,
                ss_full: 0.0,
                ht_store: 0.0,
                ss_store: 0.0,
                base_cycles: 1,
                checks_eliminated: 2,
                pointer_dense: true,
            },
            Row {
                name: "compress".into(),
                ht_full: 0.0,
                ss_full: 0.0,
                ht_store: 0.0,
                ss_store: 0.0,
                base_cycles: 1,
                checks_eliminated: 0,
                pointer_dense: false,
            },
        ];
        assert_eq!(eliminated_by_class(&rows), (2, 0));
        let n = narrative(&rows);
        assert!(n.contains("li (2)"), "{n}");
        assert!(n.contains("2 of them came from the"), "{n}");
    }

    #[test]
    fn figure2_shape_matches_paper() {
        // Flat memory (no cache model) keeps the test fast; the shape
        // claims hold in both modes.
        let rows = run_with_cache(None);
        assert_eq!(rows.len(), 15);
        for r in &rows {
            // Hash table costs at least as much as the shadow space, and
            // full checking at least as much as store-only (§6.3).
            assert!(
                r.ht_full >= r.ss_full - 1e-9,
                "{}: ht {} < ss {}",
                r.name,
                r.ht_full,
                r.ss_full
            );
            assert!(
                r.ss_full >= r.ss_store - 1e-9,
                "{}: full < store-only",
                r.name
            );
            assert!(r.ht_store >= r.ss_store - 1e-9, "{}", r.name);
            assert!(r.ss_store >= 0.0, "{}: negative overhead", r.name);
        }
        // Pointer-light SPEC kernels (left) are cheaper than pointer-heavy
        // Olden kernels (right) under full checking.
        let left: f64 = rows[..5].iter().map(|r| r.ss_full).sum::<f64>() / 5.0;
        let right: f64 = rows[10..].iter().map(|r| r.ss_full).sum::<f64>() / 5.0;
        assert!(left < right, "left {left} vs right {right}");
        // Store-only is cheap on the array-heavy side (the paper counts
        // "less than 15% for more than half of the benchmarks"; our
        // flat instruction-count model — no superscalar ILP to hide the
        // check instructions — clears 15% on at least three and stays far
        // below full checking overall; see EXPERIMENTS.md).
        let cheap = rows.iter().filter(|r| r.ss_store < 0.15).count();
        assert!(cheap >= 3, "only {cheap} benchmarks under 15% store-only");
        let (ht_f, ss_f, _, ss_s) = averages(&rows);
        assert!(ht_f > ss_f, "hash table must average above shadow space");
        assert!(ss_f > ss_s, "full must average above store-only");
        assert!(
            ss_s < 0.6 * ss_f,
            "store-only ({ss_s}) should be well under full checking ({ss_f})"
        );
        // The post-instrument redundant-check-elimination pass must fire
        // on at least one real workload.
        assert!(
            rows.iter().any(|r| r.checks_eliminated > 0),
            "no workload had a redundant check eliminated: {:?}",
            rows.iter()
                .map(|r| (&r.name, r.checks_eliminated))
                .collect::<Vec<_>>()
        );
    }
}
