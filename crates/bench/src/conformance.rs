//! Differential conformance fuzzing of the libc kernel corpus.
//!
//! A deterministic, seed-driven generator produces `(kernel, cap, len,
//! seed)` cases over [`sb_workloads::libc`]; each case runs through the
//! uninstrumented baseline and the instrumented pipeline across **all
//! four metadata facilities × both execution lanes** (tree-walk and
//! pre-decoded), the fourth being the process-wide shared shadow
//! reservation. The oracle is exact, not statistical:
//!
//! - **safe** cases must finish in every lane with the baseline's
//!   return value, byte-identical output, and the baseline's final
//!   globals+heap memory digest (SoftBound metadata is disjoint from
//!   program data, so instrumentation must not perturb a single data
//!   byte) — and with zero recorded violations;
//! - **overflow** cases must trap in every lane with a
//!   `SpatialViolation` whose faulting address is the **first
//!   out-of-bounds byte** the kernel touches (computed from the guarded
//!   base the kernel prints on its `G` line), whose read/write flag and
//!   trap scheme match the kernel's oracle, and whose trap PC (the
//!   dynamic instruction index) is identical across all eight lanes —
//!   never later, never silently.
//!
//! On top of the Strict matrix sits a **policy matrix** lane
//! ([`fuzz_range_policy`]): the same cases replayed under
//! [`ViolationPolicy::Hardened`] and [`ViolationPolicy::Monitor`] on a
//! check-preserving build. Safe cases must stay bit-identical to the
//! baseline with zero evidence; overflow cases must *complete* without
//! a spatial trap while recording evidence whose fault address and
//! direction match the kernel's closed form, with Hardened clamps
//! provably never touching a byte outside the guarded object and
//! Monitor runs reproducing the uninstrumented baseline byte-for-byte
//! on heap kernels.
//!
//! On divergence the driver greedily minimizes the case and prints a
//! reproducible seed, so a failure seen in CI replays locally with
//! `cargo run -p sb-bench --bin conformance_fuzz --release -- --seed
//! <seed> --start <index> --cases 1`.

use sb_vm::{Machine, MachineConfig, NoRuntime, Outcome, RunResult, Trap, FN_BASE, HEAP_BASE};
use sb_workloads::LibcKernel;
use softbound::{
    Engine, EvidenceRecord, MetadataFacility, Program, SoftBoundConfig, SoftBoundRuntime,
    ViolationPolicy,
};

/// One generated conformance case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case {
    /// Index into [`sb_workloads::all_libc_kernels`].
    pub kernel_idx: usize,
    /// Guarded-buffer capacity argument (1..=48).
    pub cap: i64,
    /// Operation length argument (0..=64).
    pub len: i64,
    /// Content seed argument (0..=999) — never affects safety.
    pub seed: i64,
    /// The kernel oracle's verdict for `(cap, len)`.
    pub expect_safe: bool,
}

impl std::fmt::Display for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cap={} len={} seed={} ({})",
            self.cap,
            self.len,
            self.seed,
            if self.expect_safe { "safe" } else { "overflow" }
        )
    }
}

/// One confirmed divergence, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Generator seed the run started from.
    pub seed0: u64,
    /// Case index within that seed's stream.
    pub index: u64,
    /// Kernel name.
    pub kernel: &'static str,
    /// The generated case.
    pub case: Case,
    /// The same case greedily shrunk while still diverging.
    pub minimized: Case,
    /// What diverged.
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "conformance divergence in `{}` at case #{} of seed {:#x}: {}",
            self.kernel, self.index, self.seed0, self.case
        )?;
        writeln!(f, "  {}", self.message)?;
        writeln!(f, "  minimized: {}", self.minimized)?;
        write!(
            f,
            "  reproduce: cargo run -p sb-bench --bin conformance_fuzz --release -- \
             --seed {:#x} --start {} --cases 1",
            self.seed0, self.index
        )
    }
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// How many the oracle classified safe.
    pub safe: u64,
    /// How many the oracle classified overflowing.
    pub overflow: u64,
    /// Divergences found (fuzzing stops after a handful).
    pub failures: Vec<Failure>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates case `index` of the stream rooted at `seed0` — a pure
/// function of `(seed0, index)`, so any case replays in isolation.
/// Lengths are steered toward a roughly even safe/overflow split with a
/// handful of rejection draws; the final verdict always comes from the
/// kernel's own `safe` predicate, so generator and oracle cannot drift.
pub fn gen_case(seed0: u64, index: u64, kernels: &[LibcKernel]) -> Case {
    let mut s = seed0 ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x006c_6962_635f_7631_u64;
    splitmix(&mut s); // decorrelate nearby indices
    let kernel_idx = (splitmix(&mut s) % kernels.len() as u64) as usize;
    let cap = 1 + (splitmix(&mut s) % 48) as i64;
    let want_safe = splitmix(&mut s) & 1 == 0;
    let k = &kernels[kernel_idx];
    let mut len = (splitmix(&mut s) % 65) as i64;
    for _ in 0..16 {
        if (k.safe)(cap, len) == want_safe {
            break;
        }
        len = (splitmix(&mut s) % 65) as i64;
    }
    let seed = (splitmix(&mut s) % 1000) as i64;
    Case {
        kernel_idx,
        cap,
        len,
        seed,
        expect_safe: (k.safe)(cap, len),
    }
}

/// What one execution lane exposes for comparison.
#[derive(Debug, Clone, PartialEq)]
struct LaneObs {
    lane: &'static str,
    outcome: Outcome,
    output: String,
    insts: u64,
    checks: u64,
    cycles: u64,
    mem_hash: u64,
    /// Digest of the globals+heap region only — the program-visible
    /// data an uninstrumented twin must reproduce byte-for-byte (stack
    /// pages carry dead frame residue that differs across
    /// instrumentation, and metadata tables are synthetic addresses
    /// that never land in simulated memory).
    data_hash: u64,
    violation_count: u64,
    /// Evidence the runtime recorded (always empty under Strict, whose
    /// ring has capacity 0).
    evidence: Vec<EvidenceRecord>,
    /// Byte-by-byte snapshot of the requested guard windows after the
    /// run (`None` for unmapped bytes) — `content_hash_range` is
    /// page-granular, so the clamp-containment oracle reads the bytes
    /// around the guarded object directly.
    window: Vec<Option<u8>>,
}

fn observe<F: MetadataFacility>(
    lane: &'static str,
    program: &Program,
    rt: SoftBoundRuntime<F>,
    args: &[i64],
    predecoded: bool,
) -> LaneObs {
    observe_windows(lane, program, rt, args, predecoded, &[])
}

fn observe_windows<F: MetadataFacility>(
    lane: &'static str,
    program: &Program,
    rt: SoftBoundRuntime<F>,
    args: &[i64],
    predecoded: bool,
    windows: &[(u64, u64)],
) -> LaneObs {
    let mut machine = Machine::new(program.module(), MachineConfig::default(), rt);
    let r = if predecoded {
        machine.attach_exec(program.exec());
        machine.run_predecoded("main", args)
    } else {
        machine.run("main", args)
    };
    let mut window = Vec::new();
    for &(lo, hi) in windows {
        for a in lo..hi {
            window.push(machine.mem.read_uint(a, 1).ok().map(|v| v as u8));
        }
    }
    LaneObs {
        lane,
        outcome: r.outcome,
        output: r.output,
        insts: r.stats.insts,
        checks: r.stats.checks,
        cycles: r.stats.cycles,
        mem_hash: machine.mem.content_hash(),
        data_hash: machine.mem.content_hash_range(0, FN_BASE),
        violation_count: machine.hooks().violation_count,
        evidence: machine.hooks_mut().drain_evidence(),
        window,
    }
}

/// Parses the guarded base from the kernel's `G <base> <eff_cap>` line
/// (present even in the partial output of a trapped run).
fn parse_guard(output: &str) -> Option<(u64, i64)> {
    let line = output.lines().next()?;
    let mut it = line.split_whitespace();
    if it.next()? != "G" {
        return None;
    }
    let base = it.next()?.parse::<u64>().ok()?;
    let cap = it.next()?.parse::<i64>().ok()?;
    Some((base, cap))
}

/// One kernel compiled once and replayed for many cases: the `Program`
/// (module + exec IR) is facility-independent, and the baseline module
/// is the same source lowered *without* instrumentation.
pub struct KernelHarness {
    kernel: LibcKernel,
    cfg: SoftBoundConfig,
    program: Program,
    baseline: sb_ir::Module,
    /// Check-preserving build shared by the non-Strict policies: the
    /// policy itself lives runtime-side, but redundant-check
    /// elimination is unsound once a failed check may continue, so
    /// Hardened/Monitor run a `PostInstrumentAllChecks` program.
    preserved: Program,
    hardened_cfg: SoftBoundConfig,
    monitor_cfg: SoftBoundConfig,
}

impl KernelHarness {
    /// Compiles `kernel` for both the instrumented and baseline paths.
    pub fn new(kernel: LibcKernel) -> Self {
        let cfg = SoftBoundConfig::full_shadow();
        let program = Engine::new()
            .softbound_config(cfg.clone())
            .compile(kernel.source)
            .unwrap_or_else(|e| panic!("{}: kernel does not compile: {e}", kernel.name));
        let cir = sb_cir::compile(kernel.source).expect("compiles");
        let mut baseline = sb_ir::lower(&cir, kernel.name);
        sb_ir::optimize(&mut baseline, sb_ir::OptLevel::PreInstrument);
        let mut hardened_cfg = cfg.clone();
        hardened_cfg.policy = ViolationPolicy::Hardened;
        let mut monitor_cfg = cfg.clone();
        monitor_cfg.policy = ViolationPolicy::Monitor;
        let preserved = Engine::new()
            .softbound_config(hardened_cfg.clone())
            .compile(kernel.source)
            .unwrap_or_else(|e| panic!("{}: kernel does not compile: {e}", kernel.name));
        Self {
            kernel,
            cfg,
            program,
            baseline,
            preserved,
            hardened_cfg,
            monitor_cfg,
        }
    }

    /// The kernel under test.
    pub fn kernel(&self) -> &LibcKernel {
        &self.kernel
    }

    fn run_baseline(&self, args: &[i64]) -> (RunResult, u64) {
        let mut machine = Machine::new(&self.baseline, MachineConfig::default(), NoRuntime);
        let r = machine.run("main", args);
        let hash = machine.mem.content_hash_range(0, FN_BASE);
        (r, hash)
    }

    fn run_lanes(&self, args: &[i64]) -> Vec<LaneObs> {
        self.run_lanes_with(&self.program, &self.cfg, args)
    }

    fn run_lanes_with(&self, p: &Program, cfg: &SoftBoundConfig, args: &[i64]) -> Vec<LaneObs> {
        vec![
            observe(
                "paged/tree",
                p,
                SoftBoundRuntime::new_paged(cfg),
                args,
                false,
            ),
            observe("paged/pre", p, SoftBoundRuntime::new_paged(cfg), args, true),
            observe(
                "hashmap/tree",
                p,
                SoftBoundRuntime::new_shadow_hashmap(cfg),
                args,
                false,
            ),
            observe(
                "hashmap/pre",
                p,
                SoftBoundRuntime::new_shadow_hashmap(cfg),
                args,
                true,
            ),
            observe("hash/tree", p, SoftBoundRuntime::new_hash(cfg), args, false),
            observe("hash/pre", p, SoftBoundRuntime::new_hash(cfg), args, true),
            observe(
                "shared/tree",
                p,
                SoftBoundRuntime::new_shared(cfg),
                args,
                false,
            ),
            observe(
                "shared/pre",
                p,
                SoftBoundRuntime::new_shared(cfg),
                args,
                true,
            ),
        ]
    }

    /// Runs one case through baseline + all eight lanes and checks every
    /// conformance obligation. `Err` carries a human-readable account of
    /// the first divergence.
    pub fn run_case(&self, case: &Case) -> Result<(), String> {
        let k = &self.kernel;
        let args = [case.cap, case.len, case.seed];
        let lanes = self.run_lanes(&args);
        let first = &lanes[0];

        // Lane-invariance obligations hold for safe and overflow cases
        // alike: same outcome, same (possibly partial) output, same trap
        // PC / dynamic instruction count, same executed checks.
        for lane in &lanes[1..] {
            if lane.outcome != first.outcome {
                return Err(format!(
                    "outcome diverged: {} got {:?}, {} got {:?}",
                    first.lane, first.outcome, lane.lane, lane.outcome
                ));
            }
            if lane.output != first.output {
                return Err(format!(
                    "output diverged between {} and {}: {:?} vs {:?}",
                    first.lane, lane.lane, first.output, lane.output
                ));
            }
            if lane.insts != first.insts {
                return Err(format!(
                    "trap PC / instruction count diverged: {}={} vs {}={}",
                    first.lane, first.insts, lane.lane, lane.insts
                ));
            }
            if lane.checks != first.checks {
                return Err(format!(
                    "check count diverged: {}={} vs {}={}",
                    first.lane, first.checks, lane.lane, lane.checks
                ));
            }
        }
        // Pre-decoded twins must match their tree-walk twin bit-for-bit,
        // including cost-model cycles and the final memory image.
        for pair in lanes.chunks(2) {
            if pair[0].cycles != pair[1].cycles || pair[0].mem_hash != pair[1].mem_hash {
                return Err(format!(
                    "{} vs {} diverged on cycles/memory: ({}, {:#x}) vs ({}, {:#x})",
                    pair[0].lane,
                    pair[1].lane,
                    pair[0].cycles,
                    pair[0].mem_hash,
                    pair[1].cycles,
                    pair[1].mem_hash
                ));
            }
        }

        let (base, eff_cap) = parse_guard(&first.output).ok_or_else(|| {
            format!(
                "no `G <base> <cap>` guard line in output {:?} ({:?})",
                first.output, first.outcome
            )
        })?;

        if case.expect_safe {
            let (br, base_hash) = self.run_baseline(&args);
            let bret = br.ret().ok_or_else(|| {
                format!("baseline did not finish on a safe case: {:?}", br.outcome)
            })?;
            for lane in &lanes {
                match lane.outcome {
                    Outcome::Finished { ret } if ret == bret => {}
                    Outcome::Finished { ret } => {
                        return Err(format!(
                            "{}: return value {} != baseline {}",
                            lane.lane, ret, bret
                        ));
                    }
                    ref o => {
                        return Err(format!(
                            "{}: safe case did not finish (false positive?): {o:?}",
                            lane.lane
                        ));
                    }
                }
                if lane.output != br.output {
                    return Err(format!(
                        "{}: output {:?} != baseline {:?}",
                        lane.lane, lane.output, br.output
                    ));
                }
                if lane.violation_count != 0 {
                    return Err(format!(
                        "{}: {} violations recorded on a safe case",
                        lane.lane, lane.violation_count
                    ));
                }
                if lane.checks == 0 {
                    return Err(format!("{}: nothing was checked", lane.lane));
                }
                // Metadata is disjoint from program data (tables are
                // synthetic addresses, shadow state lives host-side), so
                // every lane's globals+heap image must equal the
                // baseline's byte-for-byte.
                if lane.data_hash != base_hash {
                    return Err(format!(
                        "{}: data-region digest {:#x} != baseline {:#x}",
                        lane.lane, lane.data_hash, base_hash
                    ));
                }
            }
        } else {
            let expected_addr = (k.fault_addr)(base, case.cap, case.len);
            for lane in &lanes {
                let (scheme, addr, write) = match lane.outcome {
                    Outcome::Trapped(Trap::SpatialViolation {
                        scheme,
                        addr,
                        write,
                    }) => (scheme, addr, write),
                    ref o => {
                        return Err(format!(
                            "{}: overflow case did not trap spatially \
                             (silent overflow?): {o:?}",
                            lane.lane
                        ));
                    }
                };
                if addr != expected_addr {
                    return Err(format!(
                        "{}: trapped at {addr:#x}, but the first out-of-bounds \
                         byte is {expected_addr:#x} (guard base {base:#x}, \
                         eff_cap {eff_cap})",
                        lane.lane
                    ));
                }
                if write != k.overflow_is_store {
                    return Err(format!(
                        "{}: trap write={write}, kernel overflows with a {}",
                        lane.lane,
                        if k.overflow_is_store { "store" } else { "load" }
                    ));
                }
                if scheme != k.trap_scheme {
                    return Err(format!(
                        "{}: trap scheme {scheme:?}, expected {:?}",
                        lane.lane, k.trap_scheme
                    ));
                }
                // Strict wrapper traps are raised by the VM builtin on
                // the runtime's `Trap` disposition without ticking the
                // violation counter; explicit checks must tick it.
                if k.trap_scheme == "softbound" && lane.violation_count == 0 {
                    return Err(format!(
                        "{}: explicit-check trap left violation_count at 0",
                        lane.lane
                    ));
                }
            }
        }
        Ok(())
    }

    /// Runs one case under a continuing policy (Hardened or Monitor) on
    /// the check-preserving program and checks the policy-matrix
    /// obligations; `Strict` delegates to [`Self::run_case`].
    ///
    /// Safe cases must match the uninstrumented baseline bit-for-bit
    /// with zero evidence. Overflow cases must *not* trap spatially;
    /// every lane must record identical evidence whose first record
    /// names the kernel's closed-form fault address and direction.
    /// Hardened runs must finish, and on heap kernels the 64-byte
    /// windows on either side of the guarded object must match a Strict
    /// reference byte-for-byte (clamps contain the access). Monitor
    /// runs on heap kernels must reproduce the uninstrumented
    /// baseline's outcome and output exactly.
    pub fn run_policy_case(&self, case: &Case, policy: ViolationPolicy) -> Result<(), String> {
        let cfg = match policy {
            ViolationPolicy::Strict => return self.run_case(case),
            ViolationPolicy::Hardened => &self.hardened_cfg,
            ViolationPolicy::Monitor => &self.monitor_cfg,
        };
        let k = &self.kernel;
        let args = [case.cap, case.len, case.seed];
        let lanes = self.run_lanes_with(&self.preserved, cfg, &args);
        let first = &lanes[0];

        // Lane invariance extends to the evidence stream: which
        // accesses violated, in what order, at which dynamic PC must
        // not depend on the facility or the execution lane.
        for lane in &lanes[1..] {
            if lane.outcome != first.outcome {
                return Err(format!(
                    "{policy:?}: outcome diverged: {} got {:?}, {} got {:?}",
                    first.lane, first.outcome, lane.lane, lane.outcome
                ));
            }
            if lane.output != first.output {
                return Err(format!(
                    "{policy:?}: output diverged between {} and {}: {:?} vs {:?}",
                    first.lane, lane.lane, first.output, lane.output
                ));
            }
            if lane.insts != first.insts || lane.checks != first.checks {
                return Err(format!(
                    "{policy:?}: dynamic counts diverged: {}=({}, {}) vs {}=({}, {})",
                    first.lane, first.insts, first.checks, lane.lane, lane.insts, lane.checks
                ));
            }
            if lane.evidence != first.evidence {
                return Err(format!(
                    "{policy:?}: evidence diverged between {} ({} records) and {} ({} records)",
                    first.lane,
                    first.evidence.len(),
                    lane.lane,
                    lane.evidence.len()
                ));
            }
        }
        for pair in lanes.chunks(2) {
            if pair[0].cycles != pair[1].cycles || pair[0].mem_hash != pair[1].mem_hash {
                return Err(format!(
                    "{policy:?}: {} vs {} diverged on cycles/memory: ({}, {:#x}) vs ({}, {:#x})",
                    pair[0].lane,
                    pair[1].lane,
                    pair[0].cycles,
                    pair[0].mem_hash,
                    pair[1].cycles,
                    pair[1].mem_hash
                ));
            }
        }

        if case.expect_safe {
            let (br, base_hash) = self.run_baseline(&args);
            let bret = br.ret().ok_or_else(|| {
                format!("baseline did not finish on a safe case: {:?}", br.outcome)
            })?;
            for lane in &lanes {
                if lane.outcome != (Outcome::Finished { ret: bret }) || lane.output != br.output {
                    return Err(format!(
                        "{policy:?} {}: safe case diverged from baseline: {:?} {:?}",
                        lane.lane, lane.outcome, lane.output
                    ));
                }
                if !lane.evidence.is_empty() || lane.violation_count != 0 {
                    return Err(format!(
                        "{policy:?} {}: safe case recorded {} evidence / {} violations",
                        lane.lane,
                        lane.evidence.len(),
                        lane.violation_count
                    ));
                }
                if lane.data_hash != base_hash {
                    return Err(format!(
                        "{policy:?} {}: data-region digest {:#x} != baseline {:#x}",
                        lane.lane, lane.data_hash, base_hash
                    ));
                }
            }
            return Ok(());
        }

        let (base, eff_cap) = parse_guard(&first.output).ok_or_else(|| {
            format!(
                "no `G <base> <cap>` guard line in output {:?} ({:?})",
                first.output, first.outcome
            )
        })?;
        let expected_addr = (k.fault_addr)(base, case.cap, case.len);
        let on_heap = (HEAP_BASE..FN_BASE).contains(&base);
        for lane in &lanes {
            if matches!(
                lane.outcome,
                Outcome::Trapped(Trap::SpatialViolation { .. })
            ) {
                return Err(format!(
                    "{policy:?} {}: continuing policy still trapped spatially: {:?}",
                    lane.lane, lane.outcome
                ));
            }
            let ev = lane.evidence.first().ok_or_else(|| {
                format!(
                    "{policy:?} {}: overflow case recorded no evidence",
                    lane.lane
                )
            })?;
            if ev.fault_addr != expected_addr {
                return Err(format!(
                    "{policy:?} {}: first evidence at {:#x}, but the first \
                     out-of-bounds byte is {expected_addr:#x} (guard base \
                     {base:#x}, eff_cap {eff_cap})",
                    lane.lane, ev.fault_addr
                ));
            }
            if ev.write != k.overflow_is_store {
                return Err(format!(
                    "{policy:?} {}: evidence write={}, kernel overflows with a {}",
                    lane.lane,
                    ev.write,
                    if k.overflow_is_store { "store" } else { "load" }
                ));
            }
            if lane.violation_count == 0 {
                return Err(format!(
                    "{policy:?} {}: overflow left violation_count at 0",
                    lane.lane
                ));
            }
        }
        match policy {
            ViolationPolicy::Hardened => {
                for lane in &lanes {
                    if !matches!(lane.outcome, Outcome::Finished { .. }) {
                        return Err(format!(
                            "hardened {}: clamped run did not finish: {:?}",
                            lane.lane, lane.outcome
                        ));
                    }
                }
                if on_heap {
                    // Clamp containment: the bytes just outside the
                    // guarded object must be exactly what a Strict run
                    // (which traps before touching them) leaves behind.
                    // Every kernel mallocs the guarded buffer exactly
                    // once, so no neighbouring allocation legitimately
                    // writes into these windows.
                    let bound = base + eff_cap as u64;
                    let windows = [(base.saturating_sub(64), base), (bound, bound + 64)];
                    let strict_ref = observe_windows(
                        "strict/ref",
                        &self.program,
                        SoftBoundRuntime::new_paged(&self.cfg),
                        &args,
                        false,
                        &windows,
                    );
                    let hardened = observe_windows(
                        "hardened/ref",
                        &self.preserved,
                        SoftBoundRuntime::new_paged(cfg),
                        &args,
                        false,
                        &windows,
                    );
                    if hardened.window != strict_ref.window {
                        return Err(format!(
                            "hardened clamp leaked outside the guarded object: \
                             windows around [{base:#x}, {bound:#x}) differ from \
                             the strict reference"
                        ));
                    }
                }
            }
            ViolationPolicy::Monitor => {
                if on_heap {
                    // Monitor performs the access: the run must be
                    // indistinguishable from the uninstrumented
                    // baseline (including an identical memory fault if
                    // the stray access leaves the mapped heap).
                    let (br, _) = self.run_baseline(&args);
                    if first.outcome != br.outcome || first.output != br.output {
                        return Err(format!(
                            "monitor diverged from the uninstrumented baseline: \
                             {:?} {:?} vs {:?} {:?}",
                            first.outcome, first.output, br.outcome, br.output
                        ));
                    }
                }
            }
            ViolationPolicy::Strict => unreachable!("handled above"),
        }
        Ok(())
    }

    /// Greedy shrink under the Strict oracle: try smaller
    /// `cap`/`len`/`seed` values that keep the case diverging,
    /// preferring the smallest reproducer.
    pub fn minimize(&self, case: &Case) -> Case {
        self.minimize_policy(case, ViolationPolicy::Strict)
    }

    /// Greedy shrink against the given policy's oracle.
    pub fn minimize_policy(&self, case: &Case, policy: ViolationPolicy) -> Case {
        let mut best = *case;
        let mut progress = true;
        while progress {
            progress = false;
            let mut candidates = Vec::new();
            if best.len > 0 {
                candidates.push(Case {
                    len: best.len - 1,
                    ..best
                });
                candidates.push(Case { len: 0, ..best });
            }
            if best.cap > 1 {
                candidates.push(Case {
                    cap: best.cap - 1,
                    ..best
                });
                candidates.push(Case { cap: 1, ..best });
            }
            if best.seed != 0 {
                candidates.push(Case { seed: 0, ..best });
            }
            for mut c in candidates {
                c.expect_safe = (self.kernel.safe)(c.cap, c.len);
                let smaller = (c.cap, c.len, c.seed) < (best.cap, best.len, best.seed);
                if smaller && self.run_policy_case(&c, policy).is_err() {
                    best = c;
                    progress = true;
                    break;
                }
            }
        }
        best
    }
}

/// Builds one harness per kernel (each compiles its program once).
pub fn harnesses() -> Vec<KernelHarness> {
    sb_workloads::all_libc_kernels()
        .into_iter()
        .map(KernelHarness::new)
        .collect()
}

/// Fuzzes cases `start..start + cases` of the stream rooted at `seed0`
/// under the Strict oracle. Stops after a handful of failures; each
/// failure is minimized and carries a reproducible seed.
pub fn fuzz_range(seed0: u64, start: u64, cases: u64) -> FuzzReport {
    fuzz_range_policy(seed0, start, cases, ViolationPolicy::Strict)
}

/// Fuzzes cases `start..start + cases` of the stream rooted at `seed0`
/// under `policy`'s conformance oracle: [`KernelHarness::run_case`] for
/// Strict, [`KernelHarness::run_policy_case`] for the continuing
/// policies. The case stream is policy-independent, so the same seed
/// covers the same `(kernel, cap, len, seed)` points in every mode.
pub fn fuzz_range_policy(
    seed0: u64,
    start: u64,
    cases: u64,
    policy: ViolationPolicy,
) -> FuzzReport {
    let kernels = sb_workloads::all_libc_kernels();
    let harnesses = harnesses();
    let mut report = FuzzReport::default();
    for index in start..start + cases {
        let case = gen_case(seed0, index, &kernels);
        let h = &harnesses[case.kernel_idx];
        report.cases += 1;
        if case.expect_safe {
            report.safe += 1;
        } else {
            report.overflow += 1;
        }
        if let Err(message) = h.run_policy_case(&case, policy) {
            let minimized = h.minimize_policy(&case, policy);
            report.failures.push(Failure {
                seed0,
                index,
                kernel: h.kernel.name,
                case,
                minimized,
                message,
            });
            if report.failures.len() >= 5 {
                break;
            }
        }
    }
    report
}

/// Fuzzes the first `cases` cases of the stream rooted at `seed0`.
pub fn fuzz(seed0: u64, cases: u64) -> FuzzReport {
    fuzz_range(seed0, 0, cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_steers_both_regimes() {
        let kernels = sb_workloads::all_libc_kernels();
        let a: Vec<Case> = (0..64).map(|i| gen_case(7, i, &kernels)).collect();
        let b: Vec<Case> = (0..64).map(|i| gen_case(7, i, &kernels)).collect();
        assert_eq!(a, b, "same (seed, index) must regenerate the same case");
        let safe = a.iter().filter(|c| c.expect_safe).count();
        assert!(
            (16..=48).contains(&safe),
            "steering failed: {safe}/64 safe cases"
        );
        let distinct_kernels: std::collections::HashSet<usize> =
            a.iter().map(|c| c.kernel_idx).collect();
        assert!(distinct_kernels.len() >= 6, "kernel coverage too narrow");
    }

    #[test]
    fn verdict_always_matches_the_kernel_oracle() {
        let kernels = sb_workloads::all_libc_kernels();
        for i in 0..256 {
            let c = gen_case(42, i, &kernels);
            assert_eq!(
                c.expect_safe,
                (kernels[c.kernel_idx].safe)(c.cap, c.len),
                "case #{i} verdict out of sync with the oracle"
            );
            assert!((1..=48).contains(&c.cap), "cap {} out of range", c.cap);
            assert!((0..=64).contains(&c.len), "len {} out of range", c.len);
            assert!((0..=999).contains(&c.seed), "seed {} out of range", c.seed);
        }
    }

    #[test]
    fn smoke_fuzz_is_clean() {
        let report = fuzz(0xc0ffee, 48);
        assert!(
            report.failures.is_empty(),
            "divergences:\n{}",
            report
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.safe > 0 && report.overflow > 0);
    }

    #[test]
    fn policy_matrix_smoke_is_clean() {
        for policy in [ViolationPolicy::Hardened, ViolationPolicy::Monitor] {
            let report = fuzz_range_policy(0xc0ffee, 0, 32, policy);
            assert!(
                report.failures.is_empty(),
                "{policy:?} divergences:\n{}",
                report
                    .failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            assert!(report.safe > 0 && report.overflow > 0);
        }
    }
}
