//! Perf-trajectory snapshot: the speed curve re-anchors read.
//!
//! Measures wall-clock ns per executed VM instruction for each
//! evaluation workload on both interpreter lanes — the pre-decoded
//! execution IR and the tree-walk oracle — plus the static elimination
//! and fusion counts that explain the curve. Rendered as
//! `BENCH_softbound.json` by the `perf_trajectory` binary:
//!
//! ```sh
//! cargo run -p sb-bench --bin perf_trajectory --release
//! ```

use softbound::{Engine, Lane};
use std::time::Instant;

/// One (workload, lane) measurement.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload name.
    pub workload: &'static str,
    /// `"predecoded"` or `"tree_walk"`.
    pub lane: &'static str,
    /// Best-of-N wall-clock nanoseconds for one run.
    pub run_ns: u128,
    /// Dynamic VM instructions of one run (identical across lanes).
    pub insts: u64,
    /// Wall-clock nanoseconds per executed VM instruction.
    pub ns_per_op: f64,
    /// Dynamic bounds checks of one run (identical across lanes).
    pub checks: u64,
    /// Static checks removed by redundant-check elimination.
    pub checks_eliminated: u64,
    /// Static check+access pairs fused into superinstructions.
    pub fused_checks: u64,
}

/// The step-loop-bound subset of the evaluation workloads: long
/// dispatch-dominated runs where lane choice, not setup, is the cost.
pub const WORKLOADS: &[&str] = &["compress", "tsp", "treeadd", "health"];

fn timed(instance: &mut softbound::Instance, args: &[i64]) -> u128 {
    let t = Instant::now();
    std::hint::black_box(instance.run("main", args).ret());
    t.elapsed().as_nanos()
}

/// Measures one compiled program on both lanes (interleaved best-of-7,
/// same discipline as [`run`]) and pushes a row pair onto `rows`.
fn measure_pair(name: &'static str, source: &str, args: &[i64], rows: &mut Vec<PerfRow>) {
    let predecoded = Engine::new();
    let program = predecoded.compile(source).expect("program compiles");
    let tree_walk = predecoded.clone().lane(Lane::TreeWalk);
    let eliminated = program.stats().checks_eliminated as u64;
    let fused = program.exec().fused_checks;

    let mut pre = predecoded.instantiate(&program);
    let mut tree = tree_walk.instantiate(&program);
    // Warm up: materialize shadow pages, frame pool, scratch buffers.
    let warm = pre.run("main", args);
    let (insts, checks) = (warm.stats.insts, warm.stats.checks);
    std::hint::black_box(tree.run("main", args).ret());

    let (mut best_pre, mut best_tree) = (u128::MAX, u128::MAX);
    for _ in 0..7 {
        best_pre = best_pre.min(timed(&mut pre, args));
        best_tree = best_tree.min(timed(&mut tree, args));
    }
    for (lane, run_ns) in [("predecoded", best_pre), ("tree_walk", best_tree)] {
        rows.push(PerfRow {
            workload: name,
            lane,
            run_ns,
            insts,
            ns_per_op: run_ns as f64 / insts.max(1) as f64,
            checks,
            checks_eliminated: eliminated,
            fused_checks: fused,
        });
    }
}

/// Runs every workload through both lanes.
///
/// The two lanes are timed *interleaved*, best-of-N each: scheduler
/// noise arrives in bursts, so timing one lane's attempts back-to-back
/// would let a single burst skew the whole lane. Noise only ever slows
/// a run, so per-lane minimums converge on the true cost.
pub fn run() -> Vec<PerfRow> {
    let mut rows = Vec::new();
    for name in WORKLOADS {
        let w = sb_workloads::benchmark_by_name(name).expect("workload exists");
        measure_pair(w.name, w.source, &[w.default_arg], &mut rows);
    }
    rows
}

/// Safe `(cap, len, seed)` arguments every libc kernel accepts (len
/// fits the `header` kernel's fixed 16-byte buffer, len + 7 fits
/// `sprintf`, len + 3 fits `memmove`'s shift).
pub const LIBC_ARGS: [i64; 3] = [48, 12, 7];

/// Runs every libc corpus kernel through both lanes on the shared safe
/// arguments — the string/buffer-traffic counterpart of [`run`] that
/// feeds the `libc_kernels` section of `BENCH_softbound.json`.
pub fn run_libc() -> Vec<PerfRow> {
    let mut rows = Vec::new();
    for k in sb_workloads::all_libc_kernels() {
        debug_assert!(
            (k.safe)(LIBC_ARGS[0], LIBC_ARGS[1]),
            "{}: perf args unsafe",
            k.name
        );
        measure_pair(k.name, k.source, &LIBC_ARGS, &mut rows);
    }
    rows
}

/// Speedup of the pre-decoded lane over the tree-walk lane per
/// workload, from a [`run`] result.
pub fn speedups(rows: &[PerfRow]) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        if let [pre, tree] = pair {
            debug_assert_eq!(pre.workload, tree.workload);
            debug_assert_eq!(pre.lane, "predecoded");
            out.push((pre.workload, tree.run_ns as f64 / pre.run_ns.max(1) as f64));
        }
    }
    out
}

fn render_rows(s: &mut String, rows: &[PerfRow], indent: &str) {
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "{indent}{{\"workload\": \"{}\", \"lane\": \"{}\", \"run_ns\": {}, \
             \"insts\": {}, \"ns_per_op\": {:.4}, \"checks\": {}, \
             \"checks_eliminated\": {}, \"fused_checks\": {}}}{}\n",
            r.workload,
            r.lane,
            r.run_ns,
            r.insts,
            r.ns_per_op,
            r.checks,
            r.checks_eliminated,
            r.fused_checks,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
}

/// Renders the snapshot as the `BENCH_softbound.json` trajectory file
/// (hand-rolled — the workspace carries no JSON dependency). The fleet
/// scaling curve and the libc-kernel corpus rows, when measured, are
/// appended as `scaling` / `libc_kernels` sections; pass empty slices
/// to omit them.
pub fn render_json(
    rows: &[PerfRow],
    scaling: &[crate::scaling::ScalingPoint],
    libc: &[PerfRow],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"softbound\",\n  \"unit\": \"ns_per_vm_inst\",\n");
    s.push_str("  \"lanes\": [\"predecoded\", \"tree_walk\"],\n  \"rows\": [\n");
    render_rows(&mut s, rows, "    ");
    s.push_str("  ],\n  \"speedups\": {\n");
    let sp = speedups(rows);
    for (i, (w, x)) in sp.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {:.2}{}\n",
            w,
            x,
            if i + 1 < sp.len() { "," } else { "" }
        ));
    }
    s.push_str("  }");
    if !libc.is_empty() {
        s.push_str(",\n  \"libc_kernels\": [\n");
        render_rows(&mut s, libc, "    ");
        s.push_str("  ]");
    }
    if !scaling.is_empty() {
        s.push_str(",\n");
        s.push_str(&crate::scaling::render_json(scaling));
    }
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape check on a tiny synthetic row set — the real file is
    /// regenerated in release mode by the `perf_trajectory` bin.
    #[test]
    fn json_shape_is_stable() {
        let rows = vec![
            PerfRow {
                workload: "compress",
                lane: "predecoded",
                run_ns: 100,
                insts: 50,
                ns_per_op: 2.0,
                checks: 10,
                checks_eliminated: 3,
                fused_checks: 7,
            },
            PerfRow {
                workload: "compress",
                lane: "tree_walk",
                run_ns: 200,
                insts: 50,
                ns_per_op: 4.0,
                checks: 10,
                checks_eliminated: 3,
                fused_checks: 7,
            },
        ];
        let scaling = vec![crate::scaling::ScalingPoint {
            workers: 4,
            requests: 24,
            wall_ns: 500,
            reqs_per_sec: 48.0,
            p50_ns: 40,
            p95_ns: 90,
            p99_ns: 99,
            reservation_bytes_per_worker: 1 << 28,
            reservation_bytes_private: 4 << 28,
            reservation_bytes_shared: (1 << 28) + (4 << 22),
        }];
        let libc = vec![PerfRow {
            workload: "memcpy",
            lane: "predecoded",
            run_ns: 40,
            insts: 20,
            ns_per_op: 2.0,
            checks: 4,
            checks_eliminated: 1,
            fused_checks: 2,
        }];
        let json = render_json(&rows, &scaling, &libc);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for key in [
            "\"bench\": \"softbound\"",
            "\"lane\": \"predecoded\"",
            "\"lane\": \"tree_walk\"",
            "\"ns_per_op\"",
            "\"checks_eliminated\"",
            "\"fused_checks\"",
            "\"speedups\"",
            "\"libc_kernels\"",
            "\"workload\": \"memcpy\"",
            "\"scaling\"",
            "\"host_cores\"",
            "\"reservation_bytes_per_worker\"",
            "\"reservation_bytes_private\"",
            "\"reservation_bytes_shared\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON dependency.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let sp = speedups(&rows);
        assert_eq!(sp, vec![("compress", 2.0)]);
        // Omitting the optional sections must not leave dangling commas.
        let bare = render_json(&rows, &[], &[]);
        assert!(!bare.contains("\"scaling\""));
        assert!(!bare.contains("\"libc_kernels\""));
        assert_eq!(bare.matches('{').count(), bare.matches('}').count());
    }

    /// The shared perf arguments must be safe for every corpus kernel —
    /// a trapping perf lane would time the trap path, not the kernel.
    #[test]
    fn libc_perf_args_are_safe_for_every_kernel() {
        for k in sb_workloads::all_libc_kernels() {
            assert!(
                (k.safe)(LIBC_ARGS[0], LIBC_ARGS[1]),
                "{}: ({}, {}) is not safe",
                k.name,
                LIBC_ARGS[0],
                LIBC_ARGS[1]
            );
        }
    }

    /// Both lanes execute the same dynamic instruction stream, so the
    /// measured `insts`/`checks` must agree pairwise.
    #[test]
    fn lanes_agree_on_dynamic_counts() {
        let w = sb_workloads::benchmark_by_name("treeadd").expect("workload exists");
        let engine = Engine::new();
        let program = engine.compile(w.source).expect("compiles");
        let pre = engine.instantiate(&program).run("main", &[w.default_arg]);
        let tree = engine
            .clone()
            .lane(Lane::TreeWalk)
            .instantiate(&program)
            .run("main", &[w.default_arg]);
        assert_eq!(pre.stats.insts, tree.stats.insts);
        assert_eq!(pre.stats.checks, tree.stats.checks);
        assert_eq!(pre.stats.cycles, tree.stats.cycles);
    }
}
