//! §6.5: performance comparison with the MSCC-like scheme (and the
//! paper's published CCured/MSCC numbers for context).
//!
//! The paper reports MSCC spatial-only overheads of 17–185% (average 68%),
//! and contrasts `go`: 144% under MSCC vs 55% under SoftBound.

use crate::{overhead, run_uninstrumented};
use sb_baselines::Scheme;
use sb_workloads::all_benchmarks;
use softbound::SoftBoundConfig;

/// One benchmark's §6.5 comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// SoftBound (ShadowSpace-Complete) overhead.
    pub softbound: f64,
    /// MSCC-like overhead.
    pub mscc: f64,
}

/// Runs every benchmark under SoftBound full-shadow and MSCC.
pub fn run() -> Vec<Row> {
    let sb = Scheme::SoftBound(SoftBoundConfig::full_shadow());
    let mscc = Scheme::Mscc;
    all_benchmarks()
        .iter()
        .map(|w| {
            let base = run_uninstrumented(w);
            let sb_r = {
                let m = sb.compile(w.source).expect("compiles");
                sb.run_module(&m, "main", &[w.default_arg])
            };
            let mscc_r = {
                let m = mscc.compile(w.source).expect("compiles");
                mscc.run_module(&m, "main", &[w.default_arg])
            };
            assert_eq!(
                sb_r.ret(),
                base.ret(),
                "{} diverged under softbound",
                w.name
            );
            assert_eq!(mscc_r.ret(), base.ret(), "{} diverged under mscc", w.name);
            Row {
                name: w.name.to_string(),
                softbound: overhead(base.stats.cycles, sb_r.stats.cycles),
                mscc: overhead(base.stats.cycles, mscc_r.stats.cycles),
            }
        })
        .collect()
}

/// Renders the §6.5 comparison.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("§6.5: SoftBound vs MSCC-like overhead (percent over uninstrumented)\n\n");
    out.push_str(&format!(
        "{:<12}{:>11}{:>9}\n",
        "benchmark", "SoftBound", "MSCC"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:>10.0}%{:>8.0}%\n",
            r.name,
            100.0 * r.softbound,
            100.0 * r.mscc
        ));
    }
    let n = rows.len() as f64;
    let avg_sb = rows.iter().map(|r| r.softbound).sum::<f64>() / n;
    let avg_mscc = rows.iter().map(|r| r.mscc).sum::<f64>() / n;
    out.push_str(&format!(
        "{:<12}{:>10.0}%{:>8.0}%\n",
        "average",
        100.0 * avg_sb,
        100.0 * avg_mscc
    ));
    out.push_str(
        "\npaper: MSCC spatial-only 17%..185% (avg 68%); go: MSCC 144% vs SoftBound 55%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mscc_costs_more_on_average() {
        let rows = run();
        let n = rows.len() as f64;
        let avg_sb = rows.iter().map(|r| r.softbound).sum::<f64>() / n;
        let avg_mscc = rows.iter().map(|r| r.mscc).sum::<f64>() / n;
        assert!(
            avg_mscc > avg_sb,
            "MSCC ({avg_mscc}) must average above SoftBound ({avg_sb}) — §6.5"
        );
    }
}
