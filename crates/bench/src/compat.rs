//! §6.4: source-code compatibility case studies. The two daemons are
//! transformed unmodified and executed under SoftBound (both modes);
//! the experiment records result equality with the unprotected run and
//! the absence of false positives.

use sb_vm::{Machine, MachineConfig, NoRuntime};
use sb_workloads::daemons;
use softbound::{Engine, SoftBoundConfig};

/// One daemon's compatibility result.
#[derive(Debug, Clone)]
pub struct Row {
    /// Daemon name.
    pub name: String,
    /// Lines of CIR-C source.
    pub source_lines: usize,
    /// Unprotected checksum.
    pub plain_ret: i64,
    /// Checksum under full checking (must match).
    pub full_ret: Option<i64>,
    /// Checksum under store-only checking (must match).
    pub store_ret: Option<i64>,
    /// Dynamic checks executed under full checking (work actually done).
    pub full_checks: u64,
}

impl Row {
    /// True when both protected runs matched the unprotected run.
    pub fn compatible(&self) -> bool {
        self.full_ret == Some(self.plain_ret) && self.store_ret == Some(self.plain_ret)
    }
}

/// Runs both daemons under {plain, full, store-only}.
pub fn run() -> Vec<Row> {
    daemons::all()
        .iter()
        .map(|d| {
            let prog = sb_cir::compile(d.source).expect("daemon compiles unmodified");
            let mut m = sb_ir::lower(&prog, d.name);
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
            let mut plain = Machine::new(&m, MachineConfig::default(), NoRuntime);
            let pr = plain.run("main", &[0]);
            let plain_ret = pr.ret().expect("daemon runs");

            let run_cfg = |cfg: &SoftBoundConfig| {
                let engine = Engine::new().softbound_config(cfg.clone());
                let program = engine.compile(d.source).expect("compiles");
                engine.instantiate(&program).run("main", &[0])
            };
            let full = run_cfg(&SoftBoundConfig::full_shadow());
            let store = run_cfg(&SoftBoundConfig::store_only_shadow());
            Row {
                name: d.name.to_string(),
                source_lines: d.source.lines().count(),
                plain_ret,
                full_ret: full.ret(),
                store_ret: store.ret(),
                full_checks: full.stats.checks,
            }
        })
        .collect()
}

/// Renders the §6.4 report.
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("§6.4: network daemons transformed without source modification\n\n");
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>4} lines  checksum {}  full: {:?}  store-only: {:?}  checks: {}  -> {}\n",
            r.name,
            r.source_lines,
            r.plain_ret,
            r.full_ret,
            r.store_ret,
            r.full_checks,
            if r.compatible() {
                "compatible, no false positives"
            } else {
                "INCOMPATIBLE"
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemons_run_protected_without_false_positives() {
        for r in run() {
            assert!(
                r.compatible(),
                "{}: full={:?} store={:?} plain={}",
                r.name,
                r.full_ret,
                r.store_ret,
                r.plain_ret
            );
            assert!(
                r.full_checks > 1000,
                "{}: suspiciously few checks ({})",
                r.name,
                r.full_checks
            );
        }
    }
}
