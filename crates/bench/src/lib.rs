//! # sb-bench — the experiment harness
//!
//! Regenerates every table and figure of the SoftBound paper's evaluation
//! (§6) from the reproduction's own implementations:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`figure1`] | Figure 1 — % of memory ops that move pointers |
//! | [`figure2`] | Figure 2 — runtime overhead, 4 SoftBound configs |
//! | [`table1`]  | Table 1 — qualitative attribute matrix (probe-driven) |
//! | [`table3`]  | Table 3 — Wilander attack detection |
//! | [`table4`]  | Table 4 — BugBench detection vs Valgrind/Mudflap |
//! | [`compat`]  | §6.4 — daemons transformed unmodified, zero false positives |
//! | [`related`] | §6.5 — overhead comparison with the MSCC-like scheme |
//!
//! Each module exposes a `run()` returning structured rows plus a
//! `render()` producing the textual table; the `report` binary prints
//! everything (`cargo run -p sb-bench --bin report --release`).

pub mod compat;
pub mod figure1;
pub mod figure2;
pub mod related;
pub mod table1;
pub mod table3;
pub mod table4;

use sb_vm::{Machine, MachineConfig, NoRuntime, RunResult};
use sb_workloads::Workload;

/// Compiles and runs a workload uninstrumented (the overhead baseline).
pub fn run_uninstrumented(w: &Workload) -> RunResult {
    let prog = sb_cir::compile(w.source).expect("workload compiles");
    let mut m = sb_ir::lower(&prog, w.name);
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
    let mut machine = Machine::new(&m, MachineConfig::default(), Box::new(NoRuntime));
    machine.run("main", &[w.default_arg])
}

/// Percentage formatter (one decimal).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Overhead of `cycles` relative to `base` as a fraction (0.79 = 79%).
pub fn overhead(base: u64, cycles: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        cycles as f64 / base as f64 - 1.0
    }
}
