//! # sb-bench — the experiment harness
//!
//! Regenerates every table and figure of the SoftBound paper's evaluation
//! (§6) from the reproduction's own implementations:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`figure1`] | Figure 1 — % of memory ops that move pointers |
//! | [`figure2`] | Figure 2 — runtime overhead, 4 SoftBound configs |
//! | [`table1`]  | Table 1 — qualitative attribute matrix (probe-driven) |
//! | [`table3`]  | Table 3 — Wilander attack detection |
//! | [`table4`]  | Table 4 — BugBench detection vs Valgrind/Mudflap |
//! | [`compat`]  | §6.4 — daemons transformed unmodified, zero false positives |
//! | [`related`] | §6.5 — overhead comparison with the MSCC-like scheme |
//! | [`scaling`] | fleet serving — req/s vs worker count over one shared Program |
//! | [`policy_matrix`] | violation policies — Strict/Hardened/Monitor over one fleet stream |
//!
//! Each module exposes a `run()` returning structured rows plus a
//! `render()` producing the textual table; the `report` binary prints
//! everything (`cargo run -p sb-bench --bin report --release`).

pub mod compat;
pub mod conformance;
pub mod figure1;
pub mod figure2;
pub mod perf;
pub mod policy_matrix;
pub mod related;
pub mod scaling;
pub mod table1;
pub mod table3;
pub mod table4;

use sb_vm::{Machine, MachineConfig, NoRuntime, RunResult};
use sb_workloads::Workload;

/// Compiles and runs a workload uninstrumented (the overhead baseline).
pub fn run_uninstrumented(w: &Workload) -> RunResult {
    let prog = sb_cir::compile(w.source).expect("workload compiles");
    let mut m = sb_ir::lower(&prog, w.name);
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
    let mut machine = Machine::new(&m, MachineConfig::default(), NoRuntime);
    machine.run("main", &[w.default_arg])
}

/// Percentage formatter (one decimal).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Overhead of `cycles` relative to `base` as a fraction (0.79 = 79%).
pub fn overhead(base: u64, cycles: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        cycles as f64 / base as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use softbound::{Engine, Meta, MetadataFacility, NoopSink, ShadowHashMapFacility, ShadowPages};
    use std::time::Instant;

    /// One round of the pointer-dense access pattern (the
    /// `metadata/store_load_1k_slots` microbenchmark's loop body).
    /// Generic, so each facility is measured under static dispatch.
    fn pointer_dense_round<F: MetadataFacility>(fac: &mut F) -> u64 {
        let mut sink = NoopSink;
        let mut acc = 0u64;
        for i in 0..1000u64 {
            let addr = 0x10000 + (i % 512) * 8;
            fac.store(
                addr,
                Meta {
                    base: addr,
                    bound: addr + 64,
                },
                &mut sink,
            );
            acc = acc.wrapping_add(fac.load(addr, &mut sink).bound);
        }
        acc
    }

    fn best_ns<F: MetadataFacility>(fac: &mut F) -> u128 {
        // Warm up (materializes pages / hash buckets), then best-of-7.
        std::hint::black_box(pointer_dense_round(fac));
        (0..7)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..20 {
                    std::hint::black_box(pointer_dense_round(fac));
                }
                t.elapsed().as_nanos()
            })
            .min()
            .expect("non-empty")
    }

    /// The devirtualization acceptance bar: the monomorphized paged
    /// facility must not be slower than the same facility behind
    /// `Box<dyn MetadataFacility>` (static ≥ dyn). Same retry/best-of-N
    /// discipline as the 2× test below — the two sides do identical
    /// data-structure work, so only scheduler noise can make the static
    /// side *appear* slower; a 10% grace plus retries absorbs it while a
    /// real dispatch regression (the static path re-acquiring virtual
    /// calls) still fails.
    #[test]
    fn static_dispatch_not_slower_than_dyn_on_paged() {
        let mut worst = (0u128, 0u128);
        for _ in 0..5 {
            let mut st = ShadowPages::new();
            let mut dy: Box<dyn MetadataFacility> = Box::new(ShadowPages::new());
            let st_ns = best_ns(&mut st);
            let dy_ns = best_ns(&mut dy);
            if st_ns <= dy_ns + dy_ns / 10 {
                return;
            }
            worst = (st_ns, dy_ns);
        }
        panic!(
            "static dispatch slower than dyn in every attempt: static {} ns vs dyn {} ns",
            worst.0, worst.1
        );
    }

    /// The session-API acceptance bar (the `throughput` bench's claim,
    /// pinned as a test): serving N requests on one reused `Instance` —
    /// which keeps the 256 MiB shadow-directory reservation, global
    /// layout, and frame plans across requests — must beat building a
    /// fresh machine per request from the same compiled `Program`. Same
    /// retry/best-of-N discipline as the dispatch tests: scheduler noise
    /// can only slow either side down, so any passing attempt proves the
    /// direction, while a real regression (reset costing as much as
    /// construction) fails every attempt.
    #[test]
    fn reused_instance_beats_fresh_machine_per_request() {
        let src = r#"
            struct item { int id; struct item* next; };
            int main(int n) {
                struct item* head = NULL;
                for (int i = 0; i <= n; i++) {
                    struct item* it = (struct item*)malloc(sizeof(struct item));
                    it->id = i * 3 + 1;
                    it->next = head;
                    head = it;
                }
                int sum = 0;
                while (head != NULL) {
                    sum += head->id;
                    struct item* dead = head;
                    head = head->next;
                    free(dead);
                }
                return sum;
            }
        "#;
        let engine = Engine::new();
        let program = engine.compile(src).expect("compiles");
        let expected = engine.instantiate(&program).run("main", &[16]).ret();
        assert!(expected.is_some());
        const REQUESTS: u32 = 12;

        let reused_ns = |engine: &Engine, program: &softbound::Program| {
            let mut inst = engine.instantiate(program);
            std::hint::black_box(inst.run("main", &[16]).ret()); // warm
            let t = Instant::now();
            for _ in 0..REQUESTS {
                let r = inst.run("main", &[16]);
                assert_eq!(r.ret(), expected);
            }
            t.elapsed().as_nanos()
        };
        let fresh_ns = |engine: &Engine, program: &softbound::Program| {
            let t = Instant::now();
            for _ in 0..REQUESTS {
                let r = engine.instantiate(program).run("main", &[16]);
                assert_eq!(r.ret(), expected);
            }
            t.elapsed().as_nanos()
        };

        let mut worst = (0u128, 0u128);
        for _ in 0..5 {
            let reused = reused_ns(&engine, &program);
            let fresh = fresh_ns(&engine, &program);
            if reused < fresh {
                return;
            }
            worst = (reused, fresh);
        }
        panic!(
            "reused instance never beat fresh-machine-per-request: \
             reused {} ns vs fresh {} ns for {REQUESTS} requests",
            worst.0, worst.1
        );
    }

    /// The two-tier IR acceptance bar (PR 6): serving requests through
    /// the pre-decoded execution IR must not be slower than the
    /// tree-walk oracle on a check-dense workload. Both lanes execute
    /// the exact same dynamic instruction stream (pinned bit-for-bit by
    /// `machine_differential`), so only scheduler noise can make the
    /// flat dispatch loop *appear* slower; 10% grace plus retries
    /// absorbs it while a real dispatch regression fails every attempt.
    #[test]
    fn predecoded_lane_not_slower_than_tree_walk() {
        // Array-sum kernel: bounds-check + access on every iteration,
        // so the fused superinstructions and flat dispatch dominate.
        let src = r#"
            int main(int n) {
                int* a = (int*)malloc(256 * sizeof(int));
                for (int i = 0; i < 256; i++) a[i] = i;
                int sum = 0;
                for (int r = 0; r < n; r++)
                    for (int i = 0; i < 256; i++)
                        sum += a[i];
                free(a);
                return sum;
            }
        "#;
        let pre_engine = Engine::new();
        let tree_engine = pre_engine.clone().lane(softbound::Lane::TreeWalk);
        let program = pre_engine.compile(src).expect("compiles");
        let lane_ns = |engine: &Engine| {
            let mut inst = engine.instantiate(&program);
            std::hint::black_box(inst.run("main", &[60]).ret()); // warm
            (0..5)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(inst.run("main", &[60]).ret());
                    t.elapsed().as_nanos()
                })
                .min()
                .expect("non-empty")
        };
        let mut worst = (0u128, 0u128);
        for _ in 0..5 {
            let pre = lane_ns(&pre_engine);
            let tree = lane_ns(&tree_engine);
            if pre <= tree + tree / 10 {
                return;
            }
            worst = (pre, tree);
        }
        panic!(
            "pre-decoded lane slower than tree-walk in every attempt: \
             pre-decoded {} ns vs tree-walk {} ns",
            worst.0, worst.1
        );
    }

    /// §5.1's performance claim, at the host level: the paged shadow
    /// space's constant-offset direct map beats the old HashMap-backed
    /// lookup by at least 2× on the pointer-dense pattern. Wall-clock
    /// assertions in a test suite are noise-prone on loaded runners, so
    /// this takes best-of-N per attempt and passes if *any* of a few
    /// attempts clears the bar (scheduler noise can only slow the paged
    /// side down, never speed the HashMap side up); the release-mode
    /// margin in `benches/metadata.rs` is ~3×.
    #[test]
    fn paged_shadow_at_least_2x_faster_than_hashmap_shadow() {
        let mut worst = (0u128, 0u128);
        for _ in 0..3 {
            let mut paged = ShadowPages::new();
            let mut hashed = ShadowHashMapFacility::new();
            let paged_ns = best_ns(&mut paged);
            let hashed_ns = best_ns(&mut hashed);
            if hashed_ns >= 2 * paged_ns {
                return;
            }
            worst = (paged_ns, hashed_ns);
        }
        panic!(
            "paged shadow not ≥2× faster in any attempt: paged {} ns vs hashmap {} ns",
            worst.0, worst.1
        );
    }
}
