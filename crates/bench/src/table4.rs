//! Table 4: BugBench-style bugs versus Valgrind-like, Mudflap-like and
//! SoftBound (store-only / full).

use sb_baselines::Scheme;
use sb_workloads::bugbench::{self, BugProgram};
use softbound::SoftBoundConfig;

/// One Table 4 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The buggy program.
    pub bug: BugProgram,
    /// Detected by the Valgrind-like baseline?
    pub valgrind: bool,
    /// Detected by the Mudflap-like baseline?
    pub mudflap: bool,
    /// Detected by SoftBound store-only?
    pub store_only: bool,
    /// Detected by SoftBound full?
    pub full: bool,
}

impl Row {
    /// True if all four outcomes equal the paper's Table 4 row.
    pub fn matches_paper(&self) -> bool {
        self.valgrind == self.bug.expected.valgrind
            && self.mudflap == self.bug.expected.mudflap
            && self.store_only == self.bug.expected.store_only
            && self.full == self.bug.expected.full
    }
}

fn detected(scheme: &Scheme, src: &str) -> bool {
    scheme
        .run(src, "main", &[])
        .expect("bug program compiles")
        .outcome
        .is_spatial_violation()
}

/// Runs the four bug programs under the four tools.
pub fn run() -> Vec<Row> {
    bugbench::all()
        .into_iter()
        .map(|bug| Row {
            valgrind: detected(&Scheme::Valgrind, bug.source),
            mudflap: detected(&Scheme::Mudflap, bug.source),
            store_only: detected(
                &Scheme::SoftBound(SoftBoundConfig::store_only_shadow()),
                bug.source,
            ),
            full: detected(
                &Scheme::SoftBound(SoftBoundConfig::full_shadow()),
                bug.source,
            ),
            bug,
        })
        .collect()
}

/// Renders Table 4 (measured, with paper expectation check).
pub fn render(rows: &[Row]) -> String {
    let yn = |b: bool| if b { "yes" } else { "no" };
    let mut out = String::new();
    out.push_str("Table 4: BugBench detection efficacy\n\n");
    out.push_str(&format!(
        "{:<11}{:>9}{:>9}{:>7}{:>6}   {}\n",
        "Benchmark", "Valgrind", "Mudflap", "Store", "Full", "matches paper?"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<11}{:>9}{:>9}{:>7}{:>6}   {}\n",
            r.bug.name,
            yn(r.valgrind),
            yn(r.mudflap),
            yn(r.store_only),
            yn(r.full),
            if r.matches_paper() { "yes" } else { "NO" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_exactly() {
        for r in run() {
            assert!(
                r.matches_paper(),
                "{}: measured (vg={}, mf={}, store={}, full={}) expected {:?}",
                r.bug.name,
                r.valgrind,
                r.mudflap,
                r.store_only,
                r.full,
                r.bug.expected
            );
        }
    }
}
