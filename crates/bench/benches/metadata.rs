//! Microbenchmark: metadata facilities of §5.1 — the two-level paged
//! shadow space against the legacy HashMap-backed shadow simulation and
//! the open-hashing table. The paper's instruction-count argument (9 vs
//! 5) is modelled in the facilities' cost accounting; this bench measures
//! the *host-side* data-structure cost, which is what the interpreter's
//! check path actually pays. All accesses go through [`NoopSink`] so the
//! numbers are pure data-structure cost — zero allocation, zero
//! recording, exactly the configuration the VM uses when no cache model
//! is installed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_ir::RtFn;
use sb_vm::{Mem, RtCtx, RuntimeHooks};
use softbound::{
    DynRuntime, HashTableFacility, Meta, MetadataFacility, NoopSink, ShadowHashMapFacility,
    ShadowPages, SoftBoundConfig, SoftBoundRuntime,
};

// Generic (monomorphized) driver: facilities are benchmarked under
// static dispatch, the configuration a production runtime specialized on
// one facility would compile to — the numbers measure the data
// structures, not virtual-call overhead.
fn bench_facility<F: MetadataFacility>(c: &mut Criterion, name: &str, make: impl Fn() -> F) {
    let mut group = c.benchmark_group(format!("metadata/{name}"));
    group.sample_size(20);

    // The pointer-dense pattern: a compact working set of hot slots, the
    // access shape of the Olden kernels where the shadow space wins.
    group.bench_function("store_load_1k_slots", |b| {
        let mut fac = make();
        let mut sink = NoopSink;
        b.iter(|| {
            for i in 0..1000u64 {
                let addr = 0x10000 + (i % 512) * 8;
                fac.store(
                    addr,
                    Meta {
                        base: addr,
                        bound: addr + 64,
                    },
                    &mut sink,
                );
                let m = fac.load(addr, &mut sink);
                black_box(m);
            }
        });
    });

    group.bench_function("scattered_lookups", |b| {
        let mut fac = make();
        let mut sink = NoopSink;
        // Pre-populate with scattered pointer slots.
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 20) & !7;
            fac.store(addr, Meta { base: 1, bound: 2 }, &mut sink);
        }
        b.iter(|| {
            let mut s = 0x12345u64;
            for _ in 0..1000 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (s >> 20) & !7;
                black_box(fac.load(addr, &mut sink));
            }
        });
    });
    group.finish();
}

// Dispatch comparison on the *same* data structure: the paged facility
// monomorphized (what `SoftBoundRuntime<ShadowPages>` compiles to) versus
// behind `Box<dyn MetadataFacility>` (the pre-devirtualization check
// path, kept as `DynRuntime` for the CLI boundary). The gap is pure
// virtual-call overhead — the cost the generic runtime removed.
fn bench_dispatch(c: &mut Criterion) {
    bench_facility(c, "paged_static", ShadowPages::new);
    bench_facility(c, "paged_dyn", || {
        Box::new(ShadowPages::new()) as Box<dyn MetadataFacility>
    });

    // The same comparison one layer up, through the runtime's `rt_call`
    // entry point — the exact sequence the machine executes per
    // instrumented dereference (check + metadata load + store).
    fn rt_round<H: RuntimeHooks>(rt: &mut H, mem: &mut Mem, ctx: &mut RtCtx) -> i64 {
        let mut acc = 0i64;
        for i in 0..1000i64 {
            let addr = 0x10000 + (i % 512) * 8;
            ctx.reset(0);
            rt.rt_call(RtFn::SbMetaStore, &[addr, addr, addr + 64], mem, ctx)
                .expect("store ok");
            ctx.reset(0);
            let m = rt
                .rt_call(RtFn::SbMetaLoad, &[addr], mem, ctx)
                .expect("load ok");
            ctx.reset(0);
            rt.rt_call(
                RtFn::SbCheck { is_store: false },
                &[m[0], m[0], m[1], 8],
                mem,
                ctx,
            )
            .expect("in bounds");
            acc = acc.wrapping_add(m[1]);
        }
        acc
    }
    let cfg = SoftBoundConfig::full_shadow();
    let mut group = c.benchmark_group("metadata/rt_call");
    group.sample_size(20);
    group.bench_function("paged_static", |b| {
        let mut rt = SoftBoundRuntime::new_paged(&cfg);
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        b.iter(|| black_box(rt_round(&mut rt, &mut mem, &mut ctx)));
    });
    group.bench_function("paged_dyn", |b| {
        let mut rt: Box<dyn RuntimeHooks> = Box::new(DynRuntime::new(&cfg));
        let mut mem = Mem::new();
        let mut ctx = RtCtx::default();
        b.iter(|| black_box(rt_round(&mut rt, &mut mem, &mut ctx)));
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_facility(c, "shadow_paged", ShadowPages::new);
    bench_facility(c, "shadow_hashmap", ShadowHashMapFacility::new);
    bench_facility(c, "hash_table", || HashTableFacility::new(16));
}

criterion_group!(metadata, benches, bench_dispatch);
criterion_main!(metadata);
