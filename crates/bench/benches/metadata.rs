//! Microbenchmark: hash-table vs shadow-space metadata facility (§5.1).
//! The paper's instruction-count argument (9 vs 5) is modelled in the
//! facilities' cost accounting; this bench measures the host-side data
//! structure cost for lookups and updates under realistic slot reuse.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use softbound::{HashTableFacility, Meta, MetadataFacility, ShadowSpaceFacility};

fn bench_facility(c: &mut Criterion, name: &str, make: impl Fn() -> Box<dyn MetadataFacility>) {
    let mut group = c.benchmark_group(format!("metadata/{name}"));
    group.sample_size(20);

    group.bench_function("store_load_1k_slots", |b| {
        let mut fac = make();
        let mut cost = 0u64;
        let mut touched = Vec::new();
        b.iter(|| {
            for i in 0..1000u64 {
                let addr = 0x10000 + (i % 512) * 8;
                fac.store(addr, Meta { base: addr, bound: addr + 64 }, &mut cost, &mut touched);
                let m = fac.load(addr, &mut cost, &mut touched);
                black_box(m);
                touched.clear();
            }
            black_box(cost);
        });
    });

    group.bench_function("scattered_lookups", |b| {
        let mut fac = make();
        let mut cost = 0u64;
        let mut touched = Vec::new();
        // Pre-populate with scattered pointer slots.
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (state >> 20) & !7;
            fac.store(addr, Meta { base: 1, bound: 2 }, &mut cost, &mut touched);
        }
        touched.clear();
        b.iter(|| {
            let mut s = 0x12345u64;
            for _ in 0..1000 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (s >> 20) & !7;
                black_box(fac.load(addr, &mut cost, &mut touched));
                touched.clear();
            }
        });
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_facility(c, "shadow_space", || Box::new(ShadowSpaceFacility::new()));
    bench_facility(c, "hash_table", || Box::new(HashTableFacility::new(16)));
}

criterion_group!(metadata, benches);
criterion_main!(metadata);
