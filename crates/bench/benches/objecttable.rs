//! Microbenchmark: the splay-tree object table behind the Jones-Kelly /
//! Mudflap baselines (§2.1 — "often implemented as a splay tree, which
//! can be a performance bottleneck").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_baselines::SplayTree;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("objecttable/splay");
    group.sample_size(20);

    for &n in &[1_000u64, 10_000] {
        group.bench_function(format!("hot_lookups_{n}_objects"), |b| {
            let mut t = SplayTree::new();
            for i in 0..n {
                t.insert(i * 64, 48);
            }
            b.iter(|| {
                // Hot: repeated access to a small working set (splay's
                // best case — and the common case for object tables).
                for i in 0..1000u64 {
                    let addr = (i % 16) * 64 + 10;
                    black_box(t.find_covering(addr));
                }
            });
        });

        group.bench_function(format!("uniform_lookups_{n}_objects"), |b| {
            let mut t = SplayTree::new();
            for i in 0..n {
                t.insert(i * 64, 48);
            }
            let mut s = 0x2545f4914f6cdd1du64;
            b.iter(|| {
                for _ in 0..1000 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let addr = (s >> 33) % (n * 64);
                    black_box(t.find_covering(addr));
                }
            });
        });
    }

    group.bench_function("churn_insert_remove", |b| {
        let mut t = SplayTree::new();
        b.iter(|| {
            for i in 0..1000u64 {
                t.insert(i * 32, 24);
            }
            for i in 0..1000u64 {
                t.remove(i * 32);
            }
        });
    });
    group.finish();
}

criterion_group!(objecttable, benches);
criterion_main!(objecttable);
