//! The amortization proof for the session API: requests/sec on one
//! reused [`Instance`](softbound::Instance) versus building a fresh
//! machine per request (256 MiB shadow-directory reservation, global
//! layout, frame plans re-done every time) versus re-running the whole
//! compile pipeline per request.
//!
//! Two request shapes: a small allocation-and-check "request" where the
//! per-machine setup dominates, and the §6.4 HTTP-like daemon serving a
//! real connection batch.
//!
//! Also the interpreter-lane comparison (PR 6): `reused_instance`
//! drives the pre-decoded execution IR (the engine default), the
//! `tree_walk_reused_instance` lane drives the tree-walk oracle over
//! the same program, and `relower_per_request` re-lowers the flat IR
//! every request — the decode cost `Program` caching amortizes away.
//!
//! ```sh
//! cargo bench -p sb-bench --bench throughput
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_vm::ExecModule;
use softbound::{fleet, Engine, Facility, Lane};

/// A request-sized program: parse-ish arithmetic, a little heap churn,
/// pointer stores (metadata traffic), and a checksum reply.
const SMALL_REQUEST: &str = r#"
    struct item { int id; struct item* next; };
    int main(int n) {
        struct item* head = NULL;
        for (int i = 0; i <= n; i++) {
            struct item* it = (struct item*)malloc(sizeof(struct item));
            it->id = i * 3 + 1;
            it->next = head;
            head = it;
        }
        int sum = 0;
        while (head != NULL) {
            sum += head->id;
            struct item* dead = head;
            head = head->next;
            free(dead);
        }
        return sum;
    }
"#;

fn bench_program(c: &mut Criterion, group_name: &str, src: &str, args: &[i64]) {
    let engine = Engine::new();
    let program = engine.compile(src).expect("compiles");
    let expected = engine.instantiate(&program).run("main", args).ret();
    assert!(expected.is_some(), "request program must finish");

    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);

    // The session path: one machine, one shadow reservation, reset
    // between requests — driving the pre-decoded lane (the default).
    group.bench_function("reused_instance", |b| {
        let mut instance = engine.instantiate(&program);
        b.iter(|| black_box(instance.run("main", args).ret()));
    });

    // The same session topology on the tree-walk oracle lane: the gap
    // to `reused_instance` is pure decode/dispatch, since both lanes
    // execute identical semantics (pinned by the differential suite).
    group.bench_function("tree_walk_reused_instance", |b| {
        let mut instance = engine.clone().lane(Lane::TreeWalk).instantiate(&program);
        b.iter(|| black_box(instance.run("main", args).ret()));
    });

    // What the pre-decoded lane would cost if the lowering were NOT
    // cached on the Program: re-lower the flat IR every request.
    group.bench_function("relower_per_request", |b| {
        let mut instance = engine.instantiate(&program);
        b.iter(|| {
            let exec = ExecModule::lower(program.module());
            black_box(exec.op_count());
            black_box(instance.run("main", args).ret())
        });
    });

    // The pre-session path with the compile amortized: a fresh runtime
    // (fresh 256 MiB directory reservation) and machine per request.
    group.bench_function("fresh_machine_per_request", |b| {
        b.iter(|| black_box(engine.instantiate(&program).run("main", args).ret()));
    });

    // The fully one-shot path: compile + instantiate + run per request.
    group.bench_function("full_pipeline_per_request", |b| {
        b.iter(|| black_box(engine.run_once(src, "main", args).expect("ok").ret()));
    });

    // Fleet lanes: the same shared Program served by a worker pool
    // (one persistent Instance per worker, atomic work-stealing). On a
    // multi-core host the 4-worker lane pulls ahead of
    // `reused_instance`; on a 1-core host it measures pool overhead.
    // The fleet protocol is one scalar argument per request, so these
    // lanes only apply to single-argument request programs.
    if let [arg] = *args {
        for workers in [1usize, 4] {
            group.bench_function(format!("fleet_{workers}_workers_batch8"), |b| {
                let requests = [arg; 8];
                b.iter(|| {
                    let report = fleet::serve(&engine, &program, "main", &requests, workers);
                    assert_eq!(report.results.len(), requests.len());
                    black_box(report.reqs_per_sec)
                });
            });
        }
        // The same pool over the process-wide shared shadow
        // reservation: one 256 MiB directory for every worker instead
        // of one each. Throughput must track the private-facility
        // lanes (the check path reads the worker's overlay lock-free);
        // what changes is the standing reservation, measured in the
        // scaling section of BENCH_softbound.json.
        let shared_engine = engine.clone().facility(Facility::ShadowShared);
        let shared_program = shared_engine.compile(src).expect("compiles");
        for workers in [1usize, 4] {
            group.bench_function(format!("fleet_{workers}_workers_shared_batch8"), |b| {
                let requests = [arg; 8];
                b.iter(|| {
                    let report =
                        fleet::serve(&shared_engine, &shared_program, "main", &requests, workers);
                    assert_eq!(report.results.len(), requests.len());
                    black_box(report.reqs_per_sec)
                });
            });
        }
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_program(c, "throughput/small_request", SMALL_REQUEST, &[32]);
    let daemon = sb_workloads::daemons::all()
        .into_iter()
        .find(|d| d.name == "nhttpd")
        .expect("daemon exists");
    bench_program(c, "throughput/nhttpd_batch", daemon.source, &[2]);
    // String/buffer request shapes from the libc corpus: wrapper-check
    // traffic (strcpy) and block-copy traffic (memcpy) on the shared
    // safe arguments the perf trajectory uses.
    for kernel in ["strcpy", "memcpy"] {
        let k = sb_workloads::libc_kernel_by_name(kernel).expect("kernel exists");
        bench_program(
            c,
            &format!("throughput/libc_{kernel}"),
            k.source,
            &sb_bench::perf::LIBC_ARGS,
        );
    }
}

criterion_group!(throughput, benches);
criterion_main!(throughput);
