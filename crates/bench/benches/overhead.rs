//! Wall-clock companion to Figure 2: execute representative workloads
//! (one array-heavy, one pointer-heavy) under the uninstrumented machine
//! and the four SoftBound configurations.
//!
//! The *reported* Figure 2 numbers come from the cost model
//! (`cargo run -p sb-bench --bin figure2 --release`); this bench exists
//! to keep real executable end-to-end latency visible in CI.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_baselines::Scheme;
use sb_vm::{Machine, MachineConfig, NoRuntime};
use softbound::SoftBoundConfig;

fn bench_workload(c: &mut Criterion, name: &str, arg: i64) {
    let w = sb_workloads::benchmark_by_name(name).expect("workload exists");
    let mut group = c.benchmark_group(format!("overhead/{name}"));
    group.sample_size(10);

    let prog = sb_cir::compile(w.source).expect("compiles");
    let mut base_module = sb_ir::lower(&prog, w.name);
    sb_ir::optimize(&mut base_module, sb_ir::OptLevel::PreInstrument);

    group.bench_function("uninstrumented", |b| {
        b.iter(|| {
            let mut m = Machine::new(&base_module, MachineConfig::default(), NoRuntime);
            black_box(m.run("main", &[arg]).ret())
        });
    });

    for cfg in [
        SoftBoundConfig::full_hash(),
        SoftBoundConfig::full_shadow(),
        SoftBoundConfig::store_only_hash(),
        SoftBoundConfig::store_only_shadow(),
    ] {
        let scheme = Scheme::SoftBound(cfg.clone());
        let module = scheme.compile(w.source).expect("compiles");
        group.bench_function(cfg.label(), |b| {
            b.iter(|| black_box(scheme.run_module(&module, "main", &[arg]).ret()));
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "compress", 1); // array-heavy (SPEC side)
    bench_workload(c, "treeadd", 9); // pointer-heavy (Olden side)
}

criterion_group!(overhead, benches);
criterion_main!(overhead);
