//! Benchmark of the SoftBound transformation pass itself (the paper's
//! pass is "less than 5000 lines of C++"; this measures instrumentation
//! throughput over the evaluation workloads).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_vm::{Machine, MachineConfig, RuntimeHooks};
use sb_workloads::all_benchmarks;
use softbound::{Engine, SoftBoundConfig};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(20);

    // Pre-lower every workload once; measure the pass alone.
    let modules: Vec<(String, sb_ir::Module)> = all_benchmarks()
        .iter()
        .map(|w| {
            let prog = sb_cir::compile(w.source).expect("compiles");
            let mut m = sb_ir::lower(&prog, w.name);
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
            (w.name.to_string(), m)
        })
        .collect();
    let total_insts: usize = modules.iter().map(|(_, m)| m.inst_count()).sum();

    group.bench_function(
        format!("instrument_all_15_workloads_{total_insts}_insts"),
        |b| {
            let cfg = SoftBoundConfig::full_shadow();
            b.iter(|| {
                for (_, m) in &modules {
                    black_box(softbound::instrument(m, &cfg));
                }
            });
        },
    );

    group.bench_function("frontend_compile_treeadd", |b| {
        let src = sb_workloads::benchmark_by_name("treeadd")
            .expect("exists")
            .source;
        b.iter(|| black_box(sb_cir::compile(src).expect("compiles")));
    });

    group.bench_function("lower_and_optimize_treeadd", |b| {
        let src = sb_workloads::benchmark_by_name("treeadd")
            .expect("exists")
            .source;
        let prog = sb_cir::compile(src).expect("compiles");
        b.iter(|| {
            let mut m = sb_ir::lower(&prog, "treeadd");
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
            black_box(m);
        });
    });

    // End-to-end execution of the instrumented module, statically
    // dispatched (runtime and facility monomorphized) versus the fully
    // type-erased configuration (`Machine::new_dyn` over `DynRuntime`):
    // the devirtualization payoff on a pointer-heavy workload.
    let w = sb_workloads::benchmark_by_name("treeadd").expect("exists");
    let cfg = SoftBoundConfig::full_shadow();
    let engine = Engine::new().softbound_config(cfg.clone());
    let program = engine.compile(w.source).expect("compiles");
    group.bench_function("run_protected_treeadd_static", |b| {
        b.iter(|| {
            black_box(
                engine
                    .instantiate(&program)
                    .run("main", &[w.default_arg])
                    .ret(),
            )
        });
    });
    group.bench_function("run_protected_treeadd_dyn", |b| {
        b.iter(|| {
            let hooks: Box<dyn RuntimeHooks> = Box::new(softbound::DynRuntime::new(&cfg));
            let mut machine = Machine::new_dyn(program.module(), MachineConfig::default(), hooks);
            black_box(machine.run("main", &[w.default_arg]).ret())
        });
    });
    group.finish();
}

criterion_group!(transform, benches);
criterion_main!(transform);
