//! Benchmark of the SoftBound transformation pass itself (the paper's
//! pass is "less than 5000 lines of C++"; this measures instrumentation
//! throughput over the evaluation workloads).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_workloads::all_benchmarks;
use softbound::SoftBoundConfig;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(20);

    // Pre-lower every workload once; measure the pass alone.
    let modules: Vec<(String, sb_ir::Module)> = all_benchmarks()
        .iter()
        .map(|w| {
            let prog = sb_cir::compile(w.source).expect("compiles");
            let mut m = sb_ir::lower(&prog, w.name);
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
            (w.name.to_string(), m)
        })
        .collect();
    let total_insts: usize = modules.iter().map(|(_, m)| m.inst_count()).sum();

    group.bench_function(
        format!("instrument_all_15_workloads_{total_insts}_insts"),
        |b| {
            let cfg = SoftBoundConfig::full_shadow();
            b.iter(|| {
                for (_, m) in &modules {
                    black_box(softbound::instrument(m, &cfg));
                }
            });
        },
    );

    group.bench_function("frontend_compile_treeadd", |b| {
        let src = sb_workloads::benchmark_by_name("treeadd")
            .expect("exists")
            .source;
        b.iter(|| black_box(sb_cir::compile(src).expect("compiles")));
    });

    group.bench_function("lower_and_optimize_treeadd", |b| {
        let src = sb_workloads::benchmark_by_name("treeadd")
            .expect("exists")
            .source;
        let prog = sb_cir::compile(src).expect("compiles");
        b.iter(|| {
            let mut m = sb_ir::lower(&prog, "treeadd");
            sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
            black_box(m);
        });
    });
    group.finish();
}

criterion_group!(transform, benches);
criterion_main!(transform);
