//! Lowering from the typed HIR (`sb-cir`) to the register-machine IR.
//!
//! Design notes that matter for fidelity to the paper:
//!
//! * **Register promotion happens here.** Scalar locals whose address is
//!   never taken are mapped straight to registers (no `Alloca`, no
//!   loads/stores). This mirrors §6.1: SoftBound instruments *after*
//!   LLVM's optimizations, so register promotion has already removed most
//!   scalar memory traffic, and only "real" memory operations remain to be
//!   checked.
//! * **Field GEPs are marked.** Address computations that enter a struct
//!   field carry `field_size`, which is where the SoftBound pass shrinks
//!   bounds (§3.1) — this is what catches the §2.1 sub-object overflow.
//! * **The pointer layout is honored.** All sizes/offsets come from the
//!   program's [`TypeTable`], so lowering a fat-pointer program produces
//!   24-byte pointer slots automatically.

use crate::ir::*;
use sb_cir::hir::{
    self, ArithOp as HArith, Builtin, CallTarget, CastKind, CmpOp as HCmp, ConstItem, Expr,
    ExprKind, LocalId, LocalInit, Place, Program, Stmt, UnaryOp,
};
use sb_cir::types::{IntKind, Ty, TypeTable};
use std::collections::HashMap;

/// Lowers a type-checked program to an IR module.
///
/// # Panics
///
/// Panics on internal invariant violations only; all user-facing errors are
/// rejected by the type checker first.
pub fn lower(prog: &Program, module_name: &str) -> Module {
    let mut module = Module {
        name: module_name.to_owned(),
        ..Module::default()
    };

    // Globals first (contiguous layout order), then interned strings.
    let mut global_ids: HashMap<String, GlobalId> = HashMap::new();
    for g in &prog.globals {
        let id = GlobalId(module.globals.len() as u32);
        global_ids.insert(g.name.clone(), id);
        module.globals.push(Global {
            name: g.name.clone(),
            size: prog.types.size_of(&g.ty),
            align: prog.types.align_of(&g.ty).max(1),
            init: Vec::new(), // filled after ids are known
            ptr_slots: ptr_slots_of(&g.ty, &prog.types),
        });
    }
    let mut str_gids = Vec::with_capacity(prog.strings.len());
    for (i, s) in prog.strings.iter().enumerate() {
        let id = GlobalId(module.globals.len() as u32);
        str_gids.push(id);
        let mut bytes = s.clone();
        bytes.push(0);
        module.globals.push(Global {
            name: format!(".str.{i}"),
            size: bytes.len() as u64,
            align: 1,
            init: vec![(0, GInit::Bytes(bytes))],
            ptr_slots: Vec::new(),
        });
    }

    // Function ids (defined and external, in program order).
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();
    for f in &prog.funcs {
        func_ids.insert(f.name.clone(), FuncId(func_ids.len() as u32));
    }

    // Now resolve global initializers.
    for (gi, g) in prog.globals.iter().enumerate() {
        let mut init = Vec::new();
        for (off, item) in &g.init {
            let gin = match item {
                ConstItem::Int { value, size } => {
                    GInit::Bytes(value.to_le_bytes()[..*size as usize].to_vec())
                }
                ConstItem::Str(sid) => GInit::GlobalAddr {
                    id: str_gids[sid.0 as usize],
                    offset: 0,
                },
                ConstItem::GlobalAddr { name, offset } => GInit::GlobalAddr {
                    id: global_ids[name],
                    offset: *offset,
                },
                ConstItem::FuncAddr(name) => GInit::FuncAddr(func_ids[name]),
            };
            init.push((*off, gin));
        }
        module.globals[gi].init = init;
    }

    // Lower every function.
    for f in &prog.funcs {
        let lowered = FnCx::new(prog, &func_ids, &global_ids, &str_gids).lower_fn(f);
        module.funcs.push(lowered);
    }
    module
}

/// Byte offsets of all pointer slots inside a value of type `ty`.
pub fn ptr_slots_of(ty: &Ty, types: &TypeTable) -> Vec<u64> {
    let mut out = Vec::new();
    walk_ptr_slots(ty, types, 0, &mut out);
    out
}

fn walk_ptr_slots(ty: &Ty, types: &TypeTable, base: u64, out: &mut Vec<u64>) {
    match ty {
        Ty::Ptr(_) => out.push(base),
        Ty::Array(e, n) => {
            let esz = types.size_of(e);
            for i in 0..*n {
                walk_ptr_slots(e, types, base + i * esz, out);
            }
        }
        Ty::Struct(id) => {
            for f in types.fields(*id) {
                walk_ptr_slots(&f.ty, types, base + f.offset, out);
            }
        }
        _ => {}
    }
}

/// Where a local lives after lowering.
#[derive(Clone, Copy)]
enum Slot {
    /// Promoted to a register.
    Reg(RegId),
    /// Stack slot; the register holds the alloca'd address.
    Mem(RegId),
}

struct LoopCtx {
    break_to: BlockId,
    continue_to: BlockId,
}

struct FnCx<'a> {
    prog: &'a Program,
    func_ids: &'a HashMap<String, FuncId>,
    global_ids: &'a HashMap<String, GlobalId>,
    str_gids: &'a [GlobalId],
    f: Function,
    cur: BlockId,
    locals: Vec<Slot>,
    loops: Vec<LoopCtx>,
}

impl<'a> FnCx<'a> {
    fn new(
        prog: &'a Program,
        func_ids: &'a HashMap<String, FuncId>,
        global_ids: &'a HashMap<String, GlobalId>,
        str_gids: &'a [GlobalId],
    ) -> Self {
        FnCx {
            prog,
            func_ids,
            global_ids,
            str_gids,
            f: Function {
                name: String::new(),
                params: Vec::new(),
                param_kinds: Vec::new(),
                ret_kinds: Vec::new(),
                reg_kinds: Vec::new(),
                blocks: Vec::new(),
                vararg: false,
                defined: true,
            },
            cur: BlockId(0),
            locals: Vec::new(),
            loops: Vec::new(),
        }
    }

    fn types(&self) -> &TypeTable {
        &self.prog.types
    }

    fn emit(&mut self, inst: Inst) {
        self.f.blocks[self.cur.0 as usize].insts.push(inst);
    }

    fn cur_terminated(&self) -> bool {
        self.f.blocks[self.cur.0 as usize]
            .insts
            .last()
            .map(Inst::is_terminator)
            .unwrap_or(false)
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn kind_of_ty(ty: &Ty) -> RegKind {
        if ty.is_ptr() {
            RegKind::Ptr
        } else {
            RegKind::Int
        }
    }

    fn ret_kinds_of(ty: &Ty) -> Vec<RegKind> {
        match ty {
            Ty::Void => Vec::new(),
            t => vec![Self::kind_of_ty(t)],
        }
    }

    fn lower_fn(mut self, hf: &hir::FuncDef) -> Function {
        self.f.name = hf.name.clone();
        self.f.vararg = hf.sig.vararg;
        self.f.ret_kinds = Self::ret_kinds_of(&hf.sig.ret);
        self.f.defined = hf.defined;
        if !hf.defined {
            self.f.param_kinds = hf.sig.params.iter().map(Self::kind_of_ty).collect();
            return self.f;
        }
        self.f.new_block(); // entry

        // Parameter registers.
        for ty in &hf.sig.params {
            let r = self.f.new_reg(Self::kind_of_ty(ty));
            self.f.params.push(r);
            self.f.param_kinds.push(Self::kind_of_ty(ty));
        }

        // Local slots: scalars not address-taken are promoted to registers;
        // everything else gets an alloca. Frame layout follows alloca
        // emission order (lower addresses first): plain locals in
        // declaration order, then spilled parameters — mirroring cdecl,
        // where arguments live above the locals (and above the saved
        // frame pointer / return address, which the VM places after the
        // last alloca). The Wilander stack attacks rely on this layout.
        let nparams = hf.sig.params.len();
        self.locals = vec![Slot::Reg(RegId(u32::MAX)); hf.locals.len()];
        let mut spills: Vec<usize> = Vec::new();
        for (i, l) in hf.locals.iter().enumerate() {
            let is_param = i < nparams;
            let needs_mem = l.addr_taken || matches!(l.ty, Ty::Array(..) | Ty::Struct(_));
            if needs_mem && is_param {
                spills.push(i); // emitted after plain locals
            } else if needs_mem {
                let addr = self.emit_alloca(l);
                self.locals[i] = Slot::Mem(addr);
            } else if is_param {
                self.locals[i] = Slot::Reg(self.f.params[i]);
            } else {
                let r = self.f.new_reg(Self::kind_of_ty(&l.ty));
                self.locals[i] = Slot::Reg(r);
            }
        }
        for i in spills {
            let l = &hf.locals[i];
            let ty = l.ty.clone();
            let addr = self.emit_alloca(&hf.locals[i]);
            let mem = self.mem_ty(&ty);
            self.emit(Inst::Store {
                mem,
                addr: addr.into(),
                value: self.f.params[i].into(),
            });
            self.locals[i] = Slot::Mem(addr);
        }

        for st in &hf.body {
            self.stmt(st, hf);
        }

        // Finalize: terminate every dangling block with a default return.
        let default_ret = match self.f.ret_kinds.len() {
            0 => Inst::Ret { vals: vec![] },
            _ => Inst::Ret {
                vals: vec![Value::Const(0)],
            },
        };
        for b in &mut self.f.blocks {
            if !b.insts.last().map(Inst::is_terminator).unwrap_or(false) {
                b.insts.push(default_ret.clone());
            }
        }
        self.f
    }

    fn emit_alloca(&mut self, l: &sb_cir::hir::Local) -> RegId {
        let addr = self.f.new_reg(RegKind::Ptr);
        let info = AllocaInfo {
            name: l.name.clone(),
            size: self.types().size_of(&l.ty),
            align: self.types().align_of(&l.ty).max(1),
            ptr_slots: ptr_slots_of(&l.ty, self.types()),
        };
        self.emit(Inst::Alloca { dst: addr, info });
        addr
    }

    fn mem_ty(&self, ty: &Ty) -> MemTy {
        match ty {
            Ty::Int(IntKind::I8) => MemTy::I8,
            Ty::Int(IntKind::U8) => MemTy::U8,
            Ty::Int(IntKind::I16) => MemTy::I16,
            Ty::Int(IntKind::U16) => MemTy::U16,
            Ty::Int(IntKind::I32) => MemTy::I32,
            Ty::Int(IntKind::U32) => MemTy::U32,
            Ty::Int(IntKind::I64 | IntKind::U64) => MemTy::I64,
            Ty::Ptr(_) => MemTy::Ptr,
            t => panic!("no memory type for aggregate {t:?}"),
        }
    }

    // ----------------------------------------------------------- statements

    fn stmt(&mut self, st: &Stmt, hf: &hir::FuncDef) {
        if self.cur_terminated() {
            // Dead code after return/break — skip (C allows it).
            return;
        }
        match st {
            Stmt::Expr(e) => {
                let _ = self.value(e);
            }
            Stmt::DeclInit { id, init } => self.decl_init(*id, init.as_ref(), hf),
            Stmt::Block(b) => {
                for s in b {
                    self.stmt(s, hf);
                }
            }
            Stmt::If { cond, then, els } => {
                let c = self.value(cond);
                let then_b = self.f.new_block();
                let else_b = self.f.new_block();
                let end_b = self.f.new_block();
                self.emit(Inst::Br {
                    cond: c,
                    then_to: then_b,
                    else_to: else_b,
                });
                self.switch_to(then_b);
                for s in then {
                    self.stmt(s, hf);
                }
                if !self.cur_terminated() {
                    self.emit(Inst::Jmp { to: end_b });
                }
                self.switch_to(else_b);
                for s in els {
                    self.stmt(s, hf);
                }
                if !self.cur_terminated() {
                    self.emit(Inst::Jmp { to: end_b });
                }
                self.switch_to(end_b);
            }
            Stmt::While { cond, body } => {
                let head = self.f.new_block();
                let body_b = self.f.new_block();
                let end = self.f.new_block();
                self.emit(Inst::Jmp { to: head });
                self.switch_to(head);
                let c = self.value(cond);
                self.emit(Inst::Br {
                    cond: c,
                    then_to: body_b,
                    else_to: end,
                });
                self.switch_to(body_b);
                self.loops.push(LoopCtx {
                    break_to: end,
                    continue_to: head,
                });
                for s in body {
                    self.stmt(s, hf);
                }
                self.loops.pop();
                if !self.cur_terminated() {
                    self.emit(Inst::Jmp { to: head });
                }
                self.switch_to(end);
            }
            Stmt::DoWhile { cond, body } => {
                let body_b = self.f.new_block();
                let cond_b = self.f.new_block();
                let end = self.f.new_block();
                self.emit(Inst::Jmp { to: body_b });
                self.switch_to(body_b);
                self.loops.push(LoopCtx {
                    break_to: end,
                    continue_to: cond_b,
                });
                for s in body {
                    self.stmt(s, hf);
                }
                self.loops.pop();
                if !self.cur_terminated() {
                    self.emit(Inst::Jmp { to: cond_b });
                }
                self.switch_to(cond_b);
                let c = self.value(cond);
                self.emit(Inst::Br {
                    cond: c,
                    then_to: body_b,
                    else_to: end,
                });
                self.switch_to(end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                for s in init {
                    self.stmt(s, hf);
                }
                let head = self.f.new_block();
                let body_b = self.f.new_block();
                let step_b = self.f.new_block();
                let end = self.f.new_block();
                self.emit(Inst::Jmp { to: head });
                self.switch_to(head);
                match cond {
                    Some(c) => {
                        let cv = self.value(c);
                        self.emit(Inst::Br {
                            cond: cv,
                            then_to: body_b,
                            else_to: end,
                        });
                    }
                    None => self.emit(Inst::Jmp { to: body_b }),
                }
                self.switch_to(body_b);
                self.loops.push(LoopCtx {
                    break_to: end,
                    continue_to: step_b,
                });
                for s in body {
                    self.stmt(s, hf);
                }
                self.loops.pop();
                if !self.cur_terminated() {
                    self.emit(Inst::Jmp { to: step_b });
                }
                self.switch_to(step_b);
                if let Some(sexpr) = step {
                    let _ = self.value(sexpr);
                }
                self.emit(Inst::Jmp { to: head });
                self.switch_to(end);
            }
            Stmt::Return(None) => self.emit(Inst::Ret { vals: vec![] }),
            Stmt::Return(Some(e)) => {
                let v = self.value(e);
                self.emit(Inst::Ret { vals: vec![v] });
            }
            Stmt::Break => {
                let to = self
                    .loops
                    .last()
                    .expect("typeck enforces loop context")
                    .break_to;
                self.emit(Inst::Jmp { to });
            }
            Stmt::Continue => {
                let to = self
                    .loops
                    .last()
                    .expect("typeck enforces loop context")
                    .continue_to;
                self.emit(Inst::Jmp { to });
            }
        }
    }

    fn decl_init(&mut self, id: LocalId, init: Option<&LocalInit>, hf: &hir::FuncDef) {
        let slot = self.locals[id.0 as usize];
        let ty = hf.locals[id.0 as usize].ty.clone();
        match init {
            None => {}
            Some(LocalInit::Scalar(e)) => {
                let v = self.value(e);
                match slot {
                    Slot::Reg(r) => self.emit(Inst::Mov { dst: r, src: v }),
                    Slot::Mem(addr) => {
                        let mem = self.mem_ty(&ty);
                        self.emit(Inst::Store {
                            mem,
                            addr: addr.into(),
                            value: v,
                        });
                    }
                }
            }
            Some(LocalInit::Str(bytes)) => {
                let Slot::Mem(addr) = slot else {
                    panic!("string init needs a memory slot")
                };
                for (i, b) in bytes.iter().enumerate() {
                    let dst = self.f.new_reg(RegKind::Ptr);
                    self.emit(Inst::Gep {
                        dst,
                        base: addr.into(),
                        index: Value::Const(0),
                        scale: 0,
                        offset: i as i64,
                        field_size: None,
                    });
                    self.emit(Inst::Store {
                        mem: MemTy::I8,
                        addr: dst.into(),
                        value: Value::Const(*b as i64),
                    });
                }
            }
            Some(LocalInit::List(items)) => {
                let Slot::Mem(addr) = slot else {
                    panic!("list init needs a memory slot")
                };
                // Zero the whole object first (C zero-fills the rest),
                // then apply the explicit items.
                let size = self.types().size_of(&ty);
                self.emit(Inst::Call {
                    dsts: vec![],
                    callee: Callee::Builtin(Builtin::Memset),
                    args: vec![addr.into(), Value::Const(0), Value::Const(size as i64)],
                    ptr_hint: false,
                    wrapped: false,
                });
                for (off, e) in items {
                    let v = self.value(e);
                    let dst = self.f.new_reg(RegKind::Ptr);
                    self.emit(Inst::Gep {
                        dst,
                        base: addr.into(),
                        index: Value::Const(0),
                        scale: 0,
                        offset: *off as i64,
                        field_size: None,
                    });
                    let mem = self.mem_ty(&e.ty);
                    self.emit(Inst::Store {
                        mem,
                        addr: dst.into(),
                        value: v,
                    });
                }
            }
        }
    }

    // ---------------------------------------------------------- expressions

    fn value(&mut self, e: &Expr) -> Value {
        match &e.kind {
            ExprKind::Int(v) => Value::Const(*v),
            ExprKind::NullPtr => Value::NULL,
            ExprKind::Str(sid) => Value::GlobalAddr {
                id: self.str_gids[sid.0 as usize],
                offset: 0,
            },
            ExprKind::FuncAddr(name) => Value::FuncAddr(self.func_ids[name]),
            ExprKind::Load(place) => self.load_place(place),
            ExprKind::AddrOf(place) => self.place_addr(place),
            ExprKind::Unary(op, inner) => {
                let v = self.value(inner);
                let k = inner.ty.int_kind().unwrap_or(IntKind::I64);
                let dst = self.f.new_reg(RegKind::Int);
                match op {
                    UnaryOp::Neg => self.emit(Inst::Bin {
                        dst,
                        op: HArith::Sub,
                        k,
                        lhs: Value::Const(0),
                        rhs: v,
                    }),
                    UnaryOp::BitNot => self.emit(Inst::Bin {
                        dst,
                        op: HArith::Xor,
                        k,
                        lhs: v,
                        rhs: Value::Const(-1),
                    }),
                    UnaryOp::Not => self.emit(Inst::Cmp {
                        dst,
                        op: HCmp::Eq,
                        k,
                        lhs: v,
                        rhs: Value::Const(0),
                    }),
                }
                dst.into()
            }
            ExprKind::Binary { op, k, lhs, rhs } => {
                let l = self.value(lhs);
                let r = self.value(rhs);
                let dst = self.f.new_reg(RegKind::Int);
                self.emit(Inst::Bin {
                    dst,
                    op: *op,
                    k: *k,
                    lhs: l,
                    rhs: r,
                });
                dst.into()
            }
            ExprKind::PtrAdd {
                ptr,
                index,
                elem_size,
            } => {
                let p = self.value(ptr);
                let i = self.value(index);
                let dst = self.f.new_reg(RegKind::Ptr);
                self.emit(Inst::Gep {
                    dst,
                    base: p,
                    index: i,
                    scale: *elem_size,
                    offset: 0,
                    field_size: None,
                });
                dst.into()
            }
            ExprKind::PtrDiff {
                lhs,
                rhs,
                elem_size,
            } => {
                let l = self.value(lhs);
                let r = self.value(rhs);
                let diff = self.f.new_reg(RegKind::Int);
                self.emit(Inst::Bin {
                    dst: diff,
                    op: HArith::Sub,
                    k: IntKind::I64,
                    lhs: l,
                    rhs: r,
                });
                if *elem_size <= 1 {
                    return diff.into();
                }
                let dst = self.f.new_reg(RegKind::Int);
                self.emit(Inst::Bin {
                    dst,
                    op: HArith::Div,
                    k: IntKind::I64,
                    lhs: diff.into(),
                    rhs: Value::Const(*elem_size as i64),
                });
                dst.into()
            }
            ExprKind::Cmp {
                op,
                signed,
                lhs,
                rhs,
            } => {
                let k =
                    lhs.ty
                        .int_kind()
                        .unwrap_or(if *signed { IntKind::I64 } else { IntKind::U64 });
                let l = self.value(lhs);
                let r = self.value(rhs);
                let dst = self.f.new_reg(RegKind::Int);
                let hop = match op {
                    hir::CmpOp::Eq => HCmp::Eq,
                    hir::CmpOp::Ne => HCmp::Ne,
                    hir::CmpOp::Lt => HCmp::Lt,
                    hir::CmpOp::Le => HCmp::Le,
                    hir::CmpOp::Gt => HCmp::Gt,
                    hir::CmpOp::Ge => HCmp::Ge,
                };
                self.emit(Inst::Cmp {
                    dst,
                    op: hop,
                    k,
                    lhs: l,
                    rhs: r,
                });
                dst.into()
            }
            ExprKind::Logical { and, lhs, rhs } => {
                let dst = self.f.new_reg(RegKind::Int);
                let l = self.value(lhs);
                let rhs_b = self.f.new_block();
                let short_b = self.f.new_block();
                let end = self.f.new_block();
                if *and {
                    self.emit(Inst::Br {
                        cond: l,
                        then_to: rhs_b,
                        else_to: short_b,
                    });
                } else {
                    self.emit(Inst::Br {
                        cond: l,
                        then_to: short_b,
                        else_to: rhs_b,
                    });
                }
                self.switch_to(short_b);
                self.emit(Inst::Mov {
                    dst,
                    src: Value::Const(if *and { 0 } else { 1 }),
                });
                self.emit(Inst::Jmp { to: end });
                self.switch_to(rhs_b);
                let r = self.value(rhs);
                let rk = rhs.ty.int_kind().unwrap_or(IntKind::U64);
                self.emit(Inst::Cmp {
                    dst,
                    op: HCmp::Ne,
                    k: rk,
                    lhs: r,
                    rhs: Value::Const(0),
                });
                self.emit(Inst::Jmp { to: end });
                self.switch_to(end);
                dst.into()
            }
            ExprKind::Cond { cond, then, els } => {
                let kind = Self::kind_of_ty(&e.ty);
                let dst = self.f.new_reg(kind);
                let c = self.value(cond);
                let then_b = self.f.new_block();
                let else_b = self.f.new_block();
                let end = self.f.new_block();
                self.emit(Inst::Br {
                    cond: c,
                    then_to: then_b,
                    else_to: else_b,
                });
                self.switch_to(then_b);
                let tv = self.value(then);
                self.emit(Inst::Mov { dst, src: tv });
                self.emit(Inst::Jmp { to: end });
                self.switch_to(else_b);
                let ev = self.value(els);
                self.emit(Inst::Mov { dst, src: ev });
                self.emit(Inst::Jmp { to: end });
                self.switch_to(end);
                dst.into()
            }
            ExprKind::Assign { place, value } => {
                let v = self.value(value);
                self.store_place(place, v);
                v
            }
            ExprKind::IncDec {
                place,
                inc,
                post,
                elem_size,
            } => {
                let old = self.load_place(place);
                let new = if *elem_size == 0 {
                    let k = place.ty().int_kind().expect("int incdec");
                    let dst = self.f.new_reg(RegKind::Int);
                    let op = if *inc { HArith::Add } else { HArith::Sub };
                    self.emit(Inst::Bin {
                        dst,
                        op,
                        k,
                        lhs: old,
                        rhs: Value::Const(1),
                    });
                    Value::Reg(dst)
                } else {
                    let dst = self.f.new_reg(RegKind::Ptr);
                    let step = if *inc { 1 } else { -1 };
                    self.emit(Inst::Gep {
                        dst,
                        base: old,
                        index: Value::Const(step),
                        scale: *elem_size,
                        offset: 0,
                        field_size: None,
                    });
                    Value::Reg(dst)
                };
                // `old` may name a register that the store below mutates
                // (promoted locals): copy it first for post-inc results.
                let result = if *post {
                    let kind = Self::kind_of_ty(place.ty());
                    let keep = self.f.new_reg(kind);
                    self.emit(Inst::Mov {
                        dst: keep,
                        src: old,
                    });
                    Value::Reg(keep)
                } else {
                    new
                };
                self.store_place(place, new);
                result
            }
            ExprKind::Call { target, args } => self.call(target, args, &e.ty),
            ExprKind::Cast { kind, arg } => {
                let v = self.value(arg);
                match kind {
                    CastKind::IntToInt(k) | CastKind::PtrToInt(k) => {
                        let dst = self.f.new_reg(RegKind::Int);
                        self.emit(Inst::Cast { dst, k: *k, src: v });
                        dst.into()
                    }
                    CastKind::IntToPtr => {
                        // Moves the raw integer into a pointer register; the
                        // SoftBound pass will give it NULL bounds (§5.2).
                        let dst = self.f.new_reg(RegKind::Ptr);
                        self.emit(Inst::Mov { dst, src: v });
                        dst.into()
                    }
                    CastKind::PtrToPtr => v, // bounds are inherited; no-op
                }
            }
        }
    }

    fn call(&mut self, target: &CallTarget, args: &[Expr], ret_ty: &Ty) -> Value {
        let mut avs = Vec::with_capacity(args.len());
        for a in args {
            let mut v = self.value(a);
            // Materialize pointer-typed constant arguments (e.g. NULL) into
            // pointer registers so instrumentation passes can identify every
            // pointer argument of a call by register kind — required for
            // metadata-argument alignment at indirect call sites (§3.3).
            if a.ty.is_ptr() && matches!(v, Value::Const(_)) {
                let r = self.f.new_reg(RegKind::Ptr);
                self.emit(Inst::Mov { dst: r, src: v });
                v = r.into();
            }
            avs.push(v);
        }
        let ptr_hint = match target {
            CallTarget::Builtin(Builtin::Memcpy) => args
                .iter()
                .take(2)
                .any(|a| arg_points_to_ptrs(a, self.types())),
            CallTarget::Builtin(Builtin::Free) => args
                .first()
                .map(|a| arg_points_to_ptrs(a, self.types()))
                .unwrap_or(false),
            _ => false,
        };
        let callee = match target {
            CallTarget::Direct(name) => Callee::Direct(self.func_ids[name]),
            CallTarget::Builtin(b) => Callee::Builtin(*b),
            CallTarget::Indirect(ptr) => {
                let v = self.value(ptr);
                Callee::Indirect(v)
            }
        };
        let dsts = match ret_ty {
            Ty::Void => vec![],
            t => vec![self.f.new_reg(Self::kind_of_ty(t))],
        };
        let result = dsts.first().copied();
        self.emit(Inst::Call {
            dsts,
            callee,
            args: avs,
            ptr_hint,
            wrapped: false,
        });
        result.map(Value::Reg).unwrap_or(Value::Const(0))
    }

    // --------------------------------------------------------------- places

    /// Loads the value stored at a place.
    fn load_place(&mut self, place: &Place) -> Value {
        match place {
            Place::Var { id, .. } => match self.locals[id.0 as usize] {
                Slot::Reg(r) => r.into(),
                Slot::Mem(addr) => {
                    let mem = self.mem_ty(place.ty());
                    let kind = Self::kind_of_ty(place.ty());
                    let dst = self.f.new_reg(kind);
                    self.emit(Inst::Load {
                        dst,
                        mem,
                        addr: addr.into(),
                    });
                    dst.into()
                }
            },
            _ => {
                let addr = self.place_addr(place);
                let mem = self.mem_ty(place.ty());
                let kind = Self::kind_of_ty(place.ty());
                let dst = self.f.new_reg(kind);
                self.emit(Inst::Load { dst, mem, addr });
                dst.into()
            }
        }
    }

    /// Stores `v` into a place.
    fn store_place(&mut self, place: &Place, v: Value) {
        match place {
            Place::Var { id, .. } => match self.locals[id.0 as usize] {
                Slot::Reg(r) => self.emit(Inst::Mov { dst: r, src: v }),
                Slot::Mem(addr) => {
                    let mem = self.mem_ty(place.ty());
                    self.emit(Inst::Store {
                        mem,
                        addr: addr.into(),
                        value: v,
                    });
                }
            },
            _ => {
                let addr = self.place_addr(place);
                let mem = self.mem_ty(place.ty());
                self.emit(Inst::Store {
                    mem,
                    addr,
                    value: v,
                });
            }
        }
    }

    /// Computes the address of a place. Field steps emit marked GEPs so the
    /// SoftBound pass can shrink bounds to the sub-object.
    fn place_addr(&mut self, place: &Place) -> Value {
        match place {
            Place::Var { id, .. } => match self.locals[id.0 as usize] {
                Slot::Mem(addr) => addr.into(),
                Slot::Reg(_) => panic!("address of promoted register (typeck marks addr_taken)"),
            },
            Place::Global { name, .. } => Value::GlobalAddr {
                id: self.global_ids[name],
                offset: 0,
            },
            Place::Deref { ptr, .. } => self.value(ptr),
            Place::Index { base, index, elem } => {
                let b = self.place_addr(base);
                let i = self.value(index);
                let dst = self.f.new_reg(RegKind::Ptr);
                self.emit(Inst::Gep {
                    dst,
                    base: b,
                    index: i,
                    scale: self.types().size_of(elem),
                    offset: 0,
                    field_size: None,
                });
                dst.into()
            }
            Place::Field {
                base, offset, ty, ..
            } => {
                let b = self.place_addr(base);
                let dst = self.f.new_reg(RegKind::Ptr);
                self.emit(Inst::Gep {
                    dst,
                    base: b,
                    index: Value::Const(0),
                    scale: 0,
                    offset: *offset as i64,
                    field_size: Some(self.types().size_of(ty)),
                });
                dst.into()
            }
        }
    }
}

/// True if an argument expression is (after peeling pointer casts) a
/// pointer to memory that itself contains pointers — the paper's memcpy
/// inference heuristic (§5.2).
fn arg_points_to_ptrs(e: &Expr, types: &TypeTable) -> bool {
    let mut cur = e;
    while let ExprKind::Cast {
        kind: CastKind::PtrToPtr,
        arg,
    } = &cur.kind
    {
        cur = arg;
    }
    match &cur.ty {
        Ty::Ptr(pointee) => pointee.contains_ptr(types),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_src(src: &str) -> Module {
        let prog = sb_cir::compile(src).expect("compiles");
        lower(&prog, "test")
    }

    #[test]
    fn lowers_simple_function() {
        let m = lower_src("int add(int a, int b) { return a + b; }");
        let f = m.func("add").expect("exists");
        assert_eq!(f.params.len(), 2);
        assert!(f.inst_count() >= 2);
    }

    #[test]
    fn promoted_scalars_have_no_alloca() {
        let m = lower_src("int f() { int x = 1; int y = 2; return x + y; }");
        let f = m.func("f").expect("exists");
        let allocas = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Alloca { .. }))
            .count();
        assert_eq!(
            allocas, 0,
            "register promotion should remove scalar allocas"
        );
    }

    #[test]
    fn addr_taken_scalar_gets_alloca() {
        let m = lower_src("int f() { int x = 1; int* p = &x; return *p; }");
        let f = m.func("f").expect("exists");
        let allocas = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Alloca { .. }))
            .count();
        assert_eq!(allocas, 1);
    }

    #[test]
    fn field_geps_are_marked() {
        let m = lower_src(
            r#"
            struct node { char str[8]; void (*func)(void); };
            char* f(struct node* n) { return &n->str[2]; }
        "#,
        );
        let f = m.func("f").expect("exists");
        let field_geps: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Gep {
                    field_size: Some(sz),
                    ..
                } => Some(*sz),
                _ => None,
            })
            .collect();
        assert_eq!(
            field_geps,
            vec![8],
            "the str[8] field gep must carry its size"
        );
    }

    #[test]
    fn pointer_loads_use_ptr_memty() {
        let m = lower_src("int* f(int** pp) { return *pp; }");
        let f = m.func("f").expect("exists");
        let has_ptr_load = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Load {
                    mem: MemTy::Ptr,
                    ..
                }
            )
        });
        assert!(has_ptr_load);
    }

    #[test]
    fn string_literals_become_globals() {
        let m = lower_src(r#"char* greet() { return "hello"; }"#);
        let s = m
            .globals
            .iter()
            .find(|g| g.name.starts_with(".str."))
            .expect("string global");
        assert_eq!(s.size, 6); // "hello" + NUL
    }

    #[test]
    fn global_ptr_slots_recorded() {
        let m = lower_src(
            r#"
            struct pair { char* a; long n; char* b; };
            struct pair g;
        "#,
        );
        let g = m.globals.iter().find(|g| g.name == "g").expect("global g");
        assert_eq!(g.ptr_slots, vec![0, 16]);
    }

    #[test]
    fn global_initializers_resolve() {
        let m = lower_src(
            r#"
            int x = 42;
            int* px = &x;
            char* msg = "hi";
            void handler(void) { }
            void (*h)(void) = handler;
        "#,
        );
        let px = m.globals.iter().find(|g| g.name == "px").expect("px");
        assert!(matches!(px.init[0].1, GInit::GlobalAddr { .. }));
        let h = m.globals.iter().find(|g| g.name == "h").expect("h");
        assert!(matches!(h.init[0].1, GInit::FuncAddr(_)));
    }

    #[test]
    fn memcpy_ptr_hint() {
        let m = lower_src(
            r#"
            struct holder { char* p; };
            void copy_ptrs(struct holder* d, struct holder* s) {
                memcpy(d, s, sizeof(struct holder));
            }
            void copy_bytes(char* d, char* s) { memcpy(d, s, 8); }
        "#,
        );
        let hints: Vec<bool> = m
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter_map(|i| match i {
                Inst::Call {
                    callee: Callee::Builtin(Builtin::Memcpy),
                    ptr_hint,
                    ..
                } => Some(*ptr_hint),
                _ => None,
            })
            .collect();
        assert_eq!(hints, vec![true, false]);
    }

    #[test]
    fn control_flow_blocks_terminated() {
        let m = lower_src(
            r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i == 3) continue;
                    if (i == 7) break;
                    s += i;
                }
                while (s > 10) s -= 2;
                return s;
            }
        "#,
        );
        let f = m.func("f").expect("exists");
        for (bi, b) in f.blocks.iter().enumerate() {
            assert!(
                b.insts.last().map(Inst::is_terminator).unwrap_or(false),
                "block {bi} not terminated"
            );
        }
    }

    #[test]
    fn ptr_returning_function_ret_kind() {
        let m = lower_src("char* id(char* p) { return p; }");
        let f = m.func("id").expect("exists");
        assert_eq!(f.ret_kinds, vec![RegKind::Ptr]);
        assert_eq!(f.param_kinds, vec![RegKind::Ptr]);
    }

    #[test]
    fn external_function_lowered_as_declaration() {
        let m = lower_src(
            "int external_helper(char* p); int main() { return external_helper(\"x\"); }",
        );
        let f = m.func("external_helper").expect("exists");
        assert!(!f.defined);
        assert_eq!(f.param_kinds, vec![RegKind::Ptr]);
    }

    #[test]
    fn post_increment_returns_old_value() {
        // Exercised behaviorally in the VM tests; here just check shape.
        let m = lower_src("int f() { int i = 5; int j = i++; return j * 10 + i; }");
        assert!(m.func("f").is_some());
    }
}
