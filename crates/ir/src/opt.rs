//! A small optimizer pipeline.
//!
//! The paper applies SoftBound *after* LLVM's optimizations and re-runs
//! them afterwards (§6.1). We mirror that pipeline shape:
//!
//! * [`OptLevel::PreInstrument`] — run on freshly lowered IR: constant
//!   folding, block-local copy propagation, dead-code elimination
//!   (including side-effect-free loads), and CFG cleanup.
//! * [`OptLevel::PostInstrument`] — run after an instrumentation pass:
//!   the same, except loads and runtime calls are never removed by DCE
//!   (instrumented loads can trap), plus a dedicated
//!   *redundant-check-elimination* pass: a spatial check whose exact
//!   `(ptr, base, bound)` operands were already checked — with at least
//!   the same access size — on every path from the entry, with no
//!   intervening redefinition, call, pointer store, or
//!   metadata-clobbering runtime op, is provably a repeat of an earlier
//!   passed check and is dropped. This is the classic
//!   available-expressions formulation of check elimination (cf. CHOP's
//!   observation that redundant bounds checks dominate residual
//!   overhead).

use crate::ir::*;
use sb_cir::hir::{ArithOp, CmpOp};
use sb_cir::types::IntKind;
use std::collections::{HashMap, HashSet};

/// Pipeline placement, which constrains what may be deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Before instrumentation: loads are removable dead code.
    PreInstrument,
    /// After instrumentation: loads and `Rt` calls are pinned (except
    /// provably redundant checks, which check elimination removes).
    PostInstrument,
    /// [`PostInstrument`](OptLevel::PostInstrument) without the
    /// redundant-check-elimination pass. Repair-and-continue violation
    /// policies need every check retained: RCE's soundness argument —
    /// "an earlier *passed* check proves this one passes" — inverts
    /// under a policy that lets execution continue past a *failed*
    /// check, and a clamp applies only to the one access its own check
    /// guards.
    PostInstrumentAllChecks,
}

/// Statistics of one optimizer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Net instructions removed (all passes, including check elimination).
    pub insts_removed: usize,
    /// Spatial checks removed by redundant-check elimination alone.
    pub checks_eliminated: usize,
}

/// Optimizes every function in the module in place. Returns the number of
/// instructions removed (for pass statistics).
pub fn optimize(m: &mut Module, level: OptLevel) -> usize {
    optimize_with_stats(m, level).insts_removed
}

/// Optimizes every function in the module in place, reporting detailed
/// pass statistics.
pub fn optimize_with_stats(m: &mut Module, level: OptLevel) -> PassStats {
    let before = m.inst_count();
    let mut checks_eliminated = 0;
    for f in &mut m.funcs {
        if !f.defined {
            continue;
        }
        // A few rounds to a fixpoint (bounded for predictability).
        for _ in 0..4 {
            let mut changed = false;
            changed |= const_fold(f);
            changed |= copy_propagate(f);
            changed |= dce(f, level);
            changed |= simplify_cfg(f);
            if level == OptLevel::PostInstrument {
                let n = eliminate_redundant_checks(f);
                checks_eliminated += n;
                changed |= n > 0;
            }
            if !changed {
                break;
            }
        }
    }
    PassStats {
        insts_removed: before.saturating_sub(m.inst_count()),
        checks_eliminated,
    }
}

/// Evaluates a binary op on constants with kind `k` (the same semantics
/// the VM uses).
pub fn eval_bin(op: ArithOp, k: IntKind, a: i64, b: i64) -> Option<i64> {
    let (a, b) = (k.wrap(a), k.wrap(b));
    let v = match op {
        ArithOp::Add => a.wrapping_add(b),
        ArithOp::Sub => a.wrapping_sub(b),
        ArithOp::Mul => a.wrapping_mul(b),
        ArithOp::Div => {
            if b == 0 {
                return None;
            }
            if k.is_signed() {
                a.wrapping_div(b)
            } else {
                ((a as u64).wrapping_div(b as u64)) as i64
            }
        }
        ArithOp::Rem => {
            if b == 0 {
                return None;
            }
            if k.is_signed() {
                a.wrapping_rem(b)
            } else {
                ((a as u64).wrapping_rem(b as u64)) as i64
            }
        }
        ArithOp::And => a & b,
        ArithOp::Or => a | b,
        ArithOp::Xor => a ^ b,
        ArithOp::Shl => a.wrapping_shl((b & 63) as u32),
        ArithOp::Shr => {
            if k.is_signed() {
                a.wrapping_shr((b & 63) as u32)
            } else {
                (((a as u64) & mask(k)).wrapping_shr((b & 63) as u32)) as i64
            }
        }
    };
    Some(k.wrap(v))
}

fn mask(k: IntKind) -> u64 {
    match k.size() {
        1 => 0xff,
        2 => 0xffff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

/// Evaluates a comparison on constants with kind `k`.
pub fn eval_cmp(op: CmpOp, k: IntKind, a: i64, b: i64) -> i64 {
    let (a, b) = (k.wrap(a), k.wrap(b));
    let r = if k.is_signed() {
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    } else {
        let (a, b) = (a as u64 & mask(k), b as u64 & mask(k));
        match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    };
    r as i64
}

fn const_fold(f: &mut Function) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            let replacement = match inst {
                Inst::Bin {
                    dst,
                    op,
                    k,
                    lhs: Value::Const(a),
                    rhs: Value::Const(c),
                } => eval_bin(*op, *k, *a, *c).map(|v| Inst::Mov {
                    dst: *dst,
                    src: Value::Const(v),
                }),
                Inst::Cmp {
                    dst,
                    op,
                    k,
                    lhs: Value::Const(a),
                    rhs: Value::Const(c),
                } => Some(Inst::Mov {
                    dst: *dst,
                    src: Value::Const(eval_cmp(*op, *k, *a, *c)),
                }),
                Inst::Cast {
                    dst,
                    k,
                    src: Value::Const(a),
                } => Some(Inst::Mov {
                    dst: *dst,
                    src: Value::Const(k.wrap(*a)),
                }),
                Inst::Gep {
                    dst,
                    base: Value::Const(a),
                    index: Value::Const(i),
                    scale,
                    offset,
                    ..
                } => Some(Inst::Mov {
                    dst: *dst,
                    src: Value::Const(
                        a.wrapping_add(i.wrapping_mul(*scale as i64))
                            .wrapping_add(*offset),
                    ),
                }),
                Inst::Gep {
                    dst,
                    base,
                    index: Value::Const(0),
                    offset: 0,
                    field_size: None,
                    ..
                } => Some(Inst::Mov {
                    dst: *dst,
                    src: *base,
                }),
                // x+0, x*1-style identities (common after lowering).
                Inst::Bin {
                    dst,
                    op: ArithOp::Add,
                    lhs,
                    rhs: Value::Const(0),
                    k,
                } if *k == IntKind::I64 || *k == IntKind::U64 => Some(Inst::Mov {
                    dst: *dst,
                    src: *lhs,
                }),
                _ => None,
            };
            if let Some(r) = replacement {
                if *inst != r {
                    *inst = r;
                    changed = true;
                }
            }
        }
        // Fold constant branches into jumps.
        if let Some(Inst::Br {
            cond: Value::Const(c),
            then_to,
            else_to,
        }) = b.insts.last().cloned()
        {
            let to = if c != 0 { then_to } else { else_to };
            *b.insts.last_mut().expect("non-empty") = Inst::Jmp { to };
            changed = true;
        }
    }
    changed
}

/// Block-local copy propagation. Safe with mutable registers because the
/// mapping is invalidated whenever either side is redefined, and never
/// crosses block boundaries. Constants are never propagated into
/// pointer-kind registers' uses: instrumentation passes identify pointer
/// call arguments by register kind, and folding `Mov ptr_reg, 0` away
/// would change that classification.
fn copy_propagate(f: &mut Function) -> bool {
    let mut changed = false;
    let reg_kinds = f.reg_kinds.clone();
    for b in &mut f.blocks {
        let mut map: HashMap<RegId, Value> = HashMap::new();
        for inst in &mut b.insts {
            // Rewrite uses first.
            inst.for_each_use_mut(|v| {
                if let Value::Reg(r) = v {
                    if let Some(repl) = map.get(r) {
                        *v = *repl;
                        changed = true;
                    }
                }
            });
            // Kill mappings clobbered by this instruction's defs.
            for d in inst.defs() {
                map.remove(&d);
                map.retain(|_, v| *v != Value::Reg(d));
            }
            // Record new copies (but keep pointer registers symbolic).
            if let Inst::Mov { dst, src } = inst {
                let ptr_const = matches!(src, Value::Const(_))
                    && reg_kinds[dst.0 as usize] == crate::ir::RegKind::Ptr;
                if *src != Value::Reg(*dst) && !ptr_const {
                    map.insert(*dst, *src);
                }
            }
        }
    }
    changed
}

fn has_side_effect(inst: &Inst, level: OptLevel) -> bool {
    match inst {
        Inst::Store { .. }
        | Inst::Call { .. }
        | Inst::Rt { .. }
        | Inst::Ret { .. }
        | Inst::Jmp { .. }
        | Inst::Br { .. }
        | Inst::Unreachable
        | Inst::Alloca { .. } => true,
        Inst::Load { .. } => level != OptLevel::PreInstrument,
        _ => false,
    }
}

fn dce(f: &mut Function, level: OptLevel) -> bool {
    // A register is live if it appears in any use position (registers are
    // mutable, so this is a whole-function property).
    let mut used: HashSet<RegId> = HashSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            inst.for_each_use(|v| {
                if let Value::Reg(r) = v {
                    used.insert(*r);
                }
            });
        }
    }
    let mut changed = false;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|inst| {
            if has_side_effect(inst, level) {
                return true;
            }
            let defs = inst.defs();
            defs.is_empty() || defs.iter().any(|d| used.contains(d))
        });
        changed |= b.insts.len() != before;
    }
    changed
}

/// Removes unreachable blocks and threads trivial jump chains.
fn simplify_cfg(f: &mut Function) -> bool {
    let mut changed = false;

    // Thread jumps through blocks that are a single `Jmp`.
    let trampoline: Vec<Option<BlockId>> = f
        .blocks
        .iter()
        .map(|b| match b.insts.as_slice() {
            [Inst::Jmp { to }] => Some(*to),
            _ => None,
        })
        .collect();
    let nblocks = f.blocks.len();
    let resolve = move |mut t: BlockId| -> BlockId {
        // Bounded chase to tolerate (degenerate) jump cycles.
        for _ in 0..nblocks {
            match trampoline[t.0 as usize] {
                Some(next) if next != t => t = next,
                _ => break,
            }
        }
        t
    };
    for b in &mut f.blocks {
        if let Some(last) = b.insts.last_mut() {
            match last {
                Inst::Jmp { to } => {
                    let r = resolve(*to);
                    if r != *to {
                        *to = r;
                        changed = true;
                    }
                }
                Inst::Br {
                    then_to, else_to, ..
                } => {
                    let rt_ = resolve(*then_to);
                    let re = resolve(*else_to);
                    if rt_ != *then_to || re != *else_to {
                        *then_to = rt_;
                        *else_to = re;
                        changed = true;
                    }
                }
                _ => {}
            }
        }
    }

    // Drop unreachable blocks (and remap ids).
    let mut reachable = vec![false; f.blocks.len()];
    let mut stack = vec![BlockId(0)];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b.0 as usize], true) {
            continue;
        }
        if let Some(last) = f.blocks[b.0 as usize].insts.last() {
            match last {
                Inst::Jmp { to } => stack.push(*to),
                Inst::Br {
                    then_to, else_to, ..
                } => {
                    stack.push(*then_to);
                    stack.push(*else_to);
                }
                _ => {}
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        return changed;
    }
    let mut remap = vec![BlockId(0); f.blocks.len()];
    let mut kept = Vec::with_capacity(f.blocks.len());
    for (i, b) in f.blocks.drain(..).enumerate() {
        if reachable[i] {
            remap[i] = BlockId(kept.len() as u32);
            kept.push(b);
        }
    }
    for b in &mut kept {
        if let Some(last) = b.insts.last_mut() {
            match last {
                Inst::Jmp { to } => *to = remap[to.0 as usize],
                Inst::Br {
                    then_to, else_to, ..
                } => {
                    *then_to = remap[then_to.0 as usize];
                    *else_to = remap[else_to.0 as usize];
                }
                _ => {}
            }
        }
    }
    f.blocks = kept;
    true
}

// --------------------------------------------------------------------
// Redundant-check elimination (PostInstrument only).

/// Identity of a spatial check: the condition `base <= ptr && ptr+size <=
/// bound` depends only on these operand *values* (checks read no memory),
/// so two checks with equal keys test the same predicate. The `is_store`
/// flag is deliberately not part of the key — it only selects the trap's
/// diagnostic, not the condition. The access size *is* part of the key:
/// a wider check does not subsume a narrower one, because the runtime
/// compares with `ptr.wrapping_add(size)` and a pointer near the top of
/// the address space can pass a size-8 check by wrapping while a size-4
/// check on the same operands would trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CheckKey {
    /// 0 = dereference-check family, 1 = function-pointer check.
    kind: u8,
    ptr: Value,
    base: Value,
    bound: Value,
    size: i64,
}

/// Extracts the identity of a value-only spatial check. Address-based
/// checks that consult runtime state (object tables, addressability
/// maps) are excluded: their verdict can change between two textually
/// identical sites.
fn check_key(inst: &Inst) -> Option<CheckKey> {
    let Inst::Rt { rt, args, .. } = inst else {
        return None;
    };
    match rt {
        RtFn::SbCheck { .. } | RtFn::MsccCheck { .. } | RtFn::FatCheck { .. } => {
            // Non-constant sizes are not emitted by any pass; skip if seen.
            let Value::Const(size) = args[3] else {
                return None;
            };
            Some(CheckKey {
                kind: 0,
                ptr: args[0],
                base: args[1],
                bound: args[2],
                size,
            })
        }
        RtFn::SbFnCheck => Some(CheckKey {
            kind: 1,
            ptr: args[0],
            base: args[1],
            bound: args[2],
            size: 0,
        }),
        _ => None,
    }
}

/// True for instructions that invalidate *every* available check.
///
/// Only `setjmp` call sites qualify. A keyed check is a pure predicate
/// over its operand *registers* (`ptr < base`, `ptr + size ≤ bound` —
/// it reads no program memory and no metadata), so the only ways a
/// proven fact can stop holding are:
///
/// * one of its registers is redefined — the generic defs-kill in
///   [`check_transfer`] handles that, including call/Rt destinations;
/// * control re-enters the function mid-CFG with register values the
///   dataflow never saw. The one construct that does this is `longjmp`,
///   which resumes execution immediately after a live `setjmp` call
///   site with the registers' *current* (not snapshot) values. Clearing
///   the available set at the `setjmp` site makes every fact reaching
///   code after it justified only by checks on static paths from that
///   site — and those same checks re-execute with the current values on
///   the resumed path, so the facts are re-established dynamically.
///
/// Ordinary calls, pointer stores, and the metadata helpers
/// (`SbMetaStore`/`SbMetaClear`/`SbMemcpyMeta`) mutate memory and
/// metadata tables, which checks never read; killing on them (as this
/// pass originally did) suppressed every elimination in call- or
/// store-carrying loops — the `checks_eliminated: 0` rows on compress,
/// tsp, and treeadd in `BENCH_softbound.json`.
fn clobbers_all_checks(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Call {
            callee: Callee::Builtin(sb_cir::hir::Builtin::Setjmp),
            ..
        }
    )
}

/// Registers a check key reads (redefinition of any of them kills it).
fn key_regs(key: &CheckKey) -> impl Iterator<Item = RegId> + '_ {
    [key.ptr, key.base, key.bound]
        .into_iter()
        .filter_map(|v| match v {
            Value::Reg(r) => Some(r),
            _ => None,
        })
}

type CheckSet = HashSet<CheckKey>;

/// Applies one instruction's effect to the available-check set.
fn check_transfer(inst: &Inst, avail: &mut CheckSet) {
    if clobbers_all_checks(inst) {
        avail.clear();
    } else {
        let defs = inst.defs();
        if !defs.is_empty() {
            avail.retain(|key| !key_regs(key).any(|r| defs.contains(&r)));
        }
    }
    // The check itself becomes available *after* the kill step (an
    // instruction never invalidates the fact it just established).
    if let Some(key) = check_key(inst) {
        avail.insert(key);
    }
}

/// Intersection of available-check sets (a check survives a merge only
/// when proven on all incoming paths).
fn check_meet(a: &CheckSet, b: &CheckSet) -> CheckSet {
    a.intersection(b).copied().collect()
}

/// Removes checks dominated by an identical check on every path
/// (forward available-expressions dataflow, then one rewrite sweep).
/// Returns the number of checks eliminated.
fn eliminate_redundant_checks(f: &mut Function) -> usize {
    let nblocks = f.blocks.len();
    if nblocks == 0 {
        return 0;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (bi, b) in f.blocks.iter().enumerate() {
        match b.insts.last() {
            Some(Inst::Jmp { to }) => preds[to.0 as usize].push(bi),
            Some(Inst::Br {
                then_to, else_to, ..
            }) => {
                preds[then_to.0 as usize].push(bi);
                if else_to != then_to {
                    preds[else_to.0 as usize].push(bi);
                }
            }
            _ => {}
        }
    }

    // Optimistic initialization (standard available-expressions): the
    // entry starts from nothing proven; every other block starts from the
    // universe of check keys. Iteration is then monotone decreasing over
    // a finite lattice, so it terminates, and the greatest fixpoint it
    // reaches is a sound under-approximation of "checked on every path
    // from the entry".
    let mut universe = CheckSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Some(key) = check_key(inst) {
                universe.insert(key);
            }
        }
    }
    if universe.is_empty() {
        return 0;
    }
    let mut out: Vec<CheckSet> = vec![universe; nblocks];
    let block_in = |bi: usize, out: &[CheckSet]| -> CheckSet {
        let mut acc: Option<CheckSet> = None;
        if bi == 0 {
            return CheckSet::new(); // nothing proven at entry
        }
        for &p in &preds[bi] {
            acc = Some(match acc {
                None => out[p].clone(),
                Some(a) => check_meet(&a, &out[p]),
            });
        }
        acc.unwrap_or_default()
    };
    {
        // Entry OUT must not start at the universe.
        let mut set = CheckSet::new();
        for inst in &f.blocks[0].insts {
            check_transfer(inst, &mut set);
        }
        out[0] = set;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 1..nblocks {
            let mut set = block_in(bi, &out);
            for inst in &f.blocks[bi].insts {
                check_transfer(inst, &mut set);
            }
            if out[bi] != set {
                out[bi] = set;
                changed = true;
            }
        }
    }

    // Rewrite sweep: drop checks whose exact identity is available.
    let mut eliminated = 0;
    for bi in 0..nblocks {
        let mut set = block_in(bi, &out);
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        let mut kept = Vec::with_capacity(insts.len());
        for inst in insts {
            let redundant = check_key(&inst).is_some_and(|key| set.contains(&key));
            if redundant {
                eliminated += 1;
                continue;
            }
            check_transfer(&inst, &mut set);
            kept.push(inst);
        }
        f.blocks[bi].insts = kept;
    }
    eliminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::verify::verify;

    fn module(src: &str) -> Module {
        lower(&sb_cir::compile(src).expect("compiles"), "t")
    }

    #[test]
    fn optimized_modules_still_verify() {
        let srcs = [
            "int main() { return 2 + 3 * 4; }",
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            r#"
            struct node { int v; struct node* next; };
            int sum(struct node* l) { int s = 0; while (l) { s += l->v; l = l->next; } return s; }
            int main() { return sum(0); }
            "#,
        ];
        for src in srcs {
            let mut m = module(src);
            optimize(&mut m, OptLevel::PreInstrument);
            verify(&m).unwrap_or_else(|e| panic!("verify after opt: {e}\n{m}"));
        }
    }

    #[test]
    fn const_folding_shrinks_code() {
        let mut m = module("int main() { return (3 + 4) * (10 - 2); }");
        let before = m.inst_count();
        let removed = optimize(&mut m, OptLevel::PreInstrument);
        assert!(
            removed > 0,
            "expected folding to remove instructions (before={before})"
        );
        // The function should now return a constant.
        let f = m.func("main").expect("main");
        let has_const_ret = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Ret { vals } if vals == &vec![Value::Const(56)]));
        assert!(has_const_ret, "expected `ret 56`:\n{m}");
    }

    #[test]
    fn eval_bin_semantics() {
        assert_eq!(
            eval_bin(ArithOp::Add, IntKind::I32, i32::MAX as i64, 1),
            Some(i32::MIN as i64)
        );
        assert_eq!(eval_bin(ArithOp::Div, IntKind::I32, -7, 2), Some(-3));
        assert_eq!(
            eval_bin(ArithOp::Div, IntKind::U32, -7i64, 2),
            Some(((-7i64 as u32) / 2) as i64)
        );
        assert_eq!(eval_bin(ArithOp::Div, IntKind::I32, 1, 0), None);
        assert_eq!(eval_bin(ArithOp::Shr, IntKind::I32, -8, 1), Some(-4));
        assert_eq!(
            eval_bin(ArithOp::Shr, IntKind::U32, -8i64, 1),
            Some(((-8i64 as u32) >> 1) as i64)
        );
    }

    #[test]
    fn eval_cmp_signedness() {
        assert_eq!(eval_cmp(CmpOp::Lt, IntKind::I32, -1, 1), 1);
        assert_eq!(
            eval_cmp(CmpOp::Lt, IntKind::U32, -1i64, 1),
            0,
            "-1 as u32 is huge"
        );
        assert_eq!(eval_cmp(CmpOp::Ge, IntKind::U64, -1i64, 1), 1);
    }

    #[test]
    fn dead_loads_removed_pre_instrument_only() {
        let src = "int g; int main() { int x = g; return 0; }";
        let mut pre = module(src);
        optimize(&mut pre, OptLevel::PreInstrument);
        let pre_loads = pre
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(pre_loads, 0);

        let mut post = module(src);
        optimize(&mut post, OptLevel::PostInstrument);
        let post_loads = post
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(post_loads, 1, "post-instrument DCE must keep loads");
    }

    fn check(ptr: Value, base: Value, bound: Value, size: i64) -> Inst {
        Inst::Rt {
            dsts: vec![],
            rt: RtFn::SbCheck { is_store: false },
            args: vec![ptr, base, bound, Value::Const(size)],
        }
    }

    /// A single-purpose function shell: three registers (ptr, base, bound)
    /// and whatever blocks the test installs.
    fn shell(blocks: Vec<Block>) -> Function {
        Function {
            name: "t".into(),
            params: vec![],
            param_kinds: vec![],
            ret_kinds: vec![],
            reg_kinds: vec![RegKind::Ptr, RegKind::Int, RegKind::Int],
            blocks,
            vararg: false,
            defined: true,
        }
    }

    fn args() -> (Value, Value, Value) {
        (
            Value::Reg(RegId(0)),
            Value::Reg(RegId(1)),
            Value::Reg(RegId(2)),
        )
    }

    fn count_checks(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Rt {
                        rt: RtFn::SbCheck { .. },
                        ..
                    }
                )
            })
            .count()
    }

    #[test]
    fn straight_line_duplicate_checks_eliminated() {
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                check(p, b, e, 4), // exact repeat → dropped
                check(p, b, e, 4), // and again → dropped
                check(p, b, e, 8), // different size → must stay
                Inst::Ret { vals: vec![] },
            ],
        }]);
        let n = eliminate_redundant_checks(&mut f);
        assert_eq!(n, 2, "{f:?}");
        assert_eq!(count_checks(&f), 2);
    }

    #[test]
    fn differing_sizes_never_subsume() {
        // A wider check must NOT subsume a narrower one: near the top of
        // the address space `ptr.wrapping_add(8)` can wrap below `bound`
        // (passing) while `ptr.wrapping_add(4)` stays above it (trapping),
        // so their verdicts are not implied by one another.
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 8),
                check(p, b, e, 4), // narrower → kept despite wider proof
                check(p, b, e, 2), // narrower still → kept
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 0);
        assert_eq!(count_checks(&f), 3);
    }

    #[test]
    fn calls_and_pointer_stores_do_not_invalidate() {
        // The check predicate reads registers only — callee side effects
        // and (meta)data writes cannot flip a proven verdict, so a call
        // that defines none of the key's registers and a pointer store
        // both leave the fact available.
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                Inst::Call {
                    dsts: vec![],
                    callee: Callee::Builtin(sb_cir::hir::Builtin::Rand),
                    args: vec![],
                    ptr_hint: false,
                    wrapped: false,
                },
                check(p, b, e, 4), // after a call: dropped
                Inst::Store {
                    mem: MemTy::Ptr,
                    addr: p,
                    value: Value::Const(0),
                },
                check(p, b, e, 4), // after a pointer store: dropped
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 2);
        assert_eq!(count_checks(&f), 1);
    }

    #[test]
    fn call_defining_a_key_register_invalidates() {
        // A call's destination registers go through the ordinary
        // defs-kill: redefinition of the checked pointer ends the fact.
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                Inst::Call {
                    dsts: vec![RegId(0)],
                    callee: Callee::Builtin(sb_cir::hir::Builtin::Rand),
                    args: vec![],
                    ptr_hint: false,
                    wrapped: false,
                },
                check(p, b, e, 4), // ptr redefined by the call → kept
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 0);
        assert_eq!(count_checks(&f), 2);
    }

    #[test]
    fn setjmp_call_sites_invalidate_everything() {
        // longjmp resumes right after a live setjmp call with the
        // registers' *current* values — a hidden CFG edge the dataflow
        // cannot see. Facts must not be carried across the setjmp site.
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                Inst::Call {
                    dsts: vec![],
                    callee: Callee::Builtin(sb_cir::hir::Builtin::Setjmp),
                    args: vec![p],
                    ptr_hint: false,
                    wrapped: false,
                },
                check(p, b, e, 4), // re-entry target → kept
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 0);
        assert_eq!(count_checks(&f), 2);
    }

    #[test]
    fn non_pointer_stores_do_not_invalidate() {
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                Inst::Store {
                    mem: MemTy::I32,
                    addr: p,
                    value: Value::Const(7),
                },
                check(p, b, e, 4), // int store cannot affect the condition
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 1);
    }

    #[test]
    fn register_redefinition_invalidates() {
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                Inst::Mov {
                    dst: RegId(0),
                    src: Value::Const(64),
                },
                check(p, b, e, 4), // ptr changed → kept
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 0);
    }

    #[test]
    fn metadata_stores_do_not_invalidate() {
        // Metadata-table writes change what a *future* SbMetaLoad
        // returns — which would define fresh base/bound registers and
        // kill the fact through defs — but never the verdict of a check
        // over registers already in hand.
        let (p, b, e) = args();
        let mut f = shell(vec![Block {
            insts: vec![
                check(p, b, e, 4),
                Inst::Rt {
                    dsts: vec![],
                    rt: RtFn::SbMetaStore,
                    args: vec![p, b, e],
                },
                check(p, b, e, 4),
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 1);
    }

    #[test]
    fn dominated_checks_eliminated_across_blocks() {
        let (p, b, e) = args();
        // b0: check, br → b1 | b2; b1/b2: recheck, jmp b3; b3: recheck.
        let mut f = shell(vec![
            Block {
                insts: vec![
                    check(p, b, e, 4),
                    Inst::Br {
                        cond: Value::Reg(RegId(1)),
                        then_to: BlockId(1),
                        else_to: BlockId(2),
                    },
                ],
            },
            Block {
                insts: vec![check(p, b, e, 4), Inst::Jmp { to: BlockId(3) }],
            },
            Block {
                insts: vec![check(p, b, e, 4), Inst::Jmp { to: BlockId(3) }],
            },
            Block {
                insts: vec![check(p, b, e, 4), Inst::Ret { vals: vec![] }],
            },
        ]);
        assert_eq!(eliminate_redundant_checks(&mut f), 3, "{f:?}");
        assert_eq!(count_checks(&f), 1, "only the dominating check remains");
    }

    #[test]
    fn one_sided_checks_survive_merges() {
        let (p, b, e) = args();
        // Only the then-branch checks; the merge's check must stay.
        let mut f = shell(vec![
            Block {
                insts: vec![Inst::Br {
                    cond: Value::Reg(RegId(1)),
                    then_to: BlockId(1),
                    else_to: BlockId(2),
                }],
            },
            Block {
                insts: vec![check(p, b, e, 4), Inst::Jmp { to: BlockId(3) }],
            },
            Block {
                insts: vec![Inst::Jmp { to: BlockId(3) }],
            },
            Block {
                insts: vec![check(p, b, e, 4), Inst::Ret { vals: vec![] }],
            },
        ]);
        assert_eq!(eliminate_redundant_checks(&mut f), 0);
        assert_eq!(count_checks(&f), 2);
    }

    #[test]
    fn loop_body_checks_not_hoisted_out_of_first_iteration() {
        let (p, b, e) = args();
        // b0 → b1 (loop body with check) → b1 | b2. The body's check is
        // available only along the back edge, so it must stay.
        let mut f = shell(vec![
            Block {
                insts: vec![Inst::Jmp { to: BlockId(1) }],
            },
            Block {
                insts: vec![
                    check(p, b, e, 4),
                    Inst::Br {
                        cond: Value::Reg(RegId(1)),
                        then_to: BlockId(1),
                        else_to: BlockId(2),
                    },
                ],
            },
            Block {
                insts: vec![Inst::Ret { vals: vec![] }],
            },
        ]);
        assert_eq!(eliminate_redundant_checks(&mut f), 0);
        assert_eq!(count_checks(&f), 1);
    }

    #[test]
    fn fn_checks_participate_separately_from_deref_checks() {
        let (p, b, e) = args();
        let fn_check = Inst::Rt {
            dsts: vec![],
            rt: RtFn::SbFnCheck,
            args: vec![p, b, e],
        };
        let mut f = shell(vec![Block {
            insts: vec![
                fn_check.clone(),
                check(p, b, e, 4), // different kind: not redundant
                fn_check.clone(),  // repeat fn check: redundant
                Inst::Ret { vals: vec![] },
            ],
        }]);
        assert_eq!(eliminate_redundant_checks(&mut f), 1);
    }

    #[test]
    fn post_instrument_pipeline_runs_elimination_and_verifies() {
        let (p, b, e) = args();
        let mut m = Module {
            name: "t".into(),
            globals: vec![],
            funcs: vec![shell(vec![Block {
                insts: vec![
                    check(p, b, e, 4),
                    check(p, b, e, 4),
                    Inst::Ret { vals: vec![] },
                ],
            }])],
        };
        let stats = optimize_with_stats(&mut m, OptLevel::PostInstrument);
        assert_eq!(stats.checks_eliminated, 1);
        verify(&m).expect("slimmer module still verifies");
        let pre = optimize_with_stats(
            &mut module("int main() { return 0; }"),
            OptLevel::PreInstrument,
        );
        assert_eq!(
            pre.checks_eliminated, 0,
            "pre-instrument runs no check elimination"
        );
    }

    #[test]
    fn all_checks_level_pins_redundant_checks_and_loads() {
        let (p, b, e) = args();
        let mut m = Module {
            name: "t".into(),
            globals: vec![],
            funcs: vec![shell(vec![Block {
                insts: vec![
                    check(p, b, e, 4),
                    check(p, b, e, 4),
                    Inst::Ret { vals: vec![] },
                ],
            }])],
        };
        let stats = optimize_with_stats(&mut m, OptLevel::PostInstrumentAllChecks);
        assert_eq!(
            stats.checks_eliminated, 0,
            "repair policies keep every check"
        );
        assert_eq!(count_checks(&m.funcs[0]), 2);
        verify(&m).expect("still verifies");
    }

    #[test]
    fn unreachable_blocks_removed() {
        let mut m = module("int main() { if (0) { return 1; } return 2; }");
        optimize(&mut m, OptLevel::PreInstrument);
        verify(&m).expect("verifies");
        let f = m.func("main").expect("main");
        // `if (0)` arm should be gone after folding + CFG cleanup.
        let has_ret1 = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Ret { vals } if vals == &vec![Value::Const(1)]));
        assert!(!has_ret1, "dead branch should be removed:\n{m}");
    }
}
