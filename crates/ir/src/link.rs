//! Module linking: the separate-compilation story.
//!
//! SoftBound's claim (Table 1, §5.2) is that its purely intra-procedural
//! transformation composes with traditional separate compilation: each
//! module is transformed independently, functions are renamed `_sb_<name>`,
//! and "the static or dynamic linker matches up caller and callee as
//! usual". [`link`] is that linker: it concatenates modules, resolves
//! external declarations against definitions *by name*, and remaps all ids.

use crate::ir::*;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A linking failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    msg: String,
}

impl LinkError {
    /// The description.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl Error for LinkError {}

/// Links several modules into one.
///
/// Duplicate *defined* functions or duplicate globals are errors;
/// declarations (`defined == false`) are resolved against the definition
/// with the same name, from any module.
///
/// # Errors
///
/// Returns a [`LinkError`] on duplicate symbols.
pub fn link(modules: &[Module], name: &str) -> Result<Module, LinkError> {
    let mut out = Module {
        name: name.to_owned(),
        ..Module::default()
    };

    // First pass: lay out globals and decide the final function table.
    // Functions keyed by name: a definition wins over declarations.
    let mut global_map: Vec<Vec<GlobalId>> = Vec::new(); // [module][old] -> new
    let mut global_names: HashMap<String, GlobalId> = HashMap::new();
    for m in modules {
        let mut map = Vec::with_capacity(m.globals.len());
        for g in &m.globals {
            // Interned strings may repeat across modules; rename them apart.
            let mut g2 = g.clone();
            if g.name.starts_with(".str.") {
                g2.name = format!(".m{}{}", global_map.len(), g.name);
            } else if global_names.contains_key(&g.name) {
                return Err(LinkError {
                    msg: format!("duplicate global `{}`", g.name),
                });
            }
            let id = GlobalId(out.globals.len() as u32);
            global_names.insert(g2.name.clone(), id);
            map.push(id);
            out.globals.push(g2);
        }
        global_map.push(map);
    }

    let mut func_names: HashMap<String, FuncId> = HashMap::new();
    let mut func_map: Vec<Vec<FuncId>> = Vec::new();
    for m in modules {
        let mut map = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            let id = match func_names.get(&f.name) {
                Some(&existing) => {
                    let have = &out.funcs[existing.0 as usize];
                    if have.defined && f.defined {
                        return Err(LinkError {
                            msg: format!("duplicate definition of function `{}`", f.name),
                        });
                    }
                    if !have.defined && f.defined {
                        out.funcs[existing.0 as usize] = f.clone();
                    }
                    existing
                }
                None => {
                    let id = FuncId(out.funcs.len() as u32);
                    func_names.insert(f.name.clone(), id);
                    out.funcs.push(f.clone());
                    id
                }
            };
            map.push(id);
        }
        func_map.push(map);
    }

    // Second pass: remap ids inside function bodies and global inits.
    // Figure out, for each output function, which module it came from.
    let mut origin: HashMap<String, usize> = HashMap::new();
    for (mi, m) in modules.iter().enumerate() {
        for f in &m.funcs {
            if f.defined || !origin.contains_key(&f.name) {
                origin.insert(f.name.clone(), mi);
            }
        }
    }
    for f in &mut out.funcs {
        let mi = origin[&f.name];
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                inst.for_each_use_mut(|v| remap_value(v, &global_map[mi], &func_map[mi]));
                if let Inst::Call {
                    callee: Callee::Direct(fid),
                    ..
                } = inst
                {
                    *fid = func_map[mi][fid.0 as usize];
                }
            }
        }
    }
    // Globals: remap init references. Track which module each output global
    // came from by reconstructing the order (same iteration as pass 1).
    let mut gi = 0usize;
    for (mi, m) in modules.iter().enumerate() {
        for _ in &m.globals {
            let g = &mut out.globals[gi];
            for (_, item) in &mut g.init {
                match item {
                    GInit::GlobalAddr { id, .. } => *id = global_map[mi][id.0 as usize],
                    GInit::FuncAddr(fid) => *fid = func_map[mi][fid.0 as usize],
                    GInit::Bytes(_) => {}
                }
            }
            gi += 1;
        }
    }
    Ok(out)
}

fn remap_value(v: &mut Value, gmap: &[GlobalId], fmap: &[FuncId]) {
    match v {
        Value::GlobalAddr { id, .. } => *id = gmap[id.0 as usize],
        Value::FuncAddr(fid) => *fid = fmap[fid.0 as usize],
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::verify::verify;

    fn module(src: &str, name: &str) -> Module {
        lower(&sb_cir::compile(src).expect("compiles"), name)
    }

    #[test]
    fn links_caller_and_callee_across_modules() {
        let lib = module("int twice(int x) { return 2 * x; }", "lib");
        let app = module("int twice(int x); int main() { return twice(21); }", "app");
        let linked = link(&[app, lib], "prog").expect("links");
        verify(&linked).expect("verifies");
        let main_id = linked.func_id("main").expect("main exists");
        let twice_id = linked.func_id("twice").expect("twice exists");
        assert!(linked.funcs[twice_id.0 as usize].defined);
        // main's call must point at the defined twice.
        let main = &linked.funcs[main_id.0 as usize];
        let calls: Vec<FuncId> = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::Call {
                    callee: Callee::Direct(fid),
                    ..
                } => Some(*fid),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec![twice_id]);
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let a = module("int f() { return 1; }", "a");
        let b = module("int f() { return 2; }", "b");
        assert!(link(&[a, b], "prog").is_err());
    }

    #[test]
    fn duplicate_globals_rejected() {
        let a = module("int g;", "a");
        let b = module("int g;", "b");
        assert!(link(&[a, b], "prog").is_err());
    }

    #[test]
    fn string_globals_do_not_collide() {
        let a = module(r#"char* f() { return "shared"; }"#, "a");
        let b = module(r#"char* f2() { return "shared"; }"#, "b");
        let linked = link(&[a, b], "prog").expect("links");
        verify(&linked).expect("verifies");
    }

    #[test]
    fn global_references_remapped() {
        let a = module("int counter = 7; int* pc = &counter;", "a");
        let b = module("int other = 9;", "b");
        let linked = link(&[b, a], "prog").expect("links");
        let pc = linked.globals.iter().find(|g| g.name == "pc").expect("pc");
        let GInit::GlobalAddr { id, .. } = pc.init[0].1 else {
            panic!("expected global addr")
        };
        assert_eq!(linked.globals[id.0 as usize].name, "counter");
    }
}
