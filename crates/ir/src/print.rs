//! Human-readable IR dumps (for debugging and docs; not a parseable
//! format).

use crate::ir::*;
use std::fmt;

/// Prints a whole module.
pub fn print_module(m: &Module, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(f, "; module {}", m.name)?;
    for (i, g) in m.globals.iter().enumerate() {
        write!(
            f,
            "@{} = global \"{}\" size {} align {}",
            i, g.name, g.size, g.align
        )?;
        if !g.ptr_slots.is_empty() {
            write!(f, " ptr_slots {:?}", g.ptr_slots)?;
        }
        writeln!(f)?;
    }
    for (i, func) in m.funcs.iter().enumerate() {
        print_function(i, func, f)?;
    }
    Ok(())
}

fn val(v: &Value) -> String {
    match v {
        Value::Reg(r) => format!("r{}", r.0),
        Value::Const(c) => format!("{c}"),
        Value::GlobalAddr { id, offset } if *offset == 0 => format!("@{}", id.0),
        Value::GlobalAddr { id, offset } => format!("@{}+{}", id.0, offset),
        Value::FuncAddr(fid) => format!("&fn{}", fid.0),
    }
}

fn print_function(idx: usize, func: &Function, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let params: Vec<String> = func
        .params
        .iter()
        .zip(&func.param_kinds)
        .map(|(r, k)| format!("r{}:{:?}", r.0, k))
        .collect();
    writeln!(
        f,
        "\nfn{} {}({}){}{} -> {:?} {{",
        idx,
        func.name,
        params.join(", "),
        if func.vararg { ", ..." } else { "" },
        if func.defined { "" } else { " [extern]" },
        func.ret_kinds,
    )?;
    for (bi, b) in func.blocks.iter().enumerate() {
        writeln!(f, "b{bi}:")?;
        for inst in &b.insts {
            writeln!(f, "  {}", fmt_inst(inst))?;
        }
    }
    writeln!(f, "}}")
}

/// Formats a single instruction.
pub fn fmt_inst(inst: &Inst) -> String {
    match inst {
        Inst::Bin {
            dst,
            op,
            k,
            lhs,
            rhs,
        } => {
            format!("r{} = {:?}.{:?} {}, {}", dst.0, op, k, val(lhs), val(rhs))
        }
        Inst::Cmp {
            dst,
            op,
            k,
            lhs,
            rhs,
        } => {
            format!(
                "r{} = cmp.{:?}.{:?} {}, {}",
                dst.0,
                op,
                k,
                val(lhs),
                val(rhs)
            )
        }
        Inst::Cast { dst, k, src } => format!("r{} = cast.{:?} {}", dst.0, k, val(src)),
        Inst::Mov { dst, src } => format!("r{} = {}", dst.0, val(src)),
        Inst::Alloca { dst, info } => format!(
            "r{} = alloca \"{}\" size {} align {}{}",
            dst.0,
            info.name,
            info.size,
            info.align,
            if info.ptr_slots.is_empty() {
                String::new()
            } else {
                format!(" ptr_slots {:?}", info.ptr_slots)
            }
        ),
        Inst::Load { dst, mem, addr } => format!("r{} = load.{:?} [{}]", dst.0, mem, val(addr)),
        Inst::Store { mem, addr, value } => {
            format!("store.{:?} [{}], {}", mem, val(addr), val(value))
        }
        Inst::Gep {
            dst,
            base,
            index,
            scale,
            offset,
            field_size,
        } => {
            let mut s = format!(
                "r{} = gep {} + {}*{} + {}",
                dst.0,
                val(base),
                val(index),
                scale,
                offset
            );
            if let Some(fs) = field_size {
                s.push_str(&format!(" [field:{fs}]"));
            }
            s
        }
        Inst::Call {
            dsts, callee, args, ..
        } => {
            let d: Vec<String> = dsts.iter().map(|r| format!("r{}", r.0)).collect();
            let a: Vec<String> = args.iter().map(val).collect();
            let c = match callee {
                Callee::Direct(fid) => format!("fn{}", fid.0),
                Callee::Indirect(v) => format!("*{}", val(v)),
                Callee::Builtin(b) => format!("{b:?}").to_lowercase(),
            };
            if d.is_empty() {
                format!("call {}({})", c, a.join(", "))
            } else {
                format!("{} = call {}({})", d.join(", "), c, a.join(", "))
            }
        }
        Inst::Rt { dsts, rt, args } => {
            let d: Vec<String> = dsts.iter().map(|r| format!("r{}", r.0)).collect();
            let a: Vec<String> = args.iter().map(val).collect();
            if d.is_empty() {
                format!("rt {:?}({})", rt, a.join(", "))
            } else {
                format!("{} = rt {:?}({})", d.join(", "), rt, a.join(", "))
            }
        }
        Inst::Ret { vals } => {
            let v: Vec<String> = vals.iter().map(val).collect();
            format!("ret {}", v.join(", "))
        }
        Inst::Jmp { to } => format!("jmp b{}", to.0),
        Inst::Br {
            cond,
            then_to,
            else_to,
        } => {
            format!("br {} ? b{} : b{}", val(cond), then_to.0, else_to.0)
        }
        Inst::Unreachable => "unreachable".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_display_smoke() {
        let prog = sb_cir::compile("int main() { char buf[4]; buf[0] = 1; return buf[0]; }")
            .expect("compiles");
        let m = crate::lower::lower(&prog, "t");
        let text = m.to_string();
        assert!(text.contains("fn0 main"));
        assert!(text.contains("alloca"));
        assert!(text.contains("store"));
    }

    #[test]
    fn fmt_inst_variants() {
        assert!(fmt_inst(&Inst::Unreachable).contains("unreachable"));
        assert!(fmt_inst(&Inst::Jmp { to: BlockId(3) }).contains("b3"));
        let s = fmt_inst(&Inst::Rt {
            dsts: vec![RegId(1), RegId(2)],
            rt: RtFn::SbMetaLoad,
            args: vec![Value::Reg(RegId(0))],
        });
        assert!(s.contains("SbMetaLoad"));
    }
}
