//! # sb-ir — intermediate representation for the SoftBound reproduction
//!
//! A typed register-machine IR playing the role LLVM IR plays in the
//! paper: the substrate on which SoftBound (and the baseline schemes) are
//! implemented as IR→IR instrumentation passes. Provides:
//!
//! * the [IR itself](ir) (modules, functions, blocks, instructions,
//!   runtime-call instructions for instrumentation passes);
//! * [lowering](mod@lower) from `sb-cir`'s typed HIR, with register promotion
//!   (so instrumentation runs post-optimization, as in §6.1 of the paper);
//! * a [verifier](mod@verify), an [optimizer](opt) and a [printer](mod@print);
//! * a [linker](mod@link) implementing the separate-compilation story (§5.2).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = sb_cir::compile("int main() { return 6 * 7; }")?;
//! let mut module = sb_ir::lower(&prog, "demo");
//! sb_ir::verify(&module)?;
//! sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
//! assert!(module.func("main").is_some());
//! # Ok(())
//! # }
//! ```

pub mod ir;
pub mod link;
pub mod lower;
pub mod opt;
pub mod print;
pub mod verify;

pub use ir::{
    AllocaInfo, ArithOp, Block, BlockId, Callee, CmpOp, FuncId, Function, GInit, Global, GlobalId,
    Inst, IntKind, MemTy, Module, RegId, RegKind, RtFn, Value,
};
pub use link::{link, LinkError};
pub use lower::{lower, ptr_slots_of};
pub use opt::{optimize, optimize_with_stats, OptLevel, PassStats};
pub use verify::{verify, VerifyError};
