//! Structural IR verifier.
//!
//! Checks the invariants the VM and the instrumentation passes rely on:
//! every block terminates exactly once (at the end), branch targets exist,
//! registers are in range, call/ret arities match, allocas appear only in
//! the entry block, and pointer/integer register kinds are used
//! consistently.

use crate::ir::*;
use std::error::Error;
use std::fmt;

/// A verifier diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub func: String,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.func, self.msg)
    }
}

impl Error for VerifyError {}

/// Verifies a module.
///
/// # Errors
///
/// Returns the first structural violation found.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    for f in &m.funcs {
        verify_fn(m, f)?;
    }
    Ok(())
}

fn err(f: &Function, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        func: f.name.clone(),
        msg: msg.into(),
    }
}

/// Required argument count of each runtime helper. Instrumentation
/// passes and the post-instrument optimizer (which rewrites `Rt`
/// instructions during check elimination) must both preserve these.
fn rt_arg_count(rt: RtFn) -> usize {
    match rt {
        RtFn::SbCheck { .. } | RtFn::MsccCheck { .. } | RtFn::FatCheck { .. } => 4,
        RtFn::SbMetaStore | RtFn::SbMemcpyMeta | RtFn::MsccMetaStore | RtFn::SbFnCheck => 3,
        RtFn::SbMetaClear
        | RtFn::ObjCheckArith
        | RtFn::ObjCheckDeref { .. }
        | RtFn::VgCheck { .. } => 2,
        RtFn::SbMetaLoad | RtFn::SbVaCheck | RtFn::MsccMetaLoad | RtFn::MsccVaCheck => 1,
    }
}

fn verify_fn(m: &Module, f: &Function) -> Result<(), VerifyError> {
    if !f.defined {
        return Ok(());
    }
    if f.blocks.is_empty() {
        return Err(err(f, "defined function has no blocks"));
    }
    if f.params.len() != f.param_kinds.len() {
        return Err(err(f, "params/param_kinds length mismatch"));
    }
    let nregs = f.reg_kinds.len() as u32;
    let nblocks = f.blocks.len() as u32;

    let check_val = |v: &Value| -> Result<(), VerifyError> {
        match v {
            Value::Reg(r) if r.0 >= nregs => Err(err(f, format!("register r{} out of range", r.0))),
            Value::GlobalAddr { id, .. } if id.0 as usize >= m.globals.len() => {
                Err(err(f, format!("global @{} out of range", id.0)))
            }
            Value::FuncAddr(fid) if fid.0 as usize >= m.funcs.len() => {
                Err(err(f, format!("function fn{} out of range", fid.0)))
            }
            _ => Ok(()),
        }
    };

    for (bi, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            return Err(err(f, format!("block b{bi} is empty")));
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            let is_last = ii == b.insts.len() - 1;
            if inst.is_terminator() != is_last {
                return Err(err(
                    f,
                    format!("block b{bi} instruction {ii}: terminator placement invalid"),
                ));
            }
            let mut verr = None;
            inst.for_each_use(|v| {
                if verr.is_none() {
                    verr = check_val(v).err();
                }
            });
            if let Some(e) = verr {
                return Err(e);
            }
            for d in inst.defs() {
                if d.0 >= nregs {
                    return Err(err(f, format!("def register r{} out of range", d.0)));
                }
            }
            match inst {
                Inst::Alloca { .. } if bi != 0 => {
                    return Err(err(f, "alloca outside entry block"));
                }
                Inst::Jmp { to } if to.0 >= nblocks => {
                    return Err(err(f, format!("jump target b{} out of range", to.0)));
                }
                Inst::Br {
                    then_to, else_to, ..
                } if then_to.0 >= nblocks || else_to.0 >= nblocks => {
                    return Err(err(f, "branch target out of range"));
                }
                Inst::Ret { vals } if vals.len() != f.ret_kinds.len() => {
                    return Err(err(
                        f,
                        format!(
                            "ret arity {} does not match signature {}",
                            vals.len(),
                            f.ret_kinds.len()
                        ),
                    ));
                }
                Inst::Call {
                    dsts,
                    callee: Callee::Direct(fid),
                    args,
                    ..
                } => {
                    if fid.0 as usize >= m.funcs.len() {
                        return Err(err(f, "call target out of range"));
                    }
                    let callee_fn = &m.funcs[fid.0 as usize];
                    if dsts.len() > callee_fn.ret_kinds.len() {
                        return Err(err(
                            f,
                            format!(
                                "call to `{}` binds {} results but callee returns {}",
                                callee_fn.name,
                                dsts.len(),
                                callee_fn.ret_kinds.len()
                            ),
                        ));
                    }
                    if args.len() < callee_fn.params.len() && callee_fn.defined {
                        return Err(err(
                            f,
                            format!("call to `{}` passes too few arguments", callee_fn.name),
                        ));
                    }
                }
                Inst::Rt { dsts, rt, args } => {
                    if dsts.len() != rt.result_count() {
                        return Err(err(
                            f,
                            format!(
                                "rt call {:?} binds {} results, expects {}",
                                rt,
                                dsts.len(),
                                rt.result_count()
                            ),
                        ));
                    }
                    if args.len() != rt_arg_count(*rt) {
                        return Err(err(
                            f,
                            format!(
                                "rt call {:?} passes {} args, expects {}",
                                rt,
                                args.len(),
                                rt_arg_count(*rt)
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    fn module(src: &str) -> Module {
        lower(&sb_cir::compile(src).expect("compiles"), "t")
    }

    #[test]
    fn lowered_modules_verify() {
        let srcs = [
            "int main() { return 0; }",
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
            r#"
            struct node { int v; struct node* next; };
            int sum(struct node* l) { int s = 0; while (l) { s += l->v; l = l->next; } return s; }
            int main() { return sum(0); }
            "#,
            "int g(int (*f)(int), int x) { return f(x); }",
        ];
        for src in srcs {
            let m = module(src);
            verify(&m).unwrap_or_else(|e| panic!("verify failed: {e}\nmodule:\n{m}"));
        }
    }

    #[test]
    fn detects_missing_terminator() {
        let mut m = module("int main() { return 0; }");
        let f = m.funcs.iter_mut().find(|f| f.name == "main").expect("main");
        f.blocks[0].insts.pop();
        f.blocks[0].insts.push(Inst::Mov {
            dst: RegId(0),
            src: Value::Const(1),
        });
        // Need a register to exist for the Mov.
        if f.reg_kinds.is_empty() {
            f.reg_kinds.push(RegKind::Int);
        }
        assert!(verify(&m).is_err());
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut m = module("int main() { return 0; }");
        let f = m.funcs.iter_mut().find(|f| f.name == "main").expect("main");
        f.blocks[0].insts.pop();
        f.blocks[0].insts.push(Inst::Jmp { to: BlockId(99) });
        assert!(verify(&m).is_err());
    }

    #[test]
    fn detects_out_of_range_register() {
        let mut m = module("int main() { return 0; }");
        let f = m.funcs.iter_mut().find(|f| f.name == "main").expect("main");
        f.blocks[0].insts.insert(
            0,
            Inst::Mov {
                dst: RegId(1000),
                src: Value::Const(0),
            },
        );
        assert!(verify(&m).is_err());
    }

    #[test]
    fn detects_rt_arity_mismatch() {
        let mut m = module("int main() { return 0; }");
        let f = m.funcs.iter_mut().find(|f| f.name == "main").expect("main");
        f.blocks[0].insts.insert(
            0,
            Inst::Rt {
                dsts: vec![],
                rt: RtFn::SbMetaLoad,
                args: vec![Value::Const(0)],
            },
        );
        assert!(verify(&m).is_err());
    }

    #[test]
    fn detects_rt_argument_count_mismatch() {
        let mut m = module("int main() { return 0; }");
        let f = m.funcs.iter_mut().find(|f| f.name == "main").expect("main");
        // A check missing its size operand must be rejected.
        f.blocks[0].insts.insert(
            0,
            Inst::Rt {
                dsts: vec![],
                rt: RtFn::SbCheck { is_store: false },
                args: vec![Value::Const(0), Value::Const(0), Value::Const(0)],
            },
        );
        let e = verify(&m).expect_err("short arg list rejected");
        assert!(e.msg.contains("expects 4"), "{e}");
    }
}
