//! Core IR definitions.
//!
//! The IR is a typed register machine organized as modules → functions →
//! basic blocks → instructions, deliberately close to the fragment of LLVM
//! IR that SoftBound instruments: explicit `Load`/`Store`/`Gep` memory
//! operations, multi-value returns (so a pointer-returning function can be
//! rewritten to return `(ptr, base, bound)` per §3.3), and a family of
//! *runtime calls* ([`RtFn`]) that instrumentation passes insert and the
//! VM dispatches to the installed safety runtime.
//!
//! Registers are mutable (non-SSA): a register may be assigned in several
//! blocks, which lets metadata shadow registers (`r_base`, `r_bound`) join
//! at control-flow merges without phi nodes — the same effect as the
//! paper's per-pointer intermediate values.

use sb_cir::hir::Builtin;
pub use sb_cir::hir::{ArithOp, CmpOp};
pub use sb_cir::types::IntKind;
use std::collections::HashMap;
use std::fmt;

/// A virtual register, unique within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// A basic block id, unique within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A function id, unique within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// A global id, unique within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Value class of a register: the SoftBound pass must know which registers
/// carry pointers (they get base/bound shadows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegKind {
    /// Integer (or other non-pointer) value.
    #[default]
    Int,
    /// Pointer value.
    Ptr,
}

/// An operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A register.
    Reg(RegId),
    /// A 64-bit integer constant (also used for null pointers).
    Const(i64),
    /// Address of (an offset into) a global.
    GlobalAddr { id: GlobalId, offset: u64 },
    /// Address of a function (function pointer).
    FuncAddr(FuncId),
}

impl Value {
    /// Constant zero / null.
    pub const NULL: Value = Value::Const(0);
}

impl From<RegId> for Value {
    fn from(r: RegId) -> Self {
        Value::Reg(r)
    }
}

/// Memory access granularity for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTy {
    I8,
    U8,
    I16,
    U16,
    I32,
    U32,
    I64,
    /// A pointer slot: 8 bytes; loads of pointers are what SoftBound pairs
    /// with metadata loads (§3.2).
    Ptr,
}

impl MemTy {
    /// Bytes moved by this access.
    pub fn size(self) -> u64 {
        match self {
            MemTy::I8 | MemTy::U8 => 1,
            MemTy::I16 | MemTy::U16 => 2,
            MemTy::I32 | MemTy::U32 => 4,
            MemTy::I64 | MemTy::Ptr => 8,
        }
    }

    /// True if a load of this type produces a pointer register.
    pub fn is_ptr(self) -> bool {
        matches!(self, MemTy::Ptr)
    }
}

/// Per-alloca metadata used by runtimes (object registration, metadata
/// clearing) and by the SoftBound pass (bound creation, §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocaInfo {
    /// Source-level name, for diagnostics.
    pub name: String,
    /// Allocation size in bytes.
    pub size: u64,
    /// Required alignment.
    pub align: u64,
    /// Byte offsets of pointer-typed slots inside the allocation (for
    /// metadata clearing on frame exit, §5.2 "memory reuse and stale
    /// metadata").
    pub ptr_slots: Vec<u64>,
}

/// Runtime helper functions inserted by instrumentation passes. The VM
/// forwards these to the installed `RuntimeHooks` implementation (see
/// `sb-vm`), which supplies semantics and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtFn {
    /// SoftBound spatial check (§3.1): args `[ptr, base, bound, size]`;
    /// aborts unless `base <= ptr && ptr+size <= bound`.
    SbCheck {
        /// True for store checks (store-only mode keeps only these).
        is_store: bool,
    },
    /// SoftBound metadata load (§3.2): args `[addr]`, dsts `[base, bound]`.
    SbMetaLoad,
    /// SoftBound metadata store (§3.2): args `[addr, base, bound]`.
    SbMetaStore,
    /// SoftBound function-pointer check (§5.2): args `[ptr, base, bound]`;
    /// requires `base == bound == ptr`.
    SbFnCheck,
    /// Clear metadata for every pointer slot in `[addr, addr+len)`:
    /// args `[addr, len]`.
    SbMetaClear,
    /// Copy metadata for pointer slots from `src` to `dst` over `len`
    /// bytes: args `[dst, src, len]` (memcpy handling, §5.2).
    SbMemcpyMeta,
    /// Variadic-argument decode check (§5.2): args `[index, count]`.
    SbVaCheck,
    /// Object-table arithmetic check (Jones-Kelly): args `[src, result]`;
    /// result must stay in (or one past) src's object.
    ObjCheckArith,
    /// Object-table dereference check (Mudflap-style): args `[ptr, size]`.
    ObjCheckDeref {
        /// True for store checks.
        is_store: bool,
    },
    /// Valgrind/Memcheck-style addressability check: args `[ptr, size]`.
    VgCheck {
        /// True for store checks.
        is_store: bool,
    },
    /// MSCC-style metadata load: args `[addr]`, dsts `[base, bound]`.
    MsccMetaLoad,
    /// MSCC-style metadata store: args `[addr, base, bound]`.
    MsccMetaStore,
    /// MSCC-style spatial check: args `[ptr, base, bound, size]`.
    MsccCheck {
        /// True for store checks.
        is_store: bool,
    },
    /// MSCC-style variadic decode check: args `[index]`.
    MsccVaCheck,
    /// Fat-pointer (SafeC/CCured-SEQ) spatial check: args
    /// `[ptr, base, bound, size]`. Metadata movement itself is plain
    /// loads/stores of the inline fat-pointer words.
    FatCheck {
        /// True for store checks.
        is_store: bool,
    },
}

impl RtFn {
    /// Number of result registers this helper produces.
    pub fn result_count(self) -> usize {
        match self {
            RtFn::SbMetaLoad | RtFn::MsccMetaLoad => 2,
            _ => 0,
        }
    }

    /// True for the bounds/addressability checks every scheme counts as a
    /// "check" in its dynamic statistics (the interpreter's `checks`
    /// counter and the pre-decoded lane must agree on this set).
    pub fn is_check(self) -> bool {
        matches!(
            self,
            RtFn::SbCheck { .. }
                | RtFn::ObjCheckDeref { .. }
                | RtFn::VgCheck { .. }
                | RtFn::MsccCheck { .. }
                | RtFn::FatCheck { .. }
                | RtFn::ObjCheckArith
                | RtFn::SbFnCheck
        )
    }

    /// True for metadata-table loads (`meta_loads` statistic).
    pub fn is_meta_load(self) -> bool {
        matches!(self, RtFn::SbMetaLoad | RtFn::MsccMetaLoad)
    }

    /// True for metadata-table stores (`meta_stores` statistic).
    pub fn is_meta_store(self) -> bool {
        matches!(self, RtFn::SbMetaStore | RtFn::MsccMetaStore)
    }
}

/// Call targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// Direct call to a module function.
    Direct(FuncId),
    /// Indirect call through a function-pointer value.
    Indirect(Value),
    /// A frontend builtin implemented by the VM (the "C library").
    Builtin(Builtin),
}

/// An instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = lhs op rhs`, wrapped to kind `k`.
    Bin {
        dst: RegId,
        op: ArithOp,
        k: IntKind,
        lhs: Value,
        rhs: Value,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`, comparing in kind `k`.
    Cmp {
        dst: RegId,
        op: CmpOp,
        k: IntKind,
        lhs: Value,
        rhs: Value,
    },
    /// `dst = wrap_k(src)` — integer width/signedness conversion.
    Cast { dst: RegId, k: IntKind, src: Value },
    /// `dst = src` (also used to move pointers between registers).
    Mov { dst: RegId, src: Value },
    /// Stack allocation; yields the slot address. All allocas appear in the
    /// entry block, in frame layout order (lowest address first).
    Alloca { dst: RegId, info: AllocaInfo },
    /// `dst = *(mem)addr` with sign/zero extension per `mem`.
    Load { dst: RegId, mem: MemTy, addr: Value },
    /// `*(mem)addr = value`.
    Store {
        mem: MemTy,
        addr: Value,
        value: Value,
    },
    /// `dst = base + index*scale + offset`. `field_size` is `Some(sz)` when
    /// this GEP computes the address of a sub-object (struct field) of size
    /// `sz` — the SoftBound pass shrinks bounds at exactly these points
    /// (§3.1 "Shrinking Pointer Bounds").
    Gep {
        dst: RegId,
        base: Value,
        index: Value,
        scale: u64,
        offset: i64,
        field_size: Option<u64>,
    },
    /// Call; `dsts` receives the callee's return values (0..n).
    ///
    /// `ptr_hint` marks memcpy/free calls whose operand's static type
    /// contains pointers (§5.2 heuristics). `wrapped` is set by the
    /// SoftBound pass on *builtin* calls to signal that base/bound
    /// metadata arguments have been appended (the paper's library
    /// wrappers) and that pointer-returning builtins should produce
    /// `(ptr, base, bound)`.
    Call {
        dsts: Vec<RegId>,
        callee: Callee,
        args: Vec<Value>,
        ptr_hint: bool,
        wrapped: bool,
    },
    /// Runtime-helper call inserted by an instrumentation pass.
    Rt {
        dsts: Vec<RegId>,
        rt: RtFn,
        args: Vec<Value>,
    },
    /// Return `vals` (arity must match the function's `ret` signature).
    Ret { vals: Vec<Value> },
    /// Unconditional jump.
    Jmp { to: BlockId },
    /// Conditional branch on `cond != 0`.
    Br {
        cond: Value,
        then_to: BlockId,
        else_to: BlockId,
    },
    /// Unreachable (e.g. after `abort()`); trips a VM error if executed.
    Unreachable,
}

impl Inst {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret { .. } | Inst::Jmp { .. } | Inst::Br { .. } | Inst::Unreachable
        )
    }

    /// Registers written by this instruction.
    pub fn defs(&self) -> Vec<RegId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Mov { dst, .. }
            | Inst::Alloca { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Gep { dst, .. } => vec![*dst],
            Inst::Call { dsts, .. } | Inst::Rt { dsts, .. } => dsts.clone(),
            _ => Vec::new(),
        }
    }

    /// Applies `f` to every operand [`Value`] of this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(&Value)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Cast { src, .. } | Inst::Mov { src, .. } => f(src),
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Inst::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    f(v);
                }
                for a in args {
                    f(a);
                }
            }
            Inst::Rt { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Ret { vals } => {
                for v in vals {
                    f(v);
                }
            }
            Inst::Br { cond, .. } => f(cond),
            Inst::Alloca { .. } | Inst::Jmp { .. } | Inst::Unreachable => {}
        }
    }

    /// Applies `f` to every operand [`Value`] of this instruction, mutably.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Value)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Cast { src, .. } | Inst::Mov { src, .. } => f(src),
            Inst::Load { addr, .. } => f(addr),
            Inst::Store { addr, value, .. } => {
                f(addr);
                f(value);
            }
            Inst::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    f(v);
                }
                for a in args {
                    f(a);
                }
            }
            Inst::Rt { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Ret { vals } => {
                for v in vals {
                    f(v);
                }
            }
            Inst::Br { cond, .. } => f(cond),
            Inst::Alloca { .. } | Inst::Jmp { .. } | Inst::Unreachable => {}
        }
    }
}

/// A basic block: straight-line instructions ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// Instructions; the last one must be a terminator in a valid function.
    pub insts: Vec<Inst>,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name (SoftBound renames transformed functions to `_sb_<name>`,
    /// §3.3).
    pub name: String,
    /// Parameter registers (prefix of the register file).
    pub params: Vec<RegId>,
    /// Kinds of the parameters (pointer params get appended base/bound
    /// params under SoftBound).
    pub param_kinds: Vec<RegKind>,
    /// Kinds of the return values (empty = void).
    pub ret_kinds: Vec<RegKind>,
    /// Kind of every register (indexed by `RegId`).
    pub reg_kinds: Vec<RegKind>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// True for C-style variadic functions.
    pub vararg: bool,
    /// False for external declarations (resolved by [`link`](crate::link())).
    pub defined: bool,
}

impl Function {
    /// Allocates a fresh register of the given kind.
    pub fn new_reg(&mut self, kind: RegKind) -> RegId {
        let id = RegId(self.reg_kinds.len() as u32);
        self.reg_kinds.push(kind);
        id
    }

    /// Kind of a register.
    pub fn reg_kind(&self, r: RegId) -> RegKind {
        self.reg_kinds[r.0 as usize]
    }

    /// Appends a new empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Total instruction count (for pass statistics).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// One item of a global initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GInit {
    /// Raw little-endian bytes at the offset.
    Bytes(Vec<u8>),
    /// Address of (an offset into) another global, stored as 8 bytes.
    GlobalAddr { id: GlobalId, offset: u64 },
    /// Address of a function, stored as 8 bytes.
    FuncAddr(FuncId),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
    /// Sparse initializer; memory is zero elsewhere.
    pub init: Vec<(u64, GInit)>,
    /// Byte offsets of pointer-typed slots (for SoftBound's global metadata
    /// initialization, §5.2, and for object-table registration).
    pub ptr_slots: Vec<u64>,
}

/// A compiled module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name (for diagnostics).
    pub name: String,
    /// Globals, laid out in order in the VM's data segment.
    pub globals: Vec<Global>,
    /// Functions.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Finds a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a global id by name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Map from function name to id.
    pub fn func_ids(&self) -> HashMap<String, FuncId> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect()
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::print::print_module(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_ty_sizes() {
        assert_eq!(MemTy::I8.size(), 1);
        assert_eq!(MemTy::U16.size(), 2);
        assert_eq!(MemTy::I32.size(), 4);
        assert_eq!(MemTy::Ptr.size(), 8);
        assert!(MemTy::Ptr.is_ptr());
        assert!(!MemTy::I64.is_ptr());
    }

    #[test]
    fn inst_defs_and_uses() {
        let i = Inst::Bin {
            dst: RegId(3),
            op: ArithOp::Add,
            k: IntKind::I32,
            lhs: Value::Reg(RegId(1)),
            rhs: Value::Const(5),
        };
        assert_eq!(i.defs(), vec![RegId(3)]);
        let mut uses = Vec::new();
        i.for_each_use(|v| uses.push(*v));
        assert_eq!(uses, vec![Value::Reg(RegId(1)), Value::Const(5)]);
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret { vals: vec![] }.is_terminator());
        assert!(Inst::Jmp { to: BlockId(0) }.is_terminator());
        assert!(!Inst::Mov {
            dst: RegId(0),
            src: Value::Const(1)
        }
        .is_terminator());
    }

    #[test]
    fn rtfn_result_counts() {
        assert_eq!(RtFn::SbMetaLoad.result_count(), 2);
        assert_eq!(RtFn::SbCheck { is_store: false }.result_count(), 0);
        assert_eq!(RtFn::MsccMetaLoad.result_count(), 2);
    }

    #[test]
    fn function_reg_allocation() {
        let mut f = Function {
            name: "f".into(),
            params: vec![],
            param_kinds: vec![],
            ret_kinds: vec![],
            reg_kinds: vec![],
            blocks: vec![],
            vararg: false,
            defined: true,
        };
        let a = f.new_reg(RegKind::Int);
        let b = f.new_reg(RegKind::Ptr);
        assert_eq!(a, RegId(0));
        assert_eq!(b, RegId(1));
        assert_eq!(f.reg_kind(b), RegKind::Ptr);
    }
}
