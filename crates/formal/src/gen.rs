//! Random well-typed program generation for theorem checking.
//!
//! The Coq development proves Preservation/Progress by induction over
//! typing derivations; the executable substitute quantifies over
//! *randomly generated typing derivations*: `gen_cmd` builds commands
//! that are well typed by construction (including wild casts, forged
//! pointers, address-taking, malloc and recursive struct traversal), and
//! the property tests check the §4 theorems on each.

use crate::semantics::Env;
use crate::syntax::*;

/// A tiny deterministic RNG (splitmix64), so the generator needs no
/// external crates and reproduces from a seed.
#[derive(Debug, Clone)]
pub struct Rng(pub u64);

impl Rng {
    /// Next raw value.
    // An inherent method, not `Iterator::next` — the generator is used as
    // a raw number stream, never as an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The generation universe: a fixed frame and type table rich enough to
/// exercise every rule.
pub fn universe() -> (TypeEnv, Env) {
    let mut tenv = TypeEnv::default();
    // struct list { int v; struct list* next; }
    tenv.structs.push(StructDef {
        fields: vec![
            ("v".into(), AtomicTy::Int),
            ("next".into(), AtomicTy::Ptr(Box::new(PointerTy::Named(0)))),
        ],
    });
    let int = AtomicTy::Int;
    let pint = AtomicTy::Ptr(Box::new(PointerTy::Atomic(AtomicTy::Int)));
    let ppint = AtomicTy::Ptr(Box::new(PointerTy::Atomic(pint.clone())));
    let plist = AtomicTy::Ptr(Box::new(PointerTy::Named(0)));
    let env = Env::with_vars(&[
        ("x", int.clone()),
        ("y", int.clone()),
        ("z", int),
        ("p", pint.clone()),
        ("r", pint),
        ("q", ppint),
        ("l", plist),
    ])
    .expect("universe allocates");
    (tenv, env)
}

fn vars_of(env: &Env, ty: &AtomicTy) -> Vec<String> {
    env.stack
        .iter()
        .filter(|(_, (_, t))| t == ty)
        .map(|(n, _)| n.clone())
        .collect()
}

/// Generates a well-typed lvalue of type `ty` (falls back to a variable
/// at depth 0). Returns `None` if no variable of that type exists.
pub fn gen_lhs(rng: &mut Rng, tenv: &TypeEnv, env: &Env, ty: &AtomicTy, depth: u32) -> Option<Lhs> {
    let vars = vars_of(env, ty);
    let mut options: Vec<u64> = Vec::new();
    if !vars.is_empty() {
        options.push(0);
    }
    if depth > 0 {
        // *lhs where lhs: ty*
        options.push(1);
        // l->field of matching type
        options.push(2);
    }
    loop {
        if options.is_empty() {
            return None;
        }
        match options[rng.below(options.len() as u64) as usize] {
            0 => {
                let v = &vars[rng.below(vars.len() as u64) as usize];
                return Some(Lhs::Var(v.clone()));
            }
            1 => {
                let outer = AtomicTy::Ptr(Box::new(PointerTy::Atomic(ty.clone())));
                if let Some(inner) = gen_lhs(rng, tenv, env, &outer, depth - 1) {
                    return Some(Lhs::Deref(Box::new(inner)));
                }
                options.retain(|&o| o != 1);
            }
            _ => {
                // Find a struct field of the right type.
                let plist = AtomicTy::Ptr(Box::new(PointerTy::Named(0)));
                let sdef = &tenv.structs[0];
                let fields: Vec<&str> = sdef
                    .fields
                    .iter()
                    .filter(|(_, t)| t == ty)
                    .map(|(n, _)| n.as_str())
                    .collect();
                if !fields.is_empty() {
                    if let Some(base) = gen_lhs(rng, tenv, env, &plist, depth - 1) {
                        let f = fields[rng.below(fields.len() as u64) as usize];
                        return Some(Lhs::Arrow(Box::new(base), f.to_owned()));
                    }
                }
                options.retain(|&o| o != 2);
            }
        }
    }
}

/// Generates a well-typed rvalue of type `ty`.
pub fn gen_rhs(rng: &mut Rng, tenv: &TypeEnv, env: &Env, ty: &AtomicTy, depth: u32) -> Rhs {
    let leaf = depth == 0;
    match ty {
        AtomicTy::Int => {
            let choice = if leaf { rng.below(2) } else { rng.below(5) };
            match choice {
                0 => Rhs::Int((rng.below(64) as i64) - 8),
                1 => gen_lhs(rng, tenv, env, ty, depth.min(1))
                    .map(Rhs::Read)
                    .unwrap_or(Rhs::Int(1)),
                2 => Rhs::Add(
                    Box::new(gen_rhs(rng, tenv, env, ty, depth - 1)),
                    Box::new(gen_rhs(rng, tenv, env, ty, depth - 1)),
                ),
                3 => Rhs::SizeOf(AtomicTy::Int),
                _ => Rhs::Cast(
                    AtomicTy::Int,
                    Box::new(gen_rhs(
                        rng,
                        tenv,
                        env,
                        &AtomicTy::Ptr(Box::new(PointerTy::Atomic(AtomicTy::Int))),
                        depth - 1,
                    )),
                ),
            }
        }
        AtomicTy::Ptr(p) => {
            let choice = if leaf { 1 + rng.below(2) } else { rng.below(6) };
            match choice {
                0 => {
                    // &lhs of the pointee type (atomic pointees only).
                    if let PointerTy::Atomic(inner) = &**p {
                        if let Some(l) = gen_lhs(rng, tenv, env, inner, depth - 1) {
                            return Rhs::AddrOf(l);
                        }
                    }
                    gen_rhs(rng, tenv, env, ty, 0)
                }
                1 => gen_lhs(rng, tenv, env, ty, depth.min(1))
                    .map(Rhs::Read)
                    .unwrap_or_else(|| {
                        Rhs::Cast(ty.clone(), Box::new(Rhs::Malloc(Box::new(Rhs::Int(2)))))
                    }),
                2 => Rhs::Cast(
                    ty.clone(),
                    Box::new(Rhs::Malloc(Box::new(Rhs::Int(1 + rng.below(4) as i64)))),
                ),
                // Wild casts: pointer laundered through an integer (gets
                // NULL bounds — dereference must abort, not go wild).
                3 => Rhs::Cast(ty.clone(), Box::new(Rhs::Int(rng.below(200) as i64))),
                // Wild pointer-to-pointer cast from any pointer variable.
                4 => {
                    let anyptr = AtomicTy::Ptr(Box::new(PointerTy::Atomic(AtomicTy::Int)));
                    Rhs::Cast(
                        ty.clone(),
                        Box::new(gen_rhs(rng, tenv, env, &anyptr, depth - 1)),
                    )
                }
                _ => Rhs::Cast(ty.clone(), Box::new(Rhs::Malloc(Box::new(Rhs::Int(2))))),
            }
        }
    }
}

/// Generates a well-typed command of roughly `len` assignments.
pub fn gen_cmd(rng: &mut Rng, tenv: &TypeEnv, env: &Env, len: u32) -> Cmd {
    let tys: Vec<AtomicTy> = env.stack.values().map(|(_, t)| t.clone()).collect();
    let one = |rng: &mut Rng| -> Cmd {
        for _ in 0..8 {
            let ty = tys[rng.below(tys.len() as u64) as usize].clone();
            let depth = 1 + rng.below(3) as u32;
            if let Some(l) = gen_lhs(rng, tenv, env, &ty, depth) {
                let r = gen_rhs(rng, tenv, env, &ty, depth);
                return Cmd::Assign(l, r);
            }
        }
        Cmd::Assign(Lhs::Var("x".into()), Rhs::Int(0))
    };
    let mut cmd = one(rng);
    for _ in 1..len.max(1) {
        cmd = Cmd::Seq(Box::new(cmd), Box::new(one(rng)));
    }
    cmd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::typecheck_cmd;

    #[test]
    fn generated_commands_are_well_typed() {
        let (tenv, env) = universe();
        for seed in 0..500u64 {
            let mut rng = Rng(seed);
            let c = gen_cmd(&mut rng, &tenv, &env, 1 + (seed % 6) as u32);
            assert!(
                typecheck_cmd(&tenv, &env, &c),
                "seed {seed} generated ill-typed command: {c:?}"
            );
        }
    }

    #[test]
    fn generator_exercises_all_constructs() {
        let (tenv, env) = universe();
        let mut saw_malloc = false;
        let mut saw_wild = false;
        let mut saw_arrow = false;
        let mut saw_deref = false;
        for seed in 0..400u64 {
            let mut rng = Rng(seed);
            let c = gen_cmd(&mut rng, &tenv, &env, 4);
            let s = format!("{c:?}");
            saw_malloc |= s.contains("Malloc");
            saw_wild |= s.contains("Cast(Ptr") && s.contains("Int(");
            saw_arrow |= s.contains("Arrow");
            saw_deref |= s.contains("Deref");
        }
        assert!(saw_malloc && saw_wild && saw_arrow && saw_deref);
    }
}
