//! Operational semantics of the §4 fragment, in two layers:
//!
//! 1. [`eval_plain`] — the *partial* semantics of C: undefined (stuck)
//!    whenever a program would commit a spatial violation. This is the
//!    specification the safety theorem quantifies over.
//! 2. [`eval_instrumented`] — the SoftBound-augmented semantics: values
//!    carry `(base, bound)` metadata (`v_(b,e)` in the paper), metadata is
//!    propagated by every rule, and dereferences perform the bounds
//!    assertion, aborting on failure. This layer is *total* for
//!    well-typed programs: [Preservation](check_preservation) and
//!    [Progress](check_progress) are machine-checked over randomized
//!    programs in this crate's test suite.
//!
//! The memory primitives (`read`, `write`, `malloc` — Table 2) are
//! implemented with exactly the axiomatized behaviours: reads/writes fail
//! on unallocated locations; malloc returns fresh, disjoint regions and
//! fails when space is exhausted.

use crate::syntax::*;
use std::collections::BTreeMap;

/// Lowest valid address (the paper's `minAddr`; 0 is the null region).
pub const MIN_ADDR: u64 = 8;
/// One past the highest valid address (`maxAddr`).
pub const MAX_ADDR: u64 = 1 << 16;

/// A value with its metadata: the paper's `v_(b,e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MVal {
    /// The underlying word.
    pub v: i64,
    /// Base metadata (0 = NULL bounds).
    pub b: u64,
    /// Bound metadata.
    pub e: u64,
}

impl MVal {
    /// An integer (NULL metadata).
    pub fn int(v: i64) -> Self {
        MVal { v, b: 0, e: 0 }
    }
}

/// Word-addressed memory implementing the Table 2 primitives.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    cells: BTreeMap<u64, MVal>,
    next_alloc: u64,
}

impl Memory {
    /// Creates an empty memory allocating from `MIN_ADDR`.
    pub fn new() -> Self {
        Memory {
            cells: BTreeMap::new(),
            next_alloc: MIN_ADDR,
        }
    }

    /// Table 2 `read M l`: `Some(data)` iff `l` is accessible.
    pub fn read(&self, l: u64) -> Option<MVal> {
        self.cells.get(&l).copied()
    }

    /// Table 2 `write M l d`: succeeds iff `l` is accessible.
    pub fn write(&mut self, l: u64, d: MVal) -> Option<()> {
        match self.cells.get_mut(&l) {
            Some(c) => {
                *c = d;
                Some(())
            }
            None => None,
        }
    }

    /// Table 2 `malloc M i`: a fresh block of `i` accessible cells, zero
    /// initialized with NULL metadata; `None` when space is exhausted.
    /// Freshness and non-interference (the paper's malloc axioms) hold by
    /// construction: the allocator only moves forward.
    pub fn malloc(&mut self, i: u64) -> Option<u64> {
        if i == 0 || self.next_alloc.checked_add(i)? >= MAX_ADDR {
            return None;
        }
        let l = self.next_alloc;
        for k in 0..i {
            self.cells.insert(l + k, MVal::int(0));
        }
        self.next_alloc += i;
        Some(l)
    }

    /// The `val M i` predicate: is location `i` allocated?
    pub fn val(&self, i: u64) -> bool {
        self.cells.contains_key(&i)
    }

    /// Allocated cells (for well-formedness checking).
    pub fn cells(&self) -> impl Iterator<Item = (u64, MVal)> + '_ {
        self.cells.iter().map(|(k, v)| (*k, *v))
    }
}

/// The environment `E = (S, M)`: a stack frame mapping variables to
/// addresses and atomic types, plus memory.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Stack frame.
    pub stack: BTreeMap<String, (u64, AtomicTy)>,
    /// Memory.
    pub mem: Memory,
}

impl Env {
    /// Creates an environment with the given frame variables, allocating
    /// a memory cell for each.
    pub fn with_vars(vars: &[(&str, AtomicTy)]) -> Option<Env> {
        let mut env = Env {
            stack: BTreeMap::new(),
            mem: Memory::new(),
        };
        for (name, ty) in vars {
            let addr = env.mem.malloc(1)?;
            env.stack.insert((*name).to_owned(), (addr, ty.clone()));
        }
        Some(env)
    }
}

/// Evaluation results: the paper's `r` ranges over values, `Abort` and
/// `OutOfMem`; `Stuck` marks rule failure — Progress asserts it never
/// occurs for well-typed programs under the instrumented semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Out<T> {
    /// A result.
    Val(T),
    /// Bounds assertion failed (instrumented semantics only).
    Abort,
    /// `malloc` failed.
    OutOfMem,
    /// No rule applies.
    Stuck,
}

use Out::{Abort, OutOfMem, Stuck, Val};

/// Command results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CResult {
    /// The paper's `OK`.
    Ok,
    /// Aborted on a failed assertion.
    Abort,
    /// Out of memory.
    OutOfMem,
    /// Stuck (plain semantics: an undetected spatial violation;
    /// instrumented semantics: must be unreachable for typed programs).
    Stuck,
}

macro_rules! bubble {
    ($e:expr) => {
        match $e {
            Val(x) => x,
            Abort => return Abort,
            OutOfMem => return OutOfMem,
            Stuck => return Stuck,
        }
    };
}

/// Whether dereference assertions are performed (instrumented) or
/// dereferences of out-of-bounds pointers are simply *undefined* (plain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    Instrumented,
}

struct Interp<'a> {
    tenv: &'a TypeEnv,
    mode: Mode,
}

impl Interp<'_> {
    /// `(E, lhs) ⇒l r : a` — evaluates an lhs to an address and type.
    fn lhs(&self, env: &Env, lhs: &Lhs) -> Out<(u64, AtomicTy)> {
        match lhs {
            Lhs::Var(x) => match env.stack.get(x) {
                Some((l, a)) => Val((*l, a.clone())),
                None => Stuck,
            },
            Lhs::Deref(inner) => {
                // The paper's two dereference rules: read the pointer and
                // either check (instrumented) or demand in-bounds-ness
                // implicitly (plain: stuck when the access would fault —
                // and "fault" for the specification means *outside the
                // pointed-to object*, which metadata lets us decide).
                let (l, a) = bubble!(self.lhs(env, inner));
                let AtomicTy::Ptr(p) = a else { return Stuck };
                let PointerTy::Atomic(target) = *p else {
                    return Stuck;
                };
                let Some(d) = env.mem.read(l) else {
                    return Stuck;
                };
                let size = size_of_atomic(&target);
                let ok = d.b != 0
                    && d.b <= d.v as u64
                    && (d.v as u64)
                        .checked_add(size)
                        .map(|hi| hi <= d.e)
                        .unwrap_or(false);
                match (self.mode, ok) {
                    (Mode::Instrumented, true) => Val((d.v as u64, target)),
                    (Mode::Instrumented, false) => Abort,
                    (Mode::Plain, true) => Val((d.v as u64, target)),
                    (Mode::Plain, false) => Stuck, // undefined behaviour
                }
            }
            Lhs::Field(inner, f) => {
                let (l, a) = bubble!(self.lhs(env, inner));
                // `lhs.f` requires lhs to *be* a struct lvalue; in the
                // fragment structs are always accessed through pointers,
                // so the base must have struct pointer type... the paper
                // permits `lhs.id` where lhs has struct type: we model
                // struct lvalues as Deref of struct pointers.
                let _ = (l, a, f);
                Stuck
            }
            Lhs::Arrow(inner, f) => {
                let (l, a) = bubble!(self.lhs(env, inner));
                let AtomicTy::Ptr(p) = a else { return Stuck };
                let Some(sdef) = self.tenv.as_struct(&p) else {
                    return Stuck;
                };
                let Some((off, fty)) = sdef.field(f) else {
                    return Stuck;
                };
                let Some(d) = env.mem.read(l) else {
                    return Stuck;
                };
                let target = (d.v as u64).wrapping_add(off);
                let ok = d.b != 0
                    && d.b <= target
                    && target.checked_add(1).map(|hi| hi <= d.e).unwrap_or(false);
                match (self.mode, ok) {
                    (Mode::Instrumented, true) => Val((target, fty.clone())),
                    (Mode::Instrumented, false) => Abort,
                    (Mode::Plain, true) => Val((target, fty.clone())),
                    (Mode::Plain, false) => Stuck,
                }
            }
        }
    }

    /// `(E, rhs) ⇒r (r : a, E')`.
    fn rhs(&self, env: &mut Env, rhs: &Rhs) -> Out<(MVal, AtomicTy)> {
        match rhs {
            Rhs::Int(i) => Val((MVal::int(*i), AtomicTy::Int)),
            Rhs::Add(x, y) => {
                let (a, ta) = bubble!(self.rhs(env, x));
                let (b, tb) = bubble!(self.rhs(env, y));
                if ta != AtomicTy::Int || tb != AtomicTy::Int {
                    return Stuck;
                }
                Val((MVal::int(a.v.wrapping_add(b.v)), AtomicTy::Int))
            }
            Rhs::Read(lhs) => {
                let (l, a) = bubble!(self.lhs(env, lhs));
                match env.mem.read(l) {
                    Some(d) => Val((d, a)),
                    None => Stuck,
                }
            }
            Rhs::AddrOf(lhs) => {
                let (l, a) = bubble!(self.lhs(env, lhs));
                let size = size_of_atomic(&a);
                // &lhs: pointer to the object with its exact bounds.
                Val((
                    MVal {
                        v: l as i64,
                        b: l,
                        e: l + size,
                    },
                    AtomicTy::Ptr(Box::new(PointerTy::Atomic(a))),
                ))
            }
            Rhs::Cast(to, inner) => {
                let (d, from) = bubble!(self.rhs(env, inner));
                let meta_ok = matches!(from, AtomicTy::Ptr(_)) && matches!(to, AtomicTy::Ptr(_));
                let d2 = if meta_ok {
                    d // pointer-to-pointer casts retain metadata (§3.4)
                } else if matches!(to, AtomicTy::Ptr(_)) {
                    MVal { v: d.v, b: 0, e: 0 } // int-to-pointer: NULL bounds
                } else {
                    MVal::int(d.v)
                };
                Val((d2, to.clone()))
            }
            Rhs::SizeOf(a) => Val((MVal::int(size_of_atomic(a) as i64), AtomicTy::Int)),
            Rhs::Malloc(sz) => {
                let (n, t) = bubble!(self.rhs(env, sz));
                if t != AtomicTy::Int || n.v <= 0 {
                    return Stuck;
                }
                match env.mem.malloc(n.v as u64) {
                    Some(l) => Val((
                        MVal {
                            v: l as i64,
                            b: l,
                            e: l + n.v as u64,
                        },
                        AtomicTy::Ptr(Box::new(PointerTy::Void)),
                    )),
                    None => OutOfMem,
                }
            }
        }
    }

    /// `(E, c) ⇒c (r, E')`.
    fn cmd(&self, env: &mut Env, c: &Cmd) -> CResult {
        match c {
            Cmd::Seq(a, b) => match self.cmd(env, a) {
                CResult::Ok => self.cmd(env, b),
                other => other,
            },
            Cmd::Assign(lhs, rhs) => {
                let (d, _ty) = match self.rhs(env, rhs) {
                    Val(x) => x,
                    Abort => return CResult::Abort,
                    OutOfMem => return CResult::OutOfMem,
                    Stuck => return CResult::Stuck,
                };
                let (l, _a) = match self.lhs(env, lhs) {
                    Val(x) => x,
                    Abort => return CResult::Abort,
                    OutOfMem => return CResult::OutOfMem,
                    Stuck => return CResult::Stuck,
                };
                match env.mem.write(l, d) {
                    Some(()) => CResult::Ok,
                    None => CResult::Stuck,
                }
            }
        }
    }
}

/// Runs a command under the plain (partial) semantics. `Stuck` marks
/// undefined behaviour (a spatial violation the language does not define).
pub fn eval_plain(tenv: &TypeEnv, env: &mut Env, c: &Cmd) -> CResult {
    Interp {
        tenv,
        mode: Mode::Plain,
    }
    .cmd(env, c)
}

/// Runs a command under the SoftBound-instrumented semantics: metadata is
/// propagated and dereference assertions abort on violation.
pub fn eval_instrumented(tenv: &TypeEnv, env: &mut Env, c: &Cmd) -> CResult {
    Interp {
        tenv,
        mode: Mode::Instrumented,
    }
    .cmd(env, c)
}

// ---------------------------------------------------------------- typing

/// `S ⊢c c` — standard C typing of commands against the frame.
pub fn typecheck_cmd(tenv: &TypeEnv, env: &Env, c: &Cmd) -> bool {
    match c {
        Cmd::Seq(a, b) => typecheck_cmd(tenv, env, a) && typecheck_cmd(tenv, env, b),
        Cmd::Assign(l, r) => match (type_lhs(tenv, env, l), type_rhs(tenv, env, r)) {
            (Some(tl), Some(tr)) => assignable(&tl, &tr),
            _ => false,
        },
    }
}

fn assignable(to: &AtomicTy, from: &AtomicTy) -> bool {
    match (to, from) {
        (AtomicTy::Int, AtomicTy::Int) => true,
        // void* converts to any pointer (covers malloc results).
        (AtomicTy::Ptr(_), AtomicTy::Ptr(p)) if **p == PointerTy::Void => true,
        (AtomicTy::Ptr(a), AtomicTy::Ptr(b)) => a == b,
        _ => false,
    }
}

/// Type of an lhs.
pub fn type_lhs(tenv: &TypeEnv, env: &Env, l: &Lhs) -> Option<AtomicTy> {
    match l {
        Lhs::Var(x) => env.stack.get(x).map(|(_, a)| a.clone()),
        Lhs::Deref(inner) => match type_lhs(tenv, env, inner)? {
            AtomicTy::Ptr(p) => match *p {
                PointerTy::Atomic(a) => Some(a),
                _ => None,
            },
            AtomicTy::Int => None,
        },
        Lhs::Field(..) => None, // struct lvalues are accessed via Arrow
        Lhs::Arrow(inner, f) => match type_lhs(tenv, env, inner)? {
            AtomicTy::Ptr(p) => {
                let s = tenv.as_struct(&p)?;
                s.field(f).map(|(_, t)| t.clone())
            }
            AtomicTy::Int => None,
        },
    }
}

/// Type of an rhs.
pub fn type_rhs(tenv: &TypeEnv, env: &Env, r: &Rhs) -> Option<AtomicTy> {
    match r {
        Rhs::Int(_) | Rhs::SizeOf(_) => Some(AtomicTy::Int),
        Rhs::Add(a, b) => (type_rhs(tenv, env, a)? == AtomicTy::Int
            && type_rhs(tenv, env, b)? == AtomicTy::Int)
            .then_some(AtomicTy::Int),
        Rhs::Read(l) => type_lhs(tenv, env, l),
        Rhs::AddrOf(l) => {
            let a = type_lhs(tenv, env, l)?;
            Some(AtomicTy::Ptr(Box::new(PointerTy::Atomic(a))))
        }
        Rhs::Cast(to, inner) => {
            type_rhs(tenv, env, inner)?;
            Some(to.clone())
        }
        Rhs::Malloc(sz) => (type_rhs(tenv, env, sz)? == AtomicTy::Int)
            .then_some(AtomicTy::Ptr(Box::new(PointerTy::Void))),
    }
}

// ------------------------------------------------------- well-formedness

/// `M ⊢D d_(b,e)` — the per-datum invariant: NULL bounds, or a non-empty
/// valid range of allocated cells within [minAddr, maxAddr).
pub fn wf_data(mem: &Memory, d: MVal) -> bool {
    if d.b == 0 {
        return true;
    }
    MIN_ADDR <= d.b && d.b <= d.e && d.e < MAX_ADDR && (d.b..d.e).all(|i| mem.val(i))
}

/// `⊢M M` — every allocated cell's metadata is well formed.
pub fn wf_mem(mem: &Memory) -> bool {
    mem.cells().all(|(_, d)| wf_data(mem, d))
}

/// `⊢E E` — the frame maps variables to allocated cells and the memory is
/// well formed.
pub fn wf_env(env: &Env) -> bool {
    env.stack.values().all(|(l, _)| env.mem.val(*l)) && wf_mem(&env.mem)
}

// ------------------------------------------------------------- theorems

/// Theorem 4.1 (Preservation), executably: from a well-formed environment
/// and well-typed command, the instrumented semantics preserves
/// well-formedness. Returns an error description on violation.
pub fn check_preservation(tenv: &TypeEnv, env: &Env, c: &Cmd) -> Result<(), String> {
    if !wf_env(env) {
        return Err("precondition ⊢E E failed".into());
    }
    if !typecheck_cmd(tenv, env, c) {
        return Err("precondition S ⊢c c failed".into());
    }
    let mut e2 = env.clone();
    let _ = eval_instrumented(tenv, &mut e2, c);
    if wf_env(&e2) {
        Ok(())
    } else {
        Err(format!("⊢E E' violated after {c:?}"))
    }
}

/// Theorem 4.2 (Progress), executably: from a well-formed environment and
/// well-typed command, the instrumented semantics terminates with OK,
/// OutOfMem or Abort — never Stuck.
pub fn check_progress(tenv: &TypeEnv, env: &Env, c: &Cmd) -> Result<CResult, String> {
    if !wf_env(env) || !typecheck_cmd(tenv, env, c) {
        return Err("preconditions failed".into());
    }
    let mut e2 = env.clone();
    match eval_instrumented(tenv, &mut e2, c) {
        CResult::Stuck => Err(format!("instrumented semantics stuck on {c:?}")),
        r => Ok(r),
    }
}

/// Corollary 4.1, executably: if the instrumented run says OK, the plain
/// C semantics also runs to completion without a memory violation (i.e.
/// is not undefined) and computes the same final memory.
pub fn check_corollary(tenv: &TypeEnv, env: &Env, c: &Cmd) -> Result<(), String> {
    let mut inst = env.clone();
    if eval_instrumented(tenv, &mut inst, c) != CResult::Ok {
        return Ok(()); // corollary's hypothesis not met
    }
    let mut plain = env.clone();
    match eval_plain(tenv, &mut plain, c) {
        CResult::Ok => {
            // Same observable memory (metadata aside, values must agree).
            let a: Vec<(u64, i64)> = inst.mem.cells().map(|(l, d)| (l, d.v)).collect();
            let b: Vec<(u64, i64)> = plain.mem.cells().map(|(l, d)| (l, d.v)).collect();
            if a == b {
                Ok(())
            } else {
                Err("instrumented and plain memories diverged".into())
            }
        }
        other => Err(format!("plain semantics did not complete: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr_int() -> AtomicTy {
        AtomicTy::Ptr(Box::new(PointerTy::Atomic(AtomicTy::Int)))
    }

    fn base_env() -> Env {
        Env::with_vars(&[("x", AtomicTy::Int), ("y", AtomicTy::Int), ("p", ptr_int())])
            .expect("allocates")
    }

    #[test]
    fn assign_and_read() {
        let tenv = TypeEnv::default();
        let mut env = base_env();
        let c = Cmd::Seq(
            Box::new(Cmd::Assign(Lhs::Var("x".into()), Rhs::Int(41))),
            Box::new(Cmd::Assign(
                Lhs::Var("y".into()),
                Rhs::Add(
                    Box::new(Rhs::Read(Lhs::Var("x".into()))),
                    Box::new(Rhs::Int(1)),
                ),
            )),
        );
        assert!(typecheck_cmd(&tenv, &env, &c));
        assert_eq!(eval_instrumented(&tenv, &mut env, &c), CResult::Ok);
        let (ly, _) = env.stack["y"];
        assert_eq!(env.mem.read(ly).map(|d| d.v), Some(42));
    }

    #[test]
    fn deref_through_addrof_is_checked_and_ok() {
        let tenv = TypeEnv::default();
        let mut env = base_env();
        // p = &x; *p = 7; y = *p;
        let c = Cmd::Seq(
            Box::new(Cmd::Assign(
                Lhs::Var("p".into()),
                Rhs::AddrOf(Lhs::Var("x".into())),
            )),
            Box::new(Cmd::Seq(
                Box::new(Cmd::Assign(
                    Lhs::Deref(Box::new(Lhs::Var("p".into()))),
                    Rhs::Int(7),
                )),
                Box::new(Cmd::Assign(
                    Lhs::Var("y".into()),
                    Rhs::Read(Lhs::Deref(Box::new(Lhs::Var("p".into())))),
                )),
            )),
        );
        assert!(typecheck_cmd(&tenv, &env, &c));
        assert_eq!(eval_instrumented(&tenv, &mut env, &c), CResult::Ok);
    }

    #[test]
    fn forged_pointer_aborts_instrumented_stuck_plain() {
        let tenv = TypeEnv::default();
        // p = (int*) 12345; x = *p;
        let c = Cmd::Seq(
            Box::new(Cmd::Assign(
                Lhs::Var("p".into()),
                Rhs::Cast(ptr_int(), Box::new(Rhs::Int(12345))),
            )),
            Box::new(Cmd::Assign(
                Lhs::Var("x".into()),
                Rhs::Read(Lhs::Deref(Box::new(Lhs::Var("p".into())))),
            )),
        );
        let mut e1 = base_env();
        assert_eq!(eval_instrumented(&tenv, &mut e1, &c), CResult::Abort);
        let mut e2 = base_env();
        assert_eq!(
            eval_plain(&tenv, &mut e2, &c),
            CResult::Stuck,
            "plain C is undefined here"
        );
    }

    #[test]
    fn malloc_gives_bounds() {
        let tenv = TypeEnv::default();
        let mut env = base_env();
        // p = (int*) malloc(4); *p = 9;
        let c = Cmd::Seq(
            Box::new(Cmd::Assign(
                Lhs::Var("p".into()),
                Rhs::Cast(ptr_int(), Box::new(Rhs::Malloc(Box::new(Rhs::Int(4))))),
            )),
            Box::new(Cmd::Assign(
                Lhs::Deref(Box::new(Lhs::Var("p".into()))),
                Rhs::Int(9),
            )),
        );
        assert!(typecheck_cmd(&tenv, &env, &c));
        assert_eq!(eval_instrumented(&tenv, &mut env, &c), CResult::Ok);
    }

    #[test]
    fn out_of_memory_reachable() {
        let tenv = TypeEnv::default();
        let mut env = base_env();
        let c = Cmd::Assign(
            Lhs::Var("p".into()),
            Rhs::Cast(
                ptr_int(),
                Box::new(Rhs::Malloc(Box::new(Rhs::Int((MAX_ADDR + 10) as i64)))),
            ),
        );
        assert_eq!(eval_instrumented(&tenv, &mut env, &c), CResult::OutOfMem);
    }

    #[test]
    fn arrow_fields_with_recursive_struct() {
        // struct list { int v; struct list* next; }
        let mut tenv = TypeEnv::default();
        tenv.structs.push(StructDef {
            fields: vec![
                ("v".into(), AtomicTy::Int),
                ("next".into(), AtomicTy::Ptr(Box::new(PointerTy::Named(0)))),
            ],
        });
        let list_ptr = AtomicTy::Ptr(Box::new(PointerTy::Named(0)));
        let mut env =
            Env::with_vars(&[("l", list_ptr.clone()), ("x", AtomicTy::Int)]).expect("allocates");
        // l = (list*) malloc(2); l->v = 5; l->next = (list*) 0 cast...; x = l->v;
        let c = Cmd::Seq(
            Box::new(Cmd::Assign(
                Lhs::Var("l".into()),
                Rhs::Cast(
                    list_ptr.clone(),
                    Box::new(Rhs::Malloc(Box::new(Rhs::Int(2)))),
                ),
            )),
            Box::new(Cmd::Seq(
                Box::new(Cmd::Assign(
                    Lhs::Arrow(Box::new(Lhs::Var("l".into())), "v".into()),
                    Rhs::Int(5),
                )),
                Box::new(Cmd::Assign(
                    Lhs::Var("x".into()),
                    Rhs::Read(Lhs::Arrow(Box::new(Lhs::Var("l".into())), "v".into())),
                )),
            )),
        );
        assert!(typecheck_cmd(&tenv, &env, &c));
        assert_eq!(eval_instrumented(&tenv, &mut env, &c), CResult::Ok);
        let (lx, _) = env.stack["x"];
        assert_eq!(env.mem.read(lx).map(|d| d.v), Some(5));
    }

    #[test]
    fn preservation_progress_corollary_on_examples() {
        let tenv = TypeEnv::default();
        let env = base_env();
        let cases = vec![
            Cmd::Assign(Lhs::Var("x".into()), Rhs::Int(1)),
            Cmd::Assign(Lhs::Var("p".into()), Rhs::AddrOf(Lhs::Var("x".into()))),
            Cmd::Seq(
                Box::new(Cmd::Assign(
                    Lhs::Var("p".into()),
                    Rhs::AddrOf(Lhs::Var("y".into())),
                )),
                Box::new(Cmd::Assign(
                    Lhs::Deref(Box::new(Lhs::Var("p".into()))),
                    Rhs::Int(3),
                )),
            ),
            // A program that aborts (forged pointer) still satisfies both
            // theorems: Abort is an allowed outcome.
            Cmd::Seq(
                Box::new(Cmd::Assign(
                    Lhs::Var("p".into()),
                    Rhs::Cast(ptr_int(), Box::new(Rhs::Int(999))),
                )),
                Box::new(Cmd::Assign(
                    Lhs::Deref(Box::new(Lhs::Var("p".into()))),
                    Rhs::Int(1),
                )),
            ),
        ];
        for c in cases {
            check_preservation(&tenv, &env, &c).expect("preservation");
            check_progress(&tenv, &env, &c).expect("progress");
            check_corollary(&tenv, &env, &c).expect("corollary");
        }
    }

    #[test]
    fn memory_axioms() {
        let mut m = Memory::new();
        // read-after-write, write-to-unallocated fails, malloc freshness.
        assert_eq!(m.read(100), None);
        assert_eq!(m.write(100, MVal::int(1)), None);
        let a = m.malloc(4).expect("alloc");
        let b = m.malloc(2).expect("alloc");
        assert!(a + 4 <= b, "malloc returns fresh disjoint regions");
        m.write(a, MVal::int(7)).expect("allocated");
        assert_eq!(m.read(a).map(|d| d.v), Some(7));
        assert_eq!(m.read(a + 1).map(|d| d.v), Some(0), "zero initialized");
        // Writing one block does not affect the other (non-interference).
        m.write(b, MVal::int(9)).expect("allocated");
        assert_eq!(m.read(a).map(|d| d.v), Some(7));
    }
}
